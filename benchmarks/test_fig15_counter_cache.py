"""Figure 15 — SCA sensitivity to counter cache size and footprint.

Paper: larger counter caches improve speedup and miss rate; larger
workload footprints blunt the benefit (8 MB cache gains 9% on a 100 MB
footprint but 2.4% on 1000 MB).  The sweep here shrinks both axes by
the same ratio (pure-Python tracing cannot touch hundreds of MB).
"""

from conftest import assert_claims, run_once

from repro.bench.experiments import Fig15CounterCache


def test_fig15_counter_cache_sensitivity(benchmark):
    result = run_once(benchmark, Fig15CounterCache())
    assert_claims(result)
    # Miss rate decreases monotonically with cache size per footprint.
    for series in result.series:
        if series.name.startswith("missrate@"):
            values = list(series.points.values())
            assert values == sorted(values, reverse=True)
