"""Figure 16 — SCA overhead versus transaction size.

Paper: SCA's overhead over the ideal design is ~7.5% for tiny
transactions and under 1% for page-sized (4 KB / 64-line) transactions,
because the counter-atomic fraction of writes shrinks with size.
"""

from conftest import assert_claims, run_once

from repro.bench.experiments import Fig16TxnSize


def test_fig16_transaction_size_sensitivity(benchmark):
    result = run_once(benchmark, Fig16TxnSize())
    assert_claims(result)
