"""Figure 13 — multicore throughput, normalized to 1-core no-encryption.

Paper: SCA beats FCA by 6/11/22/40% at 1/2/4/8 cores and stays within
4.7% of the ideal design.  This reproduction checks the ordering and
the growth trend (magnitudes are compressed; see EXPERIMENTS.md).

The benchmark-sized run uses 1/2/4 cores and three workloads; run
``repro-bench fig13 --scale full`` for the full 1/2/4/8-core sweep over
all five workloads.
"""

from conftest import assert_claims, run_once

from repro.bench.experiments import Fig13MultiCore


def test_fig13_throughput_scaling(benchmark):
    experiment = Fig13MultiCore(
        core_counts=(1, 2, 4), workloads=("array", "queue", "hash")
    )
    result = run_once(benchmark, experiment)
    assert_claims(result)
