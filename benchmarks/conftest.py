"""Shared helpers for the figure/table benchmarks.

Each benchmark module regenerates one artifact of the paper's
evaluation.  The experiments are full simulations, so every benchmark
runs exactly once (``rounds=1``) and reports its wall-clock time; the
paper's shape claims are asserted on the result.

Run with::

    pytest benchmarks/ --benchmark-only
"""

from __future__ import annotations

import pytest

from repro.bench.report import ExperimentResult


def run_once(benchmark, experiment, scale: str = "quick") -> ExperimentResult:
    """Execute one experiment under pytest-benchmark timing."""
    result = benchmark.pedantic(
        experiment.run, kwargs={"scale": scale}, rounds=1, iterations=1
    )
    print()
    print(result.render())
    return result


def assert_claims(result: ExperimentResult) -> None:
    """Fail the benchmark if any paper-shape claim did not hold."""
    failed = [claim for claim, ok in result.claims.items() if not ok]
    assert not failed, "claims failed: %s" % "; ".join(failed)
