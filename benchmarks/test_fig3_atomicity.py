"""Figure 3 — out-of-sync data and counter after a mid-write crash.

A single flushed store is crashed at every instant.  Under the unsafe
design (counters persist only on eviction) there are crash points where
the data line sits in NVM with a stale counter — undecryptable exactly
as Eq. 4 predicts.  Under SCA/FCA/co-located designs, every crash point
yields a decryptable image.
"""

import pytest

from repro.config import fast_config
from repro.crash.injector import CrashInjector
from repro.crash.recovery import RecoveryManager
from repro.sim.machine import Machine
from repro.sim.trace import TraceBuilder


def single_flushed_write(design):
    builder = TraceBuilder("fig3")
    builder.store_u64(0x1000, 0xCAFE, counter_atomic=(design in ("sca",)))
    builder.clwb(0x1000)
    builder.ccwb(0x1000)
    builder.persist_barrier()
    return Machine(fast_config(), design).run([builder.build()])


def count_undecryptable_crash_points(design):
    result = single_flushed_write(design)
    injector = CrashInjector(result)
    manager = RecoveryManager(result.config.encryption)
    times = injector.interesting_times() + injector.midpoint_times()
    bad = 0
    for crash_ns in times:
        recovered = manager.recover(injector.crash_at(crash_ns))
        if recovered.is_garbage(0x1000):
            bad += 1
    return bad, len(times)


def run_experiment():
    rows = {}
    for design in ("sca", "fca", "co-located", "unsafe"):
        rows[design] = count_undecryptable_crash_points(design)
    return rows


def test_fig3_counter_atomicity_violations(benchmark):
    rows = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    print()
    for design, (bad, total) in rows.items():
        print("  %-12s %d/%d crash points undecryptable" % (design, bad, total))
    assert rows["sca"][0] == 0
    assert rows["fca"][0] == 0
    assert rows["co-located"][0] == 0
    assert rows["unsafe"][0] > 0
