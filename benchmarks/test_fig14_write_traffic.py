"""Figure 14 — NVMM write traffic normalized to no-encryption.

Paper: SCA writes ~8% fewer bytes than FCA (counter coalescing inside
the transaction windows) and ~7% fewer than the co-located designs
(which ship 72 B per access).
"""

from conftest import assert_claims, run_once

from repro.bench.experiments import Fig14WriteTraffic


def test_fig14_write_traffic(benchmark):
    result = run_once(benchmark, Fig14WriteTraffic())
    assert_claims(result)
    # No design writes less than the unencrypted baseline.
    for series in result.series:
        for value in series.points.values():
            assert value >= 0.99
