"""Component micro-benchmarks (simulator performance, not paper shapes).

These time the hot inner components so regressions in simulator speed
are visible: OTP pad generation for both ciphers, counter-cache
operations, and raw machine throughput in ops/second.
"""

import pytest

from repro.config import CounterCacheConfig, EncryptionConfig, fast_config
from repro.crypto.counter_cache import GROUP_SPAN, CounterCache
from repro.crypto.otp import OTPCipher, make_block_cipher
from repro.sim.machine import Machine
from repro.sim.trace import TraceBuilder

LINE = bytes(range(64))


def test_prf_otp_encrypt_throughput(benchmark):
    cipher = OTPCipher(make_block_cipher(EncryptionConfig(cipher="prf")))
    counter = iter(range(1, 10**9))

    def encrypt():
        return cipher.encrypt(0x1000, next(counter), LINE)

    benchmark(encrypt)


def test_aes_otp_encrypt_throughput(benchmark):
    cipher = OTPCipher(make_block_cipher(EncryptionConfig(cipher="aes")))
    counter = iter(range(1, 10**9))

    def encrypt():
        return cipher.encrypt(0x1000, next(counter), LINE)

    benchmark(encrypt)


def test_counter_cache_update_throughput(benchmark):
    cache = CounterCache(CounterCacheConfig(size_bytes=64 * 1024, ways=16))
    for group in range(64):
        cache.fill(group * GROUP_SPAN, tuple(range(8)))
    state = {"i": 0}

    def update():
        state["i"] = (state["i"] + 1) % 64
        cache.update(state["i"] * GROUP_SPAN, state["i"])

    benchmark(update)


def test_machine_op_throughput(benchmark):
    """Simulated trace ops per benchmark round (1000-op trace)."""

    def build_and_run():
        builder = TraceBuilder("micro")
        for i in range(200):
            builder.store_u64(0x1000 + (i % 32) * 64, i)
            builder.clwb(0x1000 + (i % 32) * 64)
            if i % 8 == 7:
                builder.ccwb(0x1000)
                builder.persist_barrier()
        return Machine(fast_config(), "sca").run([builder.build()])

    result = benchmark.pedantic(build_and_run, rounds=3, iterations=1)
    assert result.stats.runtime_ns > 0
