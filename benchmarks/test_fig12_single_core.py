"""Figure 12 — single-core runtime normalized to no-encryption.

Paper: SCA averages 1.117x no-encryption, 6.3% faster than FCA; the
co-located design without a counter cache is by far the slowest; the
co-located + counter-cache variant is within a point of SCA.
"""

from conftest import assert_claims, run_once

from repro.bench.experiments import Fig12SingleCore


def test_fig12_normalized_runtime(benchmark):
    result = run_once(benchmark, Fig12SingleCore())
    assert_claims(result)
    # Sanity: every normalized runtime is >= 1 (encryption never helps).
    for series in result.series:
        for value in series.points.values():
            assert value >= 0.99
