"""Figure 4 — inconsistency while adding a node to a persistent list.

Reproduces the paper's walkthrough: a linked-list insert writes the new
node (item + next pointer), then updates the head pointer.  If the head
pointer's data persists but its counter does not, recovery decrypts the
head with a stale counter and reads a garbage pointer.  The head is
therefore annotated ``CounterAtomic`` under SCA; the unsafe design
shows the failure.
"""

import pytest

from repro.config import CACHE_LINE_SIZE, fast_config
from repro.crash.injector import CrashInjector
from repro.crash.recovery import RecoveryManager
from repro.errors import DecryptionFailure
from repro.sim.machine import Machine
from repro.sim.trace import TraceBuilder

HEAD = 0x1000
NODE1 = 0x2000
NODE2 = 0x3000


def insert_two_nodes(design):
    """head -> node2 -> node1, following the paper's three steps."""
    builder = TraceBuilder("fig4")
    for node, item, next_ptr in ((NODE1, 3, 0), (NODE2, 4, NODE1)):
        # Steps 1-2: create the node and set its next pointer.
        builder.store_u64(node, item)
        builder.store_u64(node + 8, next_ptr)
        builder.clwb(node)
        builder.ccwb(node)
        builder.persist_barrier()
        # Step 3: the head update immediately affects recoverability.
        builder.store_u64(HEAD, node, counter_atomic=True)
        builder.clwb(HEAD)
        builder.persist_barrier()
    return Machine(fast_config(), design).run([builder.build()])


def walk_list(recovered):
    """Walk the recovered list; returns the items seen."""
    items = []
    pointer = recovered.read_u64(HEAD)
    hops = 0
    while pointer != 0 and hops < 10:
        if pointer not in (NODE1, NODE2):
            raise AssertionError("head/next points at garbage: 0x%x" % pointer)
        items.append(recovered.read_u64(pointer))
        pointer = recovered.read_u64(pointer + 8)
        hops += 1
    return items


def sweep(design):
    result = insert_two_nodes(design)
    injector = CrashInjector(result)
    manager = RecoveryManager(result.config.encryption)
    valid_states = ([], [3], [4, 3])
    consistent = inconsistent = 0
    for crash_ns in injector.interesting_times() + injector.midpoint_times():
        recovered = manager.recover(injector.crash_at(crash_ns))
        try:
            items = walk_list(recovered)
            if items in list(valid_states):
                consistent += 1
            else:
                inconsistent += 1
        except (AssertionError, DecryptionFailure):
            inconsistent += 1
    return consistent, inconsistent


def run_experiment():
    return {design: sweep(design) for design in ("sca", "unsafe")}


def test_fig4_linked_list_insert(benchmark):
    rows = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    print()
    for design, (good, bad) in rows.items():
        print("  %-8s consistent=%d inconsistent=%d" % (design, good, bad))
    good, bad = rows["sca"]
    assert bad == 0 and good > 0
    assert rows["unsafe"][1] > 0
