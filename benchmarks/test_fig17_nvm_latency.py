"""Figure 17 — SCA speedup over the co-located design vs NVM latency.

Paper: SCA is 29-76% faster than co-located across the read-latency
sweep, with the advantage growing as reads get *faster* (the serialized
40 ns decrypt looms larger), and 39-74% faster across the write sweep.
"""

from conftest import assert_claims, run_once

from repro.bench.experiments import Fig17NvmLatency


def test_fig17_nvm_latency_sensitivity(benchmark):
    experiment = Fig17NvmLatency(workloads=("array", "hash", "btree"))
    result = run_once(benchmark, experiment)
    assert_claims(result)
