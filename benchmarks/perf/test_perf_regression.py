"""Quick-scale perf regression gate.

Fails loudly when an optimized kernel falls back to within 2x of its
reference implementation — the symptom of someone accidentally
reverting a fast path.  Relative (same-machine, same-process) ratios
keep this robust on slow shared runners; the expected speedups are
5x or more, so a 2x floor has ample margin.
"""

from __future__ import annotations

import pytest

from repro.bench.perf import bench_kernels, bench_sweep
from repro.utils.accel import HAVE_NUMPY


@pytest.fixture(scope="module")
def kernels():
    return bench_kernels("quick")


class TestKernelSpeedups:
    def test_xor_line_beats_reference(self, kernels):
        assert kernels["xor_line64"]["speedup_vs_reference"] >= 2.0

    def test_ttable_aes_beats_reference(self, kernels):
        assert kernels["aes_block"]["speedup_vs_reference"] >= 2.0

    def test_otp_aes_beats_reference_3x(self, kernels):
        """The ISSUE's acceptance bar: >= 3x on the OTP microbenchmark."""
        assert kernels["otp_encrypt_aes"]["speedup_vs_reference"] >= 3.0

    def test_otp_prf_not_slower_than_reference(self, kernels):
        assert kernels["otp_encrypt_prf"]["speedup_vs_reference"] >= 1.0

    @pytest.mark.skipif(not HAVE_NUMPY, reason="numpy not available")
    def test_batched_aes_beats_per_block_calls(self, kernels):
        """Vectorized T-table rounds vs a per-block encrypt_block loop."""
        assert kernels["aes_blocks_batch"]["speedup_vs_reference"] >= 2.0

    @pytest.mark.skipif(not HAVE_NUMPY, reason="numpy not available")
    def test_batched_otp_lines_beat_per_line_calls(self, kernels):
        """encrypt_lines (batched pads + one XOR pass) vs encrypt per line."""
        assert kernels["otp_encrypt_lines_batch"]["speedup_vs_reference"] >= 2.0

    def test_kv_put_indexed_beats_probe_chain(self, kernels):
        """The KV service's volatile index vs probing the chain per put.

        Measured ~1.9x on an adversarial 32-bucket collision chain; the
        1.2 floor catches the index being accidentally disabled while
        tolerating commit-path overhead dominating on slow runners.
        """
        assert kernels["kv_put_txn"]["speedup_vs_reference"] >= 1.2

    def test_shard_dispatch_batch_beats_per_line_loop(self, kernels):
        """ShardMap.dispatch_batch (shift/mask bucketing) vs per-line
        to_local calls.

        Measured ~1.7x: both paths pay the same tuple+append cost, the
        win is the hoisted bounds check and branch-free translation.
        The 1.3 floor catches the batch path falling back to the
        per-line loop while tolerating runner noise.
        """
        assert kernels["shard_dispatch_batch"]["speedup_vs_reference"] >= 1.3

    def test_bulk_counter_lookup_not_slower(self, kernels):
        # The per-call loop is itself already mask-inlined, so the bulk
        # win is modest (~1.15x measured); 0.8 tolerates runner noise
        # while still catching an accidental slow-path rewrite.
        assert kernels["counter_cache_bulk_lookup"]["speedup_vs_reference"] >= 0.8


class TestSweepEngine:
    def test_sweep_modes_agree_and_cache_wins(self):
        report = bench_sweep(workers=2, scale="quick", experiment="fig12")
        assert report["identical_values"]
        # The warm-cache rerun must be dramatically cheaper than the
        # cold sweep; 10x is a very generous floor (measured: >1000x).
        assert report["cache_speedup"] >= 10.0
