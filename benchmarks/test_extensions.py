"""Benchmarks of the paper's suggested extensions (§6.3.3 discussion).

* Counter compression: the paper notes the traffic/lifetime improvement
  "will be higher if we consider compressing the counters" — measured
  here on the counter lines of real SCA/FCA runs.
* Start-Gap wear leveling: the paper's lifetime argument assumes a
  uniform leveler; this bench runs the actual Start-Gap algorithm over
  each design's write histogram and reports the resulting relative
  lifetimes.
"""

import pytest

from repro.bench.harness import run_workload
from repro.config import KB, bench_config, fast_config
from repro.crash.counter_recovery import CounterRecoverer
from repro.crash.injector import CrashInjector
from repro.crash.recovery import RecoveryManager
from repro.crypto.compression import traffic_savings
from repro.nvm.startgap import simulate_leveling
from repro.persist.journal import JournalKind
from repro.workloads.base import WorkloadParams

PARAMS = WorkloadParams(operations=50, footprint_bytes=32 * KB)


def test_counter_compression_savings(benchmark):
    """Compressing counter lines saves a large fraction of the counter
    write bytes for both SCA and FCA."""

    def run():
        savings = {}
        for design in ("sca", "fca"):
            outcome = run_workload(design, "array", config=bench_config(), params=PARAMS)
            lines = [
                record.counters
                for record in outcome.result.journal.records
                if record.kind is JournalKind.COUNTER and not record.single_slot
            ]
            savings[design] = (traffic_savings(lines), len(lines))
        return savings

    savings = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    for design, (fraction, lines) in savings.items():
        print("  %-4s %5.1f%% of counter bytes saved over %d counter-line writes"
              % (design, fraction * 100, lines))
    assert savings["sca"][0] > 0.5
    assert savings["fca"][0] > 0.5


def test_startgap_lifetime(benchmark):
    """Start-Gap flattens each design's wear; the relative lifetimes
    then track the write-traffic ordering (SCA >= FCA)."""

    def run():
        report = {}
        for design in ("sca", "fca"):
            outcome = run_workload(design, "queue", config=bench_config(), params=PARAMS)
            wear = outcome.result.controller.device.wear
            histogram = {}
            for line in list(wear._writes):
                histogram[(line // 64) % 512] = (
                    histogram.get((line // 64) % 512, 0) + wear.writes_to(line)
                )
            leveling = simulate_leveling(histogram, region_lines=512, gap_move_interval=16)
            leveling["total_writes"] = wear.total_writes
            report[design] = leveling
        return report

    report = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    for design, row in report.items():
        print(
            "  %-4s total=%d unleveled-max=%d leveled-max=%d improvement=%.2fx"
            % (
                design,
                row["total_writes"],
                row["unleveled_max"],
                row["leveled_max"],
                row["lifetime_improvement"],
            )
        )
    for design in ("sca", "fca"):
        assert report[design]["lifetime_improvement"] >= 1.0
    # Less total traffic (SCA) -> at least as long a life under
    # uniform leveling, the paper's §6.3.3 argument.
    assert report["sca"]["total_writes"] <= report["fca"]["total_writes"]


def test_osiris_style_counter_recovery(benchmark):
    """The follow-on direction this paper spawned: with per-line
    integrity tags, a bounded counter search turns the unsafe design's
    undecryptable crash states back into decryptable ones — trading
    recovery-time search for run-time counter-atomicity."""

    def run():
        params = WorkloadParams(operations=12, footprint_bytes=8 * KB)
        outcome = run_workload("unsafe", "array", config=fast_config(), params=params)
        injector = CrashInjector(outcome.result)
        manager = RecoveryManager(outcome.result.config.encryption)
        recoverer = CounterRecoverer(outcome.result.config.encryption, max_lag=512)
        rows = []
        for crash_ns in injector.interesting_times(limit=25):
            image = injector.crash_at(crash_ns)
            broken_before = len(manager.recover(image).garbage_lines)
            report = recoverer.recover_image(image)
            broken_after = len(manager.recover(image).garbage_lines)
            rows.append((broken_before, report.recovered, broken_after))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    total_before = sum(before for before, _rec, _after in rows)
    total_after = sum(after for _before, _rec, after in rows)
    print(
        "\n  %d crash points: %d undecryptable lines before search, %d after"
        % (len(rows), total_before, total_after)
    )
    assert total_before > 0, "unsafe design should break somewhere"
    assert total_after == 0, "bounded search should recover every counter"
