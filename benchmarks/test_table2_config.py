"""Table 2 — the evaluated system configuration."""

from conftest import assert_claims, run_once

from repro.bench.experiments import Table2Config


def test_table2_system_configuration(benchmark):
    result = run_once(benchmark, Table2Config())
    assert_claims(result)
