"""Figures 7/8 — write timelines under full vs selective atomicity.

Figure 7/8's point: FCA pairs every data write with a counter write,
inflating queue traffic through the three transaction stages, while SCA
lets prepare/mutate writes relax and pays the pairing only at the
commit record.  We measure a burst of undo transactions and compare
counter-queue entries and total runtime.
"""

import pytest

from repro.config import KB, bench_config
from repro.bench.harness import run_workload
from repro.workloads.base import WorkloadParams


def run_burst(design):
    params = WorkloadParams(operations=60, footprint_bytes=32 * KB, ops_per_txn=4)
    return run_workload(design, "array", config=bench_config(), params=params)


def run_experiment():
    outcomes = {design: run_burst(design) for design in ("sca", "fca", "ideal")}
    return {
        design: {
            "runtime_ns": outcome.stats.runtime_ns,
            "counter_entries": outcome.result.controller.counter_queue.accepted,
            "paired_writes": outcome.result.controller.stats.paired_writes,
        }
        for design, outcome in outcomes.items()
    }


def test_fig8_stage_timeline(benchmark):
    rows = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    print()
    for design, row in rows.items():
        print(
            "  %-6s runtime=%.0fns counter-queue-entries=%d paired=%d"
            % (design, row["runtime_ns"], row["counter_entries"], row["paired_writes"])
        )
    # FCA pairs every write; SCA pairs only commit records.
    assert rows["fca"]["paired_writes"] > rows["sca"]["paired_writes"]
    assert rows["fca"]["counter_entries"] >= rows["sca"]["counter_entries"]
    # SCA is never slower than FCA, and ideal bounds both from below.
    assert rows["sca"]["runtime_ns"] <= rows["fca"]["runtime_ns"] * 1.001
    assert rows["ideal"]["runtime_ns"] <= rows["sca"]["runtime_ns"] * 1.001
