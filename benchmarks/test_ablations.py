"""Ablations of the design choices DESIGN.md calls out.

* drain policy: ready-first (paper) vs strict FIFO head-of-line blocking,
* write-queue coalescing on/off,
* counter write-queue depth,
* counter drain hold window (deferred counter writeback),
* cipher backend: fast PRF vs real AES (functional equivalence).
"""

import dataclasses

import pytest

from repro.bench.harness import run_workload
from repro.config import KB, EncryptionConfig, bench_config, fast_config
from repro.workloads.base import WorkloadParams

PARAMS = WorkloadParams(operations=40, footprint_bytes=32 * KB)


def run_with(controller_overrides=None, design="sca", workload="array", cores=1):
    config = bench_config(cores)
    if controller_overrides:
        config = config.with_controller(**controller_overrides)
    return run_workload(design, workload, config=config, params=PARAMS)


class TestDrainPolicyAblation:
    def test_fifo_never_faster(self, benchmark):
        def run():
            relaxed = run_with({"drain_policy": "ready-first"}, cores=2)
            fifo = run_with({"drain_policy": "fifo"}, cores=2)
            return relaxed.stats.runtime_ns, fifo.stats.runtime_ns

        relaxed_ns, fifo_ns = benchmark.pedantic(run, rounds=1, iterations=1)
        print("\n  ready-first=%.0fns fifo=%.0fns" % (relaxed_ns, fifo_ns))
        assert fifo_ns >= relaxed_ns * 0.999


class TestCoalescingAblation:
    def test_coalescing_reduces_traffic(self, benchmark):
        def run():
            on = run_with({"coalesce_writes": True})
            off = run_with({"coalesce_writes": False})
            return on.stats.bytes_written, off.stats.bytes_written

        on_bytes, off_bytes = benchmark.pedantic(run, rounds=1, iterations=1)
        print("\n  coalescing-on=%dB coalescing-off=%dB" % (on_bytes, off_bytes))
        assert on_bytes <= off_bytes


class TestCounterQueueDepth:
    def test_deeper_counter_queue_never_hurts_fca(self, benchmark):
        def run():
            shallow = run_with({"counter_write_queue_entries": 4}, design="fca", cores=2)
            paper = run_with({"counter_write_queue_entries": 16}, design="fca", cores=2)
            return shallow.stats.runtime_ns, paper.stats.runtime_ns

        shallow_ns, paper_ns = benchmark.pedantic(run, rounds=1, iterations=1)
        print("\n  4-entry=%.0fns 16-entry=%.0fns" % (shallow_ns, paper_ns))
        assert paper_ns <= shallow_ns * 1.001


class TestCounterDrainHold:
    def test_hold_trades_coalescing_for_slot_waits(self, benchmark):
        def run():
            eager = run_with({"counter_drain_hold_ns": 0.0})
            held = run_with({"counter_drain_hold_ns": 1500.0})
            return (
                eager.stats.bytes_written,
                held.stats.bytes_written,
                eager.stats.runtime_ns,
                held.stats.runtime_ns,
            )

        eager_bytes, held_bytes, eager_ns, held_ns = benchmark.pedantic(
            run, rounds=1, iterations=1
        )
        print(
            "\n  eager: %dB %.0fns | held: %dB %.0fns"
            % (eager_bytes, eager_ns, held_bytes, held_ns)
        )
        # Holding counter drains coalesces more (fewer bytes) ...
        assert held_bytes <= eager_bytes
        # ... which is why it is an ablation, not the default: the
        # runtime cost is what the default avoids.


class TestCipherAblation:
    def test_aes_and_prf_agree_functionally(self, benchmark):
        """Both ciphers produce crash-consistent, correct runs; AES is
        the validated reference, the PRF the fast default."""

        def run():
            import dataclasses as dc

            from repro.config import fast_config

            prf_config = fast_config()
            aes_config = dc.replace(
                prf_config, encryption=EncryptionConfig(cipher="aes")
            )
            small = WorkloadParams(operations=5, footprint_bytes=8 * KB)
            prf = run_workload("sca", "array", config=prf_config, params=small)
            aes = run_workload("sca", "array", config=aes_config, params=small)
            return prf, aes

        prf, aes = benchmark.pedantic(run, rounds=1, iterations=1)
        # Identical traces -> identical timing (latency is modeled, not
        # computed) and identical plaintext state.
        assert prf.stats.runtime_ns == aes.stats.runtime_ns
        model = prf.runs[0].final_model
        for line in model.touched_lines():
            assert aes.result.hierarchy.read_current(0, line, 64) == model.line(line)


class TestMechanismComparison:
    def test_checksummed_undo_halves_ca_writes(self, benchmark):
        """Protocol ablation: self-validating log entries drop the arm
        barrier and its counter-atomic pair (see docs/protocol.md),
        trading recovery-time log scans for commit-path latency."""

        def run():
            params = WorkloadParams(operations=40, footprint_bytes=16 * KB)
            rows = {}
            for mechanism in ("undo", "checksum-undo", "redo"):
                outcome = run_workload(
                    "sca", "array", config=bench_config(), params=params,
                    mechanism=mechanism,
                )
                rows[mechanism] = {
                    "runtime_ns": outcome.stats.runtime_ns,
                    "paired": outcome.result.controller.stats.paired_writes,
                    "bytes": outcome.stats.bytes_written,
                }
            return rows

        rows = benchmark.pedantic(run, rounds=1, iterations=1)
        print()
        for mechanism, row in rows.items():
            print("  %-14s runtime=%.0fns paired=%d bytes=%d"
                  % (mechanism, row["runtime_ns"], row["paired"], row["bytes"]))
        assert rows["checksum-undo"]["paired"] <= rows["undo"]["paired"] // 2 + 1
        assert rows["checksum-undo"]["runtime_ns"] <= rows["undo"]["runtime_ns"] * 1.02
