"""Integrity extension — Bonsai-tree overhead vs the tree-less bases.

Not a figure from the paper: it prices the integrity tree the paper's
threat model omits.  Eager (Freij-style) root-path draining costs real
runtime; lazy (Phoenix-style) node-cache coalescing is near-free; and
SCA's metadata relaxation carries over — SCA+lazy keeps a clear runtime
and write-traffic lead over FCA+eager.
"""

from conftest import assert_claims, run_once

from repro.bench.experiments import FigIntegrity


def test_fig_integrity(benchmark):
    result = run_once(benchmark, FigIntegrity())
    assert_claims(result)
    # A tree never makes a design cheaper than its tree-less base.
    for series in result.series:
        for value in series.points.values():
            assert value >= 0.99
