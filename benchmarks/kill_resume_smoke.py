#!/usr/bin/env python
"""Kill-and-resume smoke test for checkpointed crash campaigns.

The campaign engine promises two-level crash consistency: finished jobs
resume from the journal, and an interrupted job's *simulation* resumes
from its newest valid snapshot (``--checkpoint-every``).  This script
proves it the honest way:

1. run a small seeded campaign uninterrupted and record its triage
   totals (the baseline);
2. start the same campaign with checkpointing in a subprocess, wait for
   the first snapshot file to appear, and SIGKILL the process — no
   warning, no cleanup, exactly like a power cut;
3. rerun the same command and assert that (a) it restored at least one
   snapshot and (b) its triage totals are identical to the baseline.

A kill can race a very fast job (snapshot seen, but the job journals
and cleans up before the signal lands); the smoke retries a few times
before declaring failure.  Exit 0 on success, 1 on failure.

Usage::

    python benchmarks/kill_resume_smoke.py [--attempts 3] [--workdir DIR]
"""

import argparse
import glob
import json
import os
import shutil
import subprocess
import sys
import tempfile
import time

ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

CHECKPOINT_EVERY = 100
POLL_S = 0.005
FIRST_SNAPSHOT_TIMEOUT_S = 120.0


def campaign_command(campaign_dir, operations, json_path=None):
    command = [
        sys.executable, "-m", "repro.bench.cli", "campaign",
        "--workloads", "array",
        "--designs", "sca",
        "--mechanisms", "undo",
        "--faults", "none,torn-counter",
        "--crash-points", "6",
        "--operations", str(operations),
        "--seed", "42",
        "--campaign-dir", campaign_dir,
        "--checkpoint-every", str(CHECKPOINT_EVERY),
    ]
    if json_path is not None:
        command += ["--json", json_path]
    return command


def child_env():
    env = dict(os.environ)
    src = os.path.join(ROOT, "src")
    env["PYTHONPATH"] = (
        src + os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else src
    )
    return env


def run_baseline(workdir, operations):
    json_path = os.path.join(workdir, "baseline.json")
    command = campaign_command(
        os.path.join(workdir, "baseline"), operations, json_path
    )
    subprocess.run(command, env=child_env(), check=True)
    with open(json_path, "r", encoding="utf-8") as handle:
        return json.load(handle)["totals"]


def attempt_kill_resume(workdir, operations, attempt):
    """One kill-and-resume round; returns the resumed document or None
    when the kill raced the campaign to completion."""
    campaign_dir = os.path.join(workdir, "killed-%d" % attempt)
    process = subprocess.Popen(
        campaign_command(campaign_dir, operations),
        env=child_env(),
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
    )
    snapshot_glob = os.path.join(campaign_dir, "checkpoints", "*", "*.ckpt")
    deadline = time.time() + FIRST_SNAPSHOT_TIMEOUT_S
    saw_snapshot = False
    try:
        while time.time() < deadline:
            if glob.glob(snapshot_glob):
                saw_snapshot = True
                break
            if process.poll() is not None:
                break
            time.sleep(POLL_S)
    finally:
        process.kill()
        process.wait()
    if not saw_snapshot:
        print("attempt %d: campaign finished before its first snapshot; "
              "retrying with more work" % attempt)
        return None
    json_path = os.path.join(workdir, "resumed-%d.json" % attempt)
    resumed = subprocess.run(
        campaign_command(campaign_dir, operations, json_path), env=child_env()
    )
    if resumed.returncode != 0:
        raise SystemExit("resumed campaign exited %d" % resumed.returncode)
    with open(json_path, "r", encoding="utf-8") as handle:
        document = json.load(handle)
    if document["resilience"]["restored"] < 1:
        print("attempt %d: kill raced job completion (nothing restored); "
              "retrying" % attempt)
        return None
    return document


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--attempts", type=int, default=3)
    parser.add_argument("--operations", type=int, default=60)
    parser.add_argument("--workdir", default=None,
                        help="scratch directory (default: a fresh tempdir)")
    args = parser.parse_args(argv)

    workdir = args.workdir or tempfile.mkdtemp(prefix="kill-resume-smoke-")
    os.makedirs(workdir, exist_ok=True)
    try:
        baseline_totals = run_baseline(workdir, args.operations)
        print("baseline totals: %s" % json.dumps(baseline_totals, sort_keys=True))
        document = None
        operations = args.operations
        for attempt in range(1, args.attempts + 1):
            document = attempt_kill_resume(workdir, operations, attempt)
            if document is not None:
                break
            # More simulated work widens the kill window for the retry —
            # but changes the job key, so rebuild the baseline to match.
            operations *= 2
            baseline_totals = run_baseline(
                os.path.join(workdir, "baseline-%d" % attempt), operations
            )
        if document is None:
            print("FAIL: no attempt managed to kill the campaign mid-run")
            return 1
        restored = document["resilience"]["restored"]
        print("resumed run restored %d snapshot(s); totals: %s"
              % (restored, json.dumps(document["totals"], sort_keys=True)))
        if document["totals"] != baseline_totals:
            print("FAIL: resumed triage totals differ from the baseline")
            return 1
        print("PASS: kill-and-resume reproduced the baseline triage exactly")
        return 0
    finally:
        if args.workdir is None:
            shutil.rmtree(workdir, ignore_errors=True)


if __name__ == "__main__":
    raise SystemExit(main())
