"""Table 1 — which transaction stages need counter-atomicity.

Static rules plus crash sweeps: SCA and FCA recover from every injected
crash; the unsafe design (no counter-atomicity anywhere) does not.
"""

from conftest import assert_claims, run_once

from repro.bench.experiments import Table1Stages


def test_table1_stage_requirements(benchmark):
    result = run_once(benchmark, Table1Stages())
    assert_claims(result)
