"""The volatile cache hierarchy: private L1s over a shared L2.

The hierarchy is functional (real bytes flow through it) and returns
timing in the same resource-timeline style as the controller: every
access takes the core's current time and yields an absolute completion
time plus any writeback acceptance times the core's persistency tracker
must observe.

Eviction policy: inclusive-enough write-back/write-allocate.  L1 dirty
victims merge into L2; L2 dirty victims become controller writes that
carry their CounterAtomic flag (Section 5.1: the annotation travels
with the line so the controller can pair the writeback).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from ..config import CACHE_LINE_SIZE, SystemConfig
from ..errors import AddressError, SimulationError
from .cache import Cache, EvictedLine
from .controller import MemoryController


@dataclass
class HierarchyAccess:
    """Outcome of one load/store as seen by the issuing core."""

    complete_ns: float
    #: Bytes loaded (loads only; None for stores or timing-only mode).
    data: Optional[bytes]
    #: Where the access was satisfied: "l1", "l2" or "memory".
    served_by: str
    #: Queue-acceptance times of any writebacks this access triggered
    #: (dirty evictions); persist_barriers need not wait on these (the
    #: paper's barrier covers clwb'd lines), but crash modeling does.
    writeback_accepts: List[float] = field(default_factory=list)


class CacheHierarchy:
    """Per-core L1 caches over one shared L2, in front of one controller."""

    def __init__(self, config: SystemConfig, controller: MemoryController) -> None:
        self.config = config
        self.controller = controller
        functional = config.functional
        self.l1s: List[Cache] = [
            Cache(config.l1, functional=functional, name="l1-core%d" % core)
            for core in range(config.num_cores)
        ]
        self.l2 = Cache(config.l2, functional=functional, name="l2")
        self._functional = functional

    # ------------------------------------------------------------------
    # Internal fill machinery
    # ------------------------------------------------------------------

    def _handle_l2_victim(self, victim: Optional[EvictedLine], now_ns: float) -> List[float]:
        accepts: List[float] = []
        if victim is not None and victim.dirty:
            ticket = self.controller.write_line(
                victim.address,
                victim.payload,
                now_ns,
                counter_atomic=victim.counter_atomic,
            )
            accepts.append(ticket.accept_ns)
        return accepts

    def _handle_l1_victim(self, victim: Optional[EvictedLine], now_ns: float) -> List[float]:
        """L1 victims merge into L2; L2's own victim may go to memory."""
        accepts: List[float] = []
        if victim is None or not victim.dirty:
            return accepts
        if self.l2.contains(victim.address):
            self.l2.write(
                victim.address,
                victim.payload,
                CACHE_LINE_SIZE,
                counter_atomic=victim.counter_atomic,
            )
        else:
            l2_victim = self.l2.fill(
                victim.address,
                victim.payload,
                dirty=True,
                counter_atomic=victim.counter_atomic,
            )
            accepts.extend(self._handle_l2_victim(l2_victim, now_ns))
        return accepts

    def _fill_from_memory(
        self, core: int, line_address: int, now_ns: float
    ) -> Tuple[float, Optional[bytes], List[float]]:
        """Miss everywhere: read from the controller, fill L2 then L1."""
        result = self.controller.read_line(line_address, now_ns)
        complete = result.complete_ns
        accepts: List[float] = []
        l2_victim = self.l2.fill(line_address, result.plaintext)
        accepts.extend(self._handle_l2_victim(l2_victim, complete))
        l1_victim = self.l1s[core].fill(line_address, result.plaintext)
        accepts.extend(self._handle_l1_victim(l1_victim, complete))
        return complete, result.plaintext, accepts

    def _ensure_in_l1(
        self, core: int, address: int, now_ns: float
    ) -> Tuple[float, str, List[float]]:
        """Bring the line into this core's L1; returns (time, source, accepts)."""
        line_address = Cache.line_address(address)
        l1 = self.l1s[core]
        if l1.contains(line_address):
            return now_ns + self.config.l1.hit_latency_ns, "l1", []
        # L1 miss: consult the shared L2.
        hit = self.l2.read(line_address, CACHE_LINE_SIZE)
        now_ns += self.config.l1.hit_latency_ns  # L1 lookup that missed
        if hit is not None:
            data, l2_line = hit
            complete = now_ns + self.config.l2.hit_latency_ns
            l1_victim = l1.fill(line_address, data)
            accepts = self._handle_l1_victim(l1_victim, complete)
            return complete, "l2", accepts
        complete = now_ns + self.config.l2.hit_latency_ns  # L2 lookup that missed
        fill_time, _, accepts = self._fill_from_memory(core, line_address, complete)
        return fill_time, "memory", accepts

    # ------------------------------------------------------------------
    # Public operations
    # ------------------------------------------------------------------

    def load(self, core: int, address: int, length: int, now_ns: float) -> HierarchyAccess:
        """Load ``length`` bytes (must not cross a line boundary)."""
        self._check_span(address, length)
        complete, served_by, accepts = self._ensure_in_l1(core, address, now_ns)
        data: Optional[bytes] = None
        hit = self.l1s[core].read(address, length)
        if hit is None:
            raise SimulationError("line vanished from L1 after fill")
        data = hit[0]
        return HierarchyAccess(
            complete_ns=complete, data=data, served_by=served_by, writeback_accepts=accepts
        )

    def store(
        self,
        core: int,
        address: int,
        data: Optional[bytes],
        length: int,
        now_ns: float,
        counter_atomic: bool = False,
    ) -> HierarchyAccess:
        """Store bytes (write-allocate; must not cross a line boundary)."""
        if data is not None:
            length = len(data)
        self._check_span(address, length)
        complete, served_by, accepts = self._ensure_in_l1(core, address, now_ns)
        if not self.l1s[core].write(address, data, length, counter_atomic=counter_atomic):
            raise SimulationError("store missed L1 after fill")
        return HierarchyAccess(
            complete_ns=complete, data=None, served_by=served_by, writeback_accepts=accepts
        )

    def clwb(self, core: int, address: int, now_ns: float) -> Optional[float]:
        """Write back (without invalidating) the line holding ``address``.

        Searches L1 then L2 for a dirty copy and forwards it to the
        memory controller.  Returns the queue-acceptance time the
        core's next sfence must wait for, or None if the line was clean
        or absent (a no-op clwb).
        """
        line_address = Cache.line_address(address)
        flushed = self.l1s[core].clean_line(line_address)
        if flushed is not None:
            # Keep L2's copy (if any) coherent with the flushed data.
            if self.l2.contains(line_address):
                self.l2.write(line_address, flushed.payload, CACHE_LINE_SIZE)
                l2_line = self.l2.peek(line_address)
                if l2_line is not None:
                    l2_line.dirty = False
        else:
            flushed = self.l2.clean_line(line_address)
        if flushed is None:
            return None
        issue = now_ns + self.config.l1.hit_latency_ns
        ticket = self.controller.write_line(
            flushed.address,
            flushed.payload,
            issue,
            counter_atomic=flushed.counter_atomic,
        )
        return ticket.accept_ns

    def flush_all_dirty(self, now_ns: float) -> List[float]:
        """Write back every dirty line (used by flush-on-exit tooling)."""
        accepts: List[float] = []
        for core in range(len(self.l1s)):
            for line in self.l1s[core].dirty_lines():
                accept = self.clwb(core, line.address, now_ns)
                if accept is not None:
                    accepts.append(accept)
        for line in self.l2.dirty_lines():
            flushed = self.l2.clean_line(line.address)
            if flushed is None:
                continue
            ticket = self.controller.write_line(
                flushed.address,
                flushed.payload,
                now_ns,
                counter_atomic=flushed.counter_atomic,
            )
            accepts.append(ticket.accept_ns)
        return accepts

    def read_current(self, core: int, address: int, length: int) -> Optional[bytes]:
        """Functional peek that bypasses timing (debug / checkers)."""
        line_address = Cache.line_address(address)
        offset = address - line_address
        l1_line = self.l1s[core].peek(address)
        if l1_line is not None:
            return l1_line.read_bytes(offset, length)
        l2_line = self.l2.peek(address)
        if l2_line is not None:
            return l2_line.read_bytes(offset, length)
        stored = self.controller.device.read_line(line_address)
        if self.controller.engine is not None and self.config.functional:
            plaintext = self.controller.engine.cipher.decrypt(
                line_address, stored.encrypted_with, stored.payload
            )
            return plaintext[offset : offset + length]
        return stored.payload[offset : offset + length]

    def invalidate_all(self) -> None:
        """Drop all cached state (power failure)."""
        for l1 in self.l1s:
            l1.invalidate_all()
        self.l2.invalidate_all()

    def get_state(self) -> dict:
        """Checkpoint state of every cache level."""
        return {
            "l1s": [l1.get_state() for l1 in self.l1s],
            "l2": self.l2.get_state(),
        }

    def set_state(self, state: dict) -> None:
        if len(state["l1s"]) != len(self.l1s):
            raise SimulationError(
                "snapshot has %d L1 caches, machine has %d"
                % (len(state["l1s"]), len(self.l1s))
            )
        for l1, l1_state in zip(self.l1s, state["l1s"]):
            l1.set_state(l1_state)
        self.l2.set_state(state["l2"])

    @staticmethod
    def _check_span(address: int, length: int) -> None:
        if length <= 0 or length > CACHE_LINE_SIZE:
            raise AddressError("access length %d out of range" % length)
        line_address = Cache.line_address(address)
        if address - line_address + length > CACHE_LINE_SIZE:
            raise AddressError(
                "access at 0x%x of %d bytes crosses a cache line" % (address, length)
            )
