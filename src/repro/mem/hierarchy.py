"""The volatile cache hierarchy: private L1s over a shared L2.

The hierarchy is functional (real bytes flow through it) and returns
timing in the same resource-timeline style as the controller: every
access takes the core's current time and yields an absolute completion
time plus any writeback acceptance times the core's persistency tracker
must observe.

Eviction policy: inclusive-enough write-back/write-allocate.  L1 dirty
victims merge into L2; L2 dirty victims become controller writes that
carry their CounterAtomic flag (Section 5.1: the annotation travels
with the line so the controller can pair the writeback).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, List, Optional, Tuple

from ..config import CACHE_LINE_SIZE, SystemConfig
from ..errors import AddressError, SimulationError
from .cache import Cache, EvictedLine

if TYPE_CHECKING:
    from ..sim.machine import MemorySystem

_LINE_MASK = ~(CACHE_LINE_SIZE - 1)
_LINE_SHIFT = CACHE_LINE_SIZE.bit_length() - 1


@dataclass(slots=True)
class HierarchyAccess:
    """Outcome of one load/store as seen by the issuing core."""

    complete_ns: float
    #: Bytes loaded (loads only; None for stores or timing-only mode).
    data: Optional[bytes]
    #: Where the access was satisfied: "l1", "l2" or "memory".
    served_by: str
    #: Queue-acceptance times of any writebacks this access triggered
    #: (dirty evictions); persist_barriers need not wait on these (the
    #: paper's barrier covers clwb'd lines), but crash modeling does.
    writeback_accepts: List[float] = field(default_factory=list)


class CacheHierarchy:
    """Per-core L1 caches over one shared L2, in front of one controller."""

    def __init__(self, config: SystemConfig, controller: "MemorySystem") -> None:
        self.config = config
        self.controller = controller
        functional = config.functional
        self.l1s: List[Cache] = [
            Cache(config.l1, functional=functional, name="l1-core%d" % core)
            for core in range(config.num_cores)
        ]
        self.l2 = Cache(config.l2, functional=functional, name="l2")
        self._functional = functional
        # Hit latencies hoisted out of the per-access config walk.
        self._l1_hit_ns = config.l1.hit_latency_ns
        self._l2_hit_ns = config.l2.hit_latency_ns

    # ------------------------------------------------------------------
    # Internal fill machinery
    # ------------------------------------------------------------------

    def _handle_l2_victim(
        self, victim: Optional[EvictedLine], now_ns: float
    ) -> Optional[float]:
        """A dirty L2 victim becomes a controller write; returns its accept."""
        if victim is None:
            return None
        ticket = self.controller.write_line(
            victim.address,
            victim.payload,
            now_ns,
            counter_atomic=victim.counter_atomic,
        )
        return ticket.accept_ns

    def _handle_l1_victim(
        self, victim: Optional[EvictedLine], now_ns: float
    ) -> Optional[float]:
        """Dirty L1 victims merge into L2; L2's own victim may go to memory."""
        if victim is None:
            return None
        if self.l2.contains(victim.address):
            self.l2.write(
                victim.address,
                victim.payload,
                CACHE_LINE_SIZE,
                counter_atomic=victim.counter_atomic,
            )
            return None
        l2_victim = self.l2.fill(
            victim.address,
            victim.payload,
            dirty=True,
            counter_atomic=victim.counter_atomic,
        )
        return self._handle_l2_victim(l2_victim, now_ns)

    def _fill_from_memory(
        self, core: int, line_address: int, now_ns: float
    ) -> Tuple[float, Tuple[float, ...]]:
        """Miss everywhere: read from the controller, fill L2 then L1."""
        result = self.controller.read_line(line_address, now_ns)
        complete = result.complete_ns
        plaintext = result.plaintext
        l2_accept = self._handle_l2_victim(self.l2.fill(line_address, plaintext), complete)
        l1_accept = self._handle_l1_victim(
            self.l1s[core].fill(line_address, plaintext), complete
        )
        if l2_accept is None:
            accepts = () if l1_accept is None else (l1_accept,)
        else:
            accepts = (l2_accept,) if l1_accept is None else (l2_accept, l1_accept)
        return complete, accepts

    def _miss_in_l1(
        self, core: int, line_address: int, now_ns: float
    ) -> Tuple[float, str, Tuple[float, ...]]:
        """L1 lookup already missed: consult the shared L2, then memory."""
        hit = self.l2.read(line_address, CACHE_LINE_SIZE)
        now_ns += self._l1_hit_ns  # L1 lookup that missed
        if hit is not None:
            complete = now_ns + self._l2_hit_ns
            accept = self._handle_l1_victim(
                self.l1s[core].fill(line_address, hit[0]), complete
            )
            return complete, "l2", () if accept is None else (accept,)
        complete = now_ns + self._l2_hit_ns  # L2 lookup that missed
        fill_time, accepts = self._fill_from_memory(core, line_address, complete)
        return fill_time, "memory", accepts

    def _ensure_in_l1(
        self, core: int, address: int, now_ns: float
    ) -> Tuple[float, str, Tuple[float, ...]]:
        """Bring the line into this core's L1; returns (time, source, accepts)."""
        line_address = address & _LINE_MASK
        if self.l1s[core].contains(line_address):
            return now_ns + self._l1_hit_ns, "l1", ()
        return self._miss_in_l1(core, line_address, now_ns)

    # ------------------------------------------------------------------
    # Public operations
    # ------------------------------------------------------------------

    def load_complete(self, core: int, address: int, length: int, now_ns: float) -> float:
        """Timing fast path: ``load(...).complete_ns`` without the wrapper.

        This performs exactly the stat increments and LRU touches of the
        full path and skips the :class:`HierarchyAccess` allocation; the
        machine's inner loop discards the loaded bytes anyway.  On a
        miss it runs the shared fill machinery and then replays the
        guaranteed L1 hit inline.  A span that the full path would
        reject falls back to :meth:`load`, so errors stay identical.
        """
        line_address = address & _LINE_MASK
        if 0 < length <= CACHE_LINE_SIZE and address - line_address + length <= CACHE_LINE_SIZE:
            l1 = self.l1s[core]
            cache_set = l1._sets[(line_address >> _LINE_SHIFT) & l1._set_mask]
            line = cache_set.get(line_address)
            if line is None:
                # Miss: the shared fill machinery, then the L1 re-read
                # that load() performs (bytes are discarded; the byte
                # copy has no observable effect either way).
                complete = self._miss_in_l1(core, line_address, now_ns)[0]
                line = cache_set.get(line_address)
                if line is None:
                    raise SimulationError("line vanished from L1 after fill")
                l1.stats.read_hits += 1
                l1._tick += 1
                line.lru_tick = l1._tick
                return complete
            l1.stats.read_hits += 1
            l1._tick += 1
            line.lru_tick = l1._tick
            return now_ns + self._l1_hit_ns
        return self.load(core, address, length, now_ns).complete_ns

    def store_complete(
        self,
        core: int,
        address: int,
        data: Optional[bytes],
        length: int,
        now_ns: float,
        counter_atomic: bool = False,
    ) -> float:
        """Timing fast path: ``store(...).complete_ns`` without the wrapper.

        Stores replicate the full path's effects exactly — one
        ``write_hits`` bump, an LRU touch, the byte write (functional
        mode), the dirty and CounterAtomic flags — and skip the
        :class:`HierarchyAccess` allocation.  Misses run the shared
        fill machinery first (write-allocate); rejectable spans fall
        back to :meth:`store`.
        """
        if data is not None:
            length = len(data)
        line_address = address & _LINE_MASK
        if 0 < length <= CACHE_LINE_SIZE and address - line_address + length <= CACHE_LINE_SIZE:
            l1 = self.l1s[core]
            cache_set = l1._sets[(line_address >> _LINE_SHIFT) & l1._set_mask]
            line = cache_set.get(line_address)
            if line is None:
                complete = self._miss_in_l1(core, line_address, now_ns)[0]
                line = cache_set.get(line_address)
                if line is None:
                    raise SimulationError("store missed L1 after fill")
            else:
                complete = now_ns + self._l1_hit_ns
            l1.stats.write_hits += 1
            l1._tick += 1
            line.lru_tick = l1._tick
            if data is not None:
                line.write_bytes(address - line_address, data)
            line.dirty = True
            if counter_atomic:
                line.counter_atomic = True
            return complete
        return self.store(
            core, address, data, length, now_ns, counter_atomic=counter_atomic
        ).complete_ns

    def load(self, core: int, address: int, length: int, now_ns: float) -> HierarchyAccess:
        """Load ``length`` bytes (must not cross a line boundary)."""
        self._check_span(address, length)
        complete, served_by, accepts = self._ensure_in_l1(core, address, now_ns)
        data: Optional[bytes] = None
        hit = self.l1s[core].read(address, length)
        if hit is None:
            raise SimulationError("line vanished from L1 after fill")
        data = hit[0]
        return HierarchyAccess(
            complete_ns=complete,
            data=data,
            served_by=served_by,
            writeback_accepts=list(accepts),
        )

    def store(
        self,
        core: int,
        address: int,
        data: Optional[bytes],
        length: int,
        now_ns: float,
        counter_atomic: bool = False,
    ) -> HierarchyAccess:
        """Store bytes (write-allocate; must not cross a line boundary)."""
        if data is not None:
            length = len(data)
        self._check_span(address, length)
        complete, served_by, accepts = self._ensure_in_l1(core, address, now_ns)
        if not self.l1s[core].write(address, data, length, counter_atomic=counter_atomic):
            raise SimulationError("store missed L1 after fill")
        return HierarchyAccess(
            complete_ns=complete,
            data=None,
            served_by=served_by,
            writeback_accepts=list(accepts),
        )

    def clwb(self, core: int, address: int, now_ns: float) -> Optional[float]:
        """Write back (without invalidating) the line holding ``address``.

        Searches L1 then L2 for a dirty copy and forwards it to the
        memory controller.  Returns the queue-acceptance time the
        core's next sfence must wait for, or None if the line was clean
        or absent (a no-op clwb).
        """
        line_address = address & _LINE_MASK
        l1 = self.l1s[core]
        line = l1._sets[(line_address >> _LINE_SHIFT) & l1._set_mask].get(line_address)
        if line is not None and line.dirty:
            # == l1.clean_line, without the EvictedLine allocation.
            line.dirty = False
            counter_atomic = line.counter_atomic
            line.counter_atomic = False
            l1.stats.writebacks_cleaned += 1
            payload = line.snapshot_payload()
            # Keep L2's copy (if any) coherent with the flushed data:
            # one lookup replaces contains + write + peek; the write-hit
            # stat, LRU touch and byte merge match l2.write, and the
            # net dirty state is False exactly as before.
            l2 = self.l2
            l2_line = l2._sets[(line_address >> _LINE_SHIFT) & l2._set_mask].get(line_address)
            if l2_line is not None:
                l2.stats.write_hits += 1
                l2._tick += 1
                l2_line.lru_tick = l2._tick
                if payload is not None:
                    l2_line.write_bytes(0, payload)
                l2_line.dirty = False
        else:
            flushed = self.l2.clean_line(line_address)
            if flushed is None:
                return None
            payload = flushed.payload
            counter_atomic = flushed.counter_atomic
        issue = now_ns + self._l1_hit_ns
        ticket = self.controller.write_line(
            line_address,
            payload,
            issue,
            counter_atomic=counter_atomic,
        )
        return ticket.accept_ns

    def flush_all_dirty(self, now_ns: float) -> List[float]:
        """Write back every dirty line (used by flush-on-exit tooling)."""
        accepts: List[float] = []
        for core in range(len(self.l1s)):
            for line in self.l1s[core].dirty_lines():
                accept = self.clwb(core, line.address, now_ns)
                if accept is not None:
                    accepts.append(accept)
        for line in self.l2.dirty_lines():
            flushed = self.l2.clean_line(line.address)
            if flushed is None:
                continue
            ticket = self.controller.write_line(
                flushed.address,
                flushed.payload,
                now_ns,
                counter_atomic=flushed.counter_atomic,
            )
            accepts.append(ticket.accept_ns)
        return accepts

    def read_current(self, core: int, address: int, length: int) -> Optional[bytes]:
        """Functional peek that bypasses timing (debug / checkers)."""
        line_address = Cache.line_address(address)
        offset = address - line_address
        l1_line = self.l1s[core].peek(address)
        if l1_line is not None:
            return l1_line.read_bytes(offset, length)
        l2_line = self.l2.peek(address)
        if l2_line is not None:
            return l2_line.read_bytes(offset, length)
        stored = self.controller.peek_line(line_address)
        return stored[offset : offset + length]

    def invalidate_all(self) -> None:
        """Drop all cached state (power failure)."""
        for l1 in self.l1s:
            l1.invalidate_all()
        self.l2.invalidate_all()

    def get_state(self) -> dict:
        """Checkpoint state of every cache level."""
        return {
            "l1s": [l1.get_state() for l1 in self.l1s],
            "l2": self.l2.get_state(),
        }

    def set_state(self, state: dict) -> None:
        if len(state["l1s"]) != len(self.l1s):
            raise SimulationError(
                "snapshot has %d L1 caches, machine has %d"
                % (len(state["l1s"]), len(self.l1s))
            )
        for l1, l1_state in zip(self.l1s, state["l1s"]):
            l1.set_state(l1_state)
        self.l2.set_state(state["l2"])

    @staticmethod
    def _check_span(address: int, length: int) -> None:
        if length <= 0 or length > CACHE_LINE_SIZE:
            raise AddressError("access length %d out of range" % length)
        line_address = Cache.line_address(address)
        if address - line_address + length > CACHE_LINE_SIZE:
            raise AddressError(
                "access at 0x%x of %d bytes crosses a cache line" % (address, length)
            )
