"""Integrity-persistence policies: tree-node drains and fetch authentication.

The integrity layer owns the Bonsai Merkle Tree state of the ``+bmt``
designs — the working tree (with its on-chip secure root), the tree
node cache, and the dedicated tree write queue — and the two hooks the
rest of the controller calls:

* ``note_counter_persist`` — re-hash the leaf-to-root path whenever a
  counter line persists, and persist interior nodes per the mode:
  :class:`EagerTreePersistence` drives the whole path into the tree
  write queue right there (Freij-style strict ordering, no ADR cover —
  the write settles only when the path has drained), while
  :class:`LazyTreePersistence` dirties the node cache and flushes at
  ``counter_cache_writeback()`` / eviction (the Phoenix relaxation —
  safe because interior nodes are reconstructible from persisted
  leaves).
* ``verify_counter_fetch`` — authenticate a counter-line fetch against
  the tree before its counters may generate OTPs.

:class:`NoIntegrity` is the null object for every design without a
tree: all hooks are free and no state is kept.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional, Tuple

from ..config import CACHE_LINE_SIZE, SystemConfig
from ..core.designs import DesignPolicy
from ..errors import SimulationError
from ..integrity.cache import TreeNodeCache
from ..integrity.tree import IntegrityTreeEngine, TreeNode
from .writequeue import WriteQueue

if TYPE_CHECKING:
    from .controller import MemoryController


class NoIntegrity:
    """Null integrity persistence: no tree, every hook is a no-op."""

    mode = ""

    def __init__(self, ctrl: "MemoryController", config: SystemConfig, policy: DesignPolicy) -> None:
        self.ctrl = ctrl
        self.tree: Optional[IntegrityTreeEngine] = None
        self.tree_cache: Optional[TreeNodeCache] = None
        self.tree_queue: Optional[WriteQueue] = None

    def should_force_pair(self, line: int, new_counter: int) -> bool:
        """Osiris bound: must this unpaired write escalate to a pair?"""
        return False

    def note_counter_persist(
        self, group_base: int, counters: Tuple[int, ...], effective_ns: float
    ) -> float:
        """Hook on every counter-line persist; returns the settle time."""
        return effective_ns

    def verify_counter_fetch(self, data_address: int, request_ns: float) -> float:
        """Hook on every counter-line fetch; returns the trust time."""
        return request_ns

    def on_ccwb(self, request_ns: float) -> None:
        """Hook after a ccwb counter flush (lazy mode drains here)."""

    def get_state(self) -> Optional[dict]:
        return None

    def set_state(self, state: Optional[dict]) -> None:
        pass


class TreePersistence(NoIntegrity):
    """Shared Bonsai-tree machinery of the eager and lazy modes."""

    def __init__(self, ctrl: "MemoryController", config: SystemConfig, policy: DesignPolicy) -> None:
        super().__init__(ctrl, config, policy)
        self.tree = IntegrityTreeEngine(
            config.encryption, ctrl.address_map, arity=config.integrity.arity
        )
        self.tree_cache = TreeNodeCache(config.integrity.node_cache_entries)
        self.tree_queue = WriteQueue(
            "tree-wq",
            config.integrity.tree_write_queue_entries,
            coalesce=config.controller.coalesce_writes,
            entry_ids=ctrl.entry_ids,
        )
        self._max_counter_lag = config.integrity.max_counter_lag
        self._magic = policy.magic_counter_persistence

    def should_force_pair(self, line: int, new_counter: int) -> bool:
        if self._magic:
            return False
        return new_counter - self.ctrl.counter_store.read(line) > self._max_counter_lag

    def persist_tree_node(self, node: TreeNode, request_ns: float) -> float:
        """Send one tree node's current digest to NVM.

        Pure traffic: tree writes carry no journal records because a
        crash never needs them back — recovery rebuilds interior nodes
        from the persisted counters and checks the secure register.
        Repeated writes of a hot upper node coalesce in the tree queue.
        Returns when the node's digest is durable in the array (the
        point an eager/strict-ordering caller must wait for).
        """
        ctrl = self.ctrl
        assert self.tree is not None and self.tree_queue is not None
        address = self.tree.node_address(node)
        coalesced = self.tree_queue.try_coalesce(address, request_ns, None, 0)
        if coalesced is not None:
            ctrl.events.emit_tree_node(address, True, coalesced.drain_ns)
            return max(request_ns, coalesced.drain_ns)
        entry = self.tree_queue.accept(address, request_ns, None, is_counter=False)
        self.tree_queue.mark_ready(entry, entry.accept_ns)
        issue, drain = ctrl.drain_write(
            self.tree_queue, "tree", address, entry.accept_ns, CACHE_LINE_SIZE
        )
        self.tree_queue.set_drain_time(entry, drain, slot_release_ns=issue)
        ctrl.events.emit_tree_node(address, False, drain)
        return drain

    def verify_counter_fetch(self, data_address: int, request_ns: float) -> float:
        """Authenticate a counter-line fetch against the tree.

        Walks the leaf-to-root path bottom-up; the walk stops at the
        first node already in the on-chip node cache (a cached node is
        trusted — it was verified on its way in).  Uncached nodes cost
        a real 64 B NVM read each.  Returns when the fetched counters
        are trusted.
        """
        ctrl = self.ctrl
        assert self.tree is not None and self.tree_cache is not None
        group_base = ctrl.address_map.data_group_base(data_address)
        if not self.tree.verify_leaf(
            group_base, ctrl.counter_store.read_counter_line(group_base)
        ):
            raise SimulationError(
                "integrity-tree mismatch for counter line of group 0x%x" % group_base
            )
        ctrl.events.emit_tree_verify(group_base, request_ns)
        arrival = request_ns
        index = self.tree.leaf_index(group_base)
        for level in range(self.tree.levels):
            node = (level, index)
            if self.tree_cache.touch(node):
                break
            address = self.tree.node_address(node)
            bank = ctrl.address_map.bank_of(address)
            row = ctrl.address_map.row_of(address)
            access = ctrl.banks.schedule_read(bank, request_ns, row=row)
            node_arrival = ctrl.bus.schedule_transfer(access.complete_ns, CACHE_LINE_SIZE)
            arrival = max(arrival, node_arrival)
            ctrl.events.emit_tree_fill(address, CACHE_LINE_SIZE)
            evicted = self.tree_cache.insert(node, dirty=False)
            if evicted is not None:
                self.persist_tree_node(evicted, request_ns)
            index //= self.tree.arity
        return arrival

    def get_state(self) -> Optional[dict]:
        assert self.tree is not None and self.tree_cache is not None
        assert self.tree_queue is not None
        return {
            "tree": self.tree.get_state(),
            "tree_cache": self.tree_cache.get_state(),
            "tree_queue": self.tree_queue.get_state(),
        }

    def set_state(self, state: Optional[dict]) -> None:
        if state is None:
            return
        assert self.tree is not None and self.tree_cache is not None
        assert self.tree_queue is not None
        self.tree.set_state(state["tree"])
        self.tree_cache.set_state(state["tree_cache"])
        self.tree_queue.set_state(state["tree_queue"])


class EagerTreePersistence(TreePersistence):
    """Freij-style strict ordering: the root path drains per persist.

    The eager discipline takes no ADR cover for metadata — that is
    Freij's premise — so a write is not architecturally persistent
    until its whole root path has *drained* to the array, and the
    returned settle time extends the caller's acceptance ticket.
    """

    mode = "eager"

    def note_counter_persist(
        self, group_base: int, counters: Tuple[int, ...], effective_ns: float
    ) -> float:
        assert self.tree is not None and self.tree_cache is not None
        path = self.tree.update_group(group_base, counters)
        self.ctrl.events.emit_root_update(group_base, effective_ns)
        settled_ns = effective_ns
        for node in path:
            evicted = self.tree_cache.insert(node, dirty=False)
            if evicted is not None:
                self.persist_tree_node(evicted, effective_ns)
            settled_ns = max(settled_ns, self.persist_tree_node(node, effective_ns))
        return settled_ns


class LazyTreePersistence(TreePersistence):
    """Phoenix-style relaxation: dirty nodes coalesce on chip.

    Interior nodes reach NVM at node-cache evictions and at
    ``counter_cache_writeback()`` — the paper's persistence point — so
    the NVM tree catches up exactly when the counters do.  The write
    itself has no ordering obligation (interior nodes are
    reconstructible from persisted leaves) and settles unchanged.
    """

    mode = "lazy"

    def note_counter_persist(
        self, group_base: int, counters: Tuple[int, ...], effective_ns: float
    ) -> float:
        assert self.tree is not None and self.tree_cache is not None
        path = self.tree.update_group(group_base, counters)
        self.ctrl.events.emit_root_update(group_base, effective_ns)
        for node in path:
            evicted = self.tree_cache.insert(node, dirty=True)
            if evicted is not None:
                self.persist_tree_node(evicted, effective_ns)
        return effective_ns

    def on_ccwb(self, request_ns: float) -> None:
        # Piggyback on the paper's persistence point: flush every
        # coalesced dirty tree node here, so the NVM tree catches up
        # exactly when the counters do.
        assert self.tree_cache is not None
        dirty = self.tree_cache.flush_dirty()
        for node in dirty:
            self.persist_tree_node(node, request_ns)
        self.ctrl.events.emit_ccwb_tree_flush(request_ns, len(dirty))


def build_integrity(
    ctrl: "MemoryController", config: SystemConfig, policy: DesignPolicy
) -> NoIntegrity:
    """Instantiate the integrity strategy for a design's axis value.

    The persistence mode comes from the design when pinned
    (``policy.integrity_mode``) and falls back to
    ``IntegrityConfig.mode`` otherwise, matching the pre-decomposition
    controller's resolution order.
    """
    if not policy.integrity_tree:
        return NoIntegrity(ctrl, config, policy)
    mode = policy.integrity_mode or config.integrity.mode
    cls = EagerTreePersistence if mode == "eager" else LazyTreePersistence
    return cls(ctrl, config, policy)
