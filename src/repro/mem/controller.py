"""The memory controller: a slim coordinator over composed policy layers.

All design points of the paper run through this one controller,
parameterized by a :class:`repro.core.designs.DesignPolicy` whose three
axes select three strategy objects:

* a **layout path** (:mod:`repro.mem.layout`) owning read/write byte
  movement — plain, co-located 72 B, or split counter region,
* an **atomicity policy** (:mod:`repro.mem.atomicity`) owning the data
  and counter write queues, ready-bit pairing and lag-forced pair
  escalation — unpaired, FCA, or SCA,
* an **integrity persistence** (:mod:`repro.mem.integrity_policy`)
  owning tree-node drains and counter-fetch authentication — none,
  eager, or lazy.

The controller itself keeps only what the layers share: the NVM device
and its bank/bus timing models, the counter store and encryption
engine, the read queue, the drain scheduler, the persist journal, and
the event bus (:mod:`repro.mem.events`) that every observable action is
emitted on.  Statistics are derived from the event stream by a bus
subscriber rather than incremented inline; see ``docs/architecture.md``
for the layer diagram and the bus contract.

Timing contract: every public operation takes the requester's current
time and returns absolute completion/acceptance times.  Functionally,
writes are applied to the device immediately (modeling write-queue
forwarding); the journal records *when* each write became durable so
crash images can be reconstructed exactly.
"""

from __future__ import annotations

import dataclasses
import heapq
from typing import List, Optional, Tuple

from ..config import CACHE_LINE_SIZE, SystemConfig
from ..core.designs import DesignPolicy
from ..crypto.counter_cache import CounterCacheStats
from ..crypto.counters import CounterStore
from ..crypto.engine import EncryptionEngine
from ..errors import AddressError
from ..integrity.cache import TreeNodeCache
from ..integrity.tree import IntegrityTreeEngine
from ..nvm.address import AddressMap
from ..nvm.device import NVMDevice, _ZERO_PERSISTED
from ..nvm.timing import BankTimingModel, BusModel
from ..persist.journal import PersistJournal
from .atomicity import UnpairedAtomicity, WriteTicket, build_atomicity
from .events import (
    _FLUSH_EVERY,
    _READ,
    _WRITE_REQUEST_RECORD,
    BatchingEventBus,
    ControllerStats,
    EventBus,
    JsonlTraceSubscriber,
    StatsSubscriber,
)
from .integrity_policy import NoIntegrity, build_integrity
from .layout import COLOCATED_PAYLOAD, PlainLayout, ReadResult, build_layout
from .writequeue import EntryIdAllocator, WriteQueue

__all__ = [
    "COLOCATED_PAYLOAD",
    "ControllerStats",
    "MemoryController",
    "ReadResult",
    "WriteTicket",
]

_LINE_MASK = ~(CACHE_LINE_SIZE - 1)
_LINE_SHIFT = 6


class MemoryController:
    """One shared memory controller in front of the NVM DIMM."""

    def __init__(self, config: SystemConfig, policy: DesignPolicy) -> None:
        self.config = config
        self.policy = policy
        nvm_timing = config.nvm
        if nvm_timing.bus_width_bits != policy.bus_width_bits:
            nvm_timing = dataclasses.replace(
                nvm_timing, bus_width_bits=policy.bus_width_bits
            )
        self.timing = nvm_timing
        self.address_map = AddressMap(
            memory_size_bytes=config.memory_size_bytes, num_banks=nvm_timing.num_banks
        )
        self.device = NVMDevice(self.address_map)
        self.banks = BankTimingModel(nvm_timing)
        self.bus = BusModel(nvm_timing)
        # Hoisted constants for the fused read/drain hot paths below
        # (num_banks is validated power-of-two; see AddressMap).
        self._num_banks = nvm_timing.num_banks
        self._bank_mask = nvm_timing.num_banks - 1
        self._memory_size = config.memory_size_bytes
        self.counter_store = CounterStore(
            counter_region_base=self.address_map.counter_region_base,
            memory_size_bytes=config.memory_size_bytes,
        )
        self.engine: Optional[EncryptionEngine] = None
        if policy.encrypts:
            self.engine = EncryptionEngine(
                config=config.encryption,
                cache_config=config.counter_cache,
                counter_store=self.counter_store,
                functional=config.functional,
            )
        # One id space shared by every queue keeps journal entry ids
        # unique; owning the allocator (instead of a module global)
        # makes entry ids reproducible across checkpoint/restore.
        self.entry_ids = EntryIdAllocator()
        # The event bus: stats derive from the stream; an optional JSONL
        # trace subscriber gives campaigns an observability hook.  The
        # batching bus folds stats over compact record vectors when no
        # generic subscriber is attached (``docs/performance.md``).
        self.events = BatchingEventBus()
        self._stats = StatsSubscriber()
        self.events.subscribe(self._stats)
        self._trace: Optional[JsonlTraceSubscriber] = None
        if config.controller.event_trace_path:
            self._trace = JsonlTraceSubscriber(
                config.controller.event_trace_path,
                flush_every=config.controller.event_trace_flush_every,
            )
            self.events.subscribe(self._trace)
        self._fifo_drain = config.controller.drain_policy == "fifo"
        self._last_drain = {"data": 0.0, "counter": 0.0, "tree": 0.0}
        self._counter_hold_ns = config.controller.counter_drain_hold_ns
        #: Read-queue occupancy (Table 2: 32 entries).  A slot is held
        #: from request to data arrival; a full queue delays the start
        #: of new reads (blocking cores rarely fill it, but counter
        #: fills and multicore bursts can).
        self._read_slots: List[float] = []
        self._read_queue_capacity = config.controller.read_queue_entries
        self.read_queue_peak = 0
        self.total_read_queue_wait_ns = 0.0
        self.journal = PersistJournal()
        if not config.controller.crash_bookkeeping:
            self.journal.enabled = False
            self.device.crash_bookkeeping = False
        self._functional = config.functional
        # The three composed strategy layers (see the module docstring).
        self.atomicity: UnpairedAtomicity = build_atomicity(self, config, policy)
        self.integrity: NoIntegrity = build_integrity(self, config, policy)
        self.layout: PlainLayout = build_layout(self, config, policy)

    # ------------------------------------------------------------------
    # Layer delegation (the pre-decomposition attribute surface)
    # ------------------------------------------------------------------

    @property
    def stats(self) -> ControllerStats:
        self.events.flush()
        return self._stats.stats

    @property
    def data_queue(self) -> WriteQueue:
        return self.atomicity.data_queue

    @property
    def counter_queue(self) -> WriteQueue:
        return self.atomicity.counter_queue

    @property
    def tree(self) -> Optional[IntegrityTreeEngine]:
        return self.integrity.tree

    @property
    def tree_cache(self) -> Optional[TreeNodeCache]:
        return self.integrity.tree_cache

    @property
    def tree_queue(self) -> Optional[WriteQueue]:
        return self.integrity.tree_queue

    # ------------------------------------------------------------------
    # Read path (Figure 6)
    # ------------------------------------------------------------------

    def _acquire_read_slot(self, request_ns: float) -> float:
        """Wait for a read-queue entry; returns the adjusted start time."""
        while self._read_slots and self._read_slots[0] <= request_ns:
            heapq.heappop(self._read_slots)
        if len(self._read_slots) < self._read_queue_capacity:
            return request_ns
        start = heapq.heappop(self._read_slots)
        self.total_read_queue_wait_ns += start - request_ns
        return start

    def _release_read_slot(self, completion_ns: float) -> None:
        heapq.heappush(self._read_slots, completion_ns)
        if len(self._read_slots) > self.read_queue_peak:
            self.read_queue_peak = len(self._read_slots)

    def read_line(self, address: int, request_ns: float) -> ReadResult:
        """Fetch and (if encrypted) decrypt one data line.

        Hot path: the slot scan, bank/bus scheduling, device fetch and
        stats emit are inlined — bit-identical to the composed calls
        (``docs/performance.md``) — because every simulated miss and
        counter fill funnels through here.
        """
        # Read-queue slot (== _acquire_read_slot).
        slots = self._read_slots
        while slots and slots[0] <= request_ns:
            heapq.heappop(slots)
        if len(slots) >= self._read_queue_capacity:
            start = heapq.heappop(slots)
            self.total_read_queue_wait_ns += start - request_ns
            request_ns = start
        line = address & _LINE_MASK
        payload_bytes = self.layout.read_payload_bytes
        line_index = line >> _LINE_SHIFT
        bank = line_index & self._bank_mask
        row = (line_index // self._num_banks) // 64
        # Bank array read (== BankTimingModel.schedule_read).
        banks = self.banks
        read_free = banks._read_free
        free = read_free[bank]
        start = request_ns if request_ns >= free else free
        banks.total_read_wait_ns += start - request_ns
        open_row = banks._open_row
        if open_row[bank] == row:
            complete = start + banks._row_hit_ns
            banks.row_hits += 1
        else:
            complete = start + banks._read_access_ns
            open_row[bank] = row
        read_free[bank] = complete
        write_free = banks._write_free
        if write_free[bank] < complete:
            write_free[bank] = complete
        banks.reads += 1
        # Bus burst (== BusModel.schedule_transfer).
        bus = self.bus
        bus_free = bus._free_ns
        bus_start = complete if complete >= bus_free else bus_free
        duration = bus._burst_cache.get(payload_bytes)
        if duration is None:
            duration = bus.timing.burst_ns(payload_bytes)
            bus._burst_cache[payload_bytes] = duration
        data_arrival = bus_start + duration
        bus._free_ns = data_arrival
        bus.transfers += 1
        bus.bytes_moved += payload_bytes
        bus.busy_ns += duration
        # Slot release (== _release_read_slot).
        heapq.heappush(slots, data_arrival)
        if len(slots) > self.read_queue_peak:
            self.read_queue_peak = len(slots)
        # Device fetch (== NVMDevice.read_line).
        device = self.device
        if line < 0 or line >= self._memory_size:
            raise AddressError("address 0x%x outside the device" % line)
        device.line_reads += 1
        stored = device._lines.get(line, _ZERO_PERSISTED)
        result = self.layout.complete_read(line, request_ns, data_arrival, stored.payload)
        # Stats emit (== BatchingEventBus.emit_read).
        events = self.events
        if events._generic:
            EventBus.emit_read(
                events, line, request_ns, result.complete_ns, payload_bytes,
                result.counter_cache_hit,
            )
        else:
            buffer = events._buffer
            buffer.append((_READ, request_ns, result.complete_ns, payload_bytes))
            if len(buffer) >= _FLUSH_EVERY:
                events.flush()
        return result

    # ------------------------------------------------------------------
    # Write path (Section 5.2.2)
    # ------------------------------------------------------------------

    def write_line(
        self,
        address: int,
        payload: Optional[bytes],
        request_ns: float,
        counter_atomic: bool = False,
    ) -> WriteTicket:
        """Accept one data-line writeback (clwb or cache eviction)."""
        line = address & _LINE_MASK
        # Stats emit (== BatchingEventBus.emit_write_request).
        events = self.events
        if events._generic:
            EventBus.emit_write_request(events, line, request_ns, counter_atomic)
        else:
            buffer = events._buffer
            buffer.append(_WRITE_REQUEST_RECORD)
            if len(buffer) >= _FLUSH_EVERY:
                events.flush()
        return self.layout.write_line(line, payload, request_ns, counter_atomic)

    def drain_write(
        self,
        queue: WriteQueue,
        role: str,
        address: int,
        ready_ns: float,
        payload_bytes: int,
    ) -> Tuple[float, float]:
        """Schedule the array write + bus transfer for one drain.

        ``role`` names the queue's drain timeline (``"data"``,
        ``"counter"``, ``"tree"``).  Returns ``(issue_ns,
        complete_ns)``: the entry's queue slot frees at issue (the
        write has left for its bank), while the cell write is durable
        at complete.  Counter-line entries may be held for a grace
        window first (``counter_drain_hold_ns``).
        """
        start = ready_ns
        if role == "counter":
            start += self._counter_hold_ns
        if self._fifo_drain:
            # Strict FIFO drain: head-of-line blocking (ablation).
            last = self._last_drain[role]
            if start < last:
                start = last
        bank = (address >> _LINE_SHIFT) & self._bank_mask
        # Bus burst (== BusModel.schedule_transfer).
        bus = self.bus
        bus_free = bus._free_ns
        bus_start = start if start >= bus_free else bus_free
        duration = bus._burst_cache.get(payload_bytes)
        if duration is None:
            duration = bus.timing.burst_ns(payload_bytes)
            bus._burst_cache[payload_bytes] = duration
        bus_done = bus_start + duration
        bus._free_ns = bus_done
        bus.transfers += 1
        bus.bytes_moved += payload_bytes
        bus.busy_ns += duration
        # Bank array write (== BankTimingModel.schedule_write).
        banks = self.banks
        write_free = banks._write_free
        issue = bus_done
        free = write_free[bank]
        if free > issue:
            issue = free
        free = banks._read_free[bank]
        if free > issue:
            issue = free
        banks.total_write_wait_ns += issue - bus_done
        complete = issue + banks._write_access_ns
        write_free[bank] = complete + banks._t_wtr_ns
        banks._open_row[bank] = None
        banks.writes += 1
        if self._fifo_drain:
            self._last_drain[role] = complete
        events = self.events
        if events._generic:
            EventBus.emit_drain(events, role, address, issue, complete)
        return issue, complete

    # ------------------------------------------------------------------
    # counter_cache_writeback() (Section 4.3 / 5.2.2)
    # ------------------------------------------------------------------

    def counter_cache_writeback(self, address: int, request_ns: float) -> Optional[WriteTicket]:
        """Flush the dirty counter line covering ``address``.

        Returns the acceptance ticket, or None when the design has no
        ccwb support or the line is clean (a no-op, per the paper).
        The flushed entry's ready bit is always set — it is not paired.
        """
        self.events.emit_ccwb(address, request_ns)
        if self.engine is None or not self.policy.ccwb_enabled:
            return None
        flushed = self.engine.counter_cache.writeback_line(address)
        if flushed is None:
            return None
        self.events.emit_ccwb_flush(address, request_ns)
        ticket = self.atomicity.writeback_counter_line(flushed, request_ns)
        self.integrity.on_ccwb(request_ns)
        return ticket

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def peek_line(self, line_address: int) -> bytes:
        """Functional peek at one line's current plaintext (no timing).

        Used by debug/checker paths (``CacheHierarchy.read_current``):
        reads the stored line image and decrypts it with its ground-truth
        counter when the design encrypts.
        """
        stored = self.device.read_line(line_address)
        if self.engine is not None and self._functional:
            return self.engine.cipher.decrypt(
                line_address, stored.encrypted_with, stored.payload
            )
        return stored.payload

    @property
    def counter_cache_stats(self) -> Optional["CounterCacheStats"]:
        if self.engine is None:
            return None
        return self.engine.counter_cache.stats

    def write_traffic_bytes(self) -> int:
        return self.stats.bytes_written

    def read_traffic_bytes(self) -> int:
        return self.stats.bytes_read

    # ------------------------------------------------------------------
    # Checkpoint state
    # ------------------------------------------------------------------

    def get_state(self) -> dict:
        """Full controller state for a simulation checkpoint.

        Covers every mutable structure the timing and functional paths
        touch, layer by layer; config-derived objects (address map,
        cipher, policy, the strategy objects themselves) are rebuilt
        from config on restore.  The event-trace subscriber is not
        state — a restored run re-appends to its trace.
        """
        return {
            "device": self.device.get_state(),
            "banks": self.banks.get_state(),
            "bus": self.bus.get_state(),
            "counter_store": self.counter_store.get_state(),
            "engine": self.engine.get_state() if self.engine is not None else None,
            "next_entry_id": self.entry_ids.next_id,
            "atomicity": self.atomicity.get_state(),
            "integrity": self.integrity.get_state(),
            "last_drain": dict(self._last_drain),
            "read_slots": list(self._read_slots),
            "read_queue_peak": self.read_queue_peak,
            "total_read_queue_wait_ns": self.total_read_queue_wait_ns,
            "journal": self.journal.get_state(),
            "stats": dataclasses.asdict(self.stats),
        }

    def set_state(self, state: dict) -> None:
        self.events.flush()
        self.device.set_state(state["device"])
        self.banks.set_state(state["banks"])
        self.bus.set_state(state["bus"])
        self.counter_store.set_state(state["counter_store"])
        if self.engine is not None and state["engine"] is not None:
            self.engine.set_state(state["engine"])
        self.entry_ids.next_id = state["next_entry_id"]
        self.atomicity.set_state(state["atomicity"])
        self.integrity.set_state(state["integrity"])
        self._last_drain = dict(state["last_drain"])
        self._read_slots = list(state["read_slots"])
        self.read_queue_peak = state["read_queue_peak"]
        self.total_read_queue_wait_ns = state["total_read_queue_wait_ns"]
        self.journal.set_state(state["journal"])
        self._stats.stats = ControllerStats(**state["stats"])
