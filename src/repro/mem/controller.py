"""The memory controller: a slim coordinator over composed policy layers.

All design points of the paper run through this one controller,
parameterized by a :class:`repro.core.designs.DesignPolicy` whose three
axes select three strategy objects:

* a **layout path** (:mod:`repro.mem.layout`) owning read/write byte
  movement — plain, co-located 72 B, or split counter region,
* an **atomicity policy** (:mod:`repro.mem.atomicity`) owning the data
  and counter write queues, ready-bit pairing and lag-forced pair
  escalation — unpaired, FCA, or SCA,
* an **integrity persistence** (:mod:`repro.mem.integrity_policy`)
  owning tree-node drains and counter-fetch authentication — none,
  eager, or lazy.

The controller itself keeps only what the layers share: the NVM device
and its bank/bus timing models, the counter store and encryption
engine, the read queue, the drain scheduler, the persist journal, and
the event bus (:mod:`repro.mem.events`) that every observable action is
emitted on.  Statistics are derived from the event stream by a bus
subscriber rather than incremented inline; see ``docs/architecture.md``
for the layer diagram and the bus contract.

Timing contract: every public operation takes the requester's current
time and returns absolute completion/acceptance times.  Functionally,
writes are applied to the device immediately (modeling write-queue
forwarding); the journal records *when* each write became durable so
crash images can be reconstructed exactly.
"""

from __future__ import annotations

import dataclasses
import heapq
from typing import List, Optional, Tuple

from ..config import SystemConfig
from ..core.designs import DesignPolicy
from ..crypto.counter_cache import CounterCacheStats
from ..crypto.counters import CounterStore
from ..crypto.engine import EncryptionEngine
from ..integrity.cache import TreeNodeCache
from ..integrity.tree import IntegrityTreeEngine
from ..nvm.address import AddressMap
from ..nvm.device import NVMDevice
from ..nvm.timing import BankTimingModel, BusModel
from ..persist.journal import PersistJournal
from .atomicity import UnpairedAtomicity, WriteTicket, build_atomicity
from .events import (
    CcwbEvent,
    CcwbFlushEvent,
    ControllerStats,
    DrainEvent,
    EventBus,
    JsonlTraceSubscriber,
    ReadEvent,
    StatsSubscriber,
    WriteRequestEvent,
)
from .integrity_policy import NoIntegrity, build_integrity
from .layout import COLOCATED_PAYLOAD, PlainLayout, ReadResult, build_layout
from .writequeue import EntryIdAllocator, WriteQueue

__all__ = [
    "COLOCATED_PAYLOAD",
    "ControllerStats",
    "MemoryController",
    "ReadResult",
    "WriteTicket",
]


class MemoryController:
    """One shared memory controller in front of the NVM DIMM."""

    def __init__(self, config: SystemConfig, policy: DesignPolicy) -> None:
        self.config = config
        self.policy = policy
        nvm_timing = config.nvm
        if nvm_timing.bus_width_bits != policy.bus_width_bits:
            nvm_timing = dataclasses.replace(
                nvm_timing, bus_width_bits=policy.bus_width_bits
            )
        self.timing = nvm_timing
        self.address_map = AddressMap(
            memory_size_bytes=config.memory_size_bytes, num_banks=nvm_timing.num_banks
        )
        self.device = NVMDevice(self.address_map)
        self.banks = BankTimingModel(nvm_timing)
        self.bus = BusModel(nvm_timing)
        self.counter_store = CounterStore(
            counter_region_base=self.address_map.counter_region_base,
            memory_size_bytes=config.memory_size_bytes,
        )
        self.engine: Optional[EncryptionEngine] = None
        if policy.encrypts:
            self.engine = EncryptionEngine(
                config=config.encryption,
                cache_config=config.counter_cache,
                counter_store=self.counter_store,
                functional=config.functional,
            )
        # One id space shared by every queue keeps journal entry ids
        # unique; owning the allocator (instead of a module global)
        # makes entry ids reproducible across checkpoint/restore.
        self.entry_ids = EntryIdAllocator()
        # The event bus: stats derive from the stream; an optional JSONL
        # trace subscriber gives campaigns an observability hook.
        self.events = EventBus()
        self._stats = StatsSubscriber()
        self.events.subscribe(self._stats)
        self._trace: Optional[JsonlTraceSubscriber] = None
        if config.controller.event_trace_path:
            self._trace = JsonlTraceSubscriber(config.controller.event_trace_path)
            self.events.subscribe(self._trace)
        self._fifo_drain = config.controller.drain_policy == "fifo"
        self._last_drain = {"data": 0.0, "counter": 0.0, "tree": 0.0}
        self._counter_hold_ns = config.controller.counter_drain_hold_ns
        #: Read-queue occupancy (Table 2: 32 entries).  A slot is held
        #: from request to data arrival; a full queue delays the start
        #: of new reads (blocking cores rarely fill it, but counter
        #: fills and multicore bursts can).
        self._read_slots: List[float] = []
        self._read_queue_capacity = config.controller.read_queue_entries
        self.read_queue_peak = 0
        self.total_read_queue_wait_ns = 0.0
        self.journal = PersistJournal()
        self._functional = config.functional
        # The three composed strategy layers (see the module docstring).
        self.atomicity: UnpairedAtomicity = build_atomicity(self, config, policy)
        self.integrity: NoIntegrity = build_integrity(self, config, policy)
        self.layout: PlainLayout = build_layout(self, config, policy)

    # ------------------------------------------------------------------
    # Layer delegation (the pre-decomposition attribute surface)
    # ------------------------------------------------------------------

    @property
    def stats(self) -> ControllerStats:
        return self._stats.stats

    @property
    def data_queue(self) -> WriteQueue:
        return self.atomicity.data_queue

    @property
    def counter_queue(self) -> WriteQueue:
        return self.atomicity.counter_queue

    @property
    def tree(self) -> Optional[IntegrityTreeEngine]:
        return self.integrity.tree

    @property
    def tree_cache(self) -> Optional[TreeNodeCache]:
        return self.integrity.tree_cache

    @property
    def tree_queue(self) -> Optional[WriteQueue]:
        return self.integrity.tree_queue

    # ------------------------------------------------------------------
    # Read path (Figure 6)
    # ------------------------------------------------------------------

    def _acquire_read_slot(self, request_ns: float) -> float:
        """Wait for a read-queue entry; returns the adjusted start time."""
        while self._read_slots and self._read_slots[0] <= request_ns:
            heapq.heappop(self._read_slots)
        if len(self._read_slots) < self._read_queue_capacity:
            return request_ns
        start = heapq.heappop(self._read_slots)
        self.total_read_queue_wait_ns += start - request_ns
        return start

    def _release_read_slot(self, completion_ns: float) -> None:
        heapq.heappush(self._read_slots, completion_ns)
        if len(self._read_slots) > self.read_queue_peak:
            self.read_queue_peak = len(self._read_slots)

    def read_line(self, address: int, request_ns: float) -> ReadResult:
        """Fetch and (if encrypted) decrypt one data line."""
        request_ns = self._acquire_read_slot(request_ns)
        line = self.address_map.line_base(address)
        payload_bytes = self.layout.read_payload_bytes
        bank = self.address_map.bank_of(line)
        row = self.address_map.row_of(line)
        access = self.banks.schedule_read(bank, request_ns, row=row)
        data_arrival = self.bus.schedule_transfer(access.complete_ns, payload_bytes)
        self._release_read_slot(data_arrival)
        stored = self.device.read_line(line)
        result = self.layout.complete_read(line, request_ns, data_arrival, stored.payload)
        self.events.emit(
            ReadEvent(
                address=line,
                request_ns=request_ns,
                complete_ns=result.complete_ns,
                payload_bytes=payload_bytes,
                counter_cache_hit=result.counter_cache_hit,
            )
        )
        return result

    # ------------------------------------------------------------------
    # Write path (Section 5.2.2)
    # ------------------------------------------------------------------

    def write_line(
        self,
        address: int,
        payload: Optional[bytes],
        request_ns: float,
        counter_atomic: bool = False,
    ) -> WriteTicket:
        """Accept one data-line writeback (clwb or cache eviction)."""
        line = self.address_map.line_base(address)
        self.events.emit(
            WriteRequestEvent(
                address=line, request_ns=request_ns, counter_atomic=counter_atomic
            )
        )
        return self.layout.write_line(line, payload, request_ns, counter_atomic)

    def drain_write(
        self,
        queue: WriteQueue,
        role: str,
        address: int,
        ready_ns: float,
        payload_bytes: int,
    ) -> Tuple[float, float]:
        """Schedule the array write + bus transfer for one drain.

        ``role`` names the queue's drain timeline (``"data"``,
        ``"counter"``, ``"tree"``).  Returns ``(issue_ns,
        complete_ns)``: the entry's queue slot frees at issue (the
        write has left for its bank), while the cell write is durable
        at complete.  Counter-line entries may be held for a grace
        window first (``counter_drain_hold_ns``).
        """
        start = ready_ns
        if role == "counter":
            start += self._counter_hold_ns
        if self._fifo_drain:
            # Strict FIFO drain: head-of-line blocking (ablation).
            start = max(start, self._last_drain[role])
        bank = self.address_map.bank_of(address)
        row = self.address_map.row_of(address)
        bus_done = self.bus.schedule_transfer(start, payload_bytes)
        access = self.banks.schedule_write(bank, bus_done, row=row)
        if self._fifo_drain:
            self._last_drain[role] = access.complete_ns
        self.events.emit(
            DrainEvent(
                role=role,
                address=address,
                issue_ns=access.start_ns,
                complete_ns=access.complete_ns,
            )
        )
        return access.start_ns, access.complete_ns

    # ------------------------------------------------------------------
    # counter_cache_writeback() (Section 4.3 / 5.2.2)
    # ------------------------------------------------------------------

    def counter_cache_writeback(self, address: int, request_ns: float) -> Optional[WriteTicket]:
        """Flush the dirty counter line covering ``address``.

        Returns the acceptance ticket, or None when the design has no
        ccwb support or the line is clean (a no-op, per the paper).
        The flushed entry's ready bit is always set — it is not paired.
        """
        self.events.emit(CcwbEvent(address=address, request_ns=request_ns))
        if self.engine is None or not self.policy.ccwb_enabled:
            return None
        flushed = self.engine.counter_cache.writeback_line(address)
        if flushed is None:
            return None
        self.events.emit(CcwbFlushEvent(address=address, request_ns=request_ns))
        ticket = self.atomicity.writeback_counter_line(flushed, request_ns)
        self.integrity.on_ccwb(request_ns)
        return ticket

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def counter_cache_stats(self) -> Optional["CounterCacheStats"]:
        if self.engine is None:
            return None
        return self.engine.counter_cache.stats

    def write_traffic_bytes(self) -> int:
        return self.stats.bytes_written

    def read_traffic_bytes(self) -> int:
        return self.stats.bytes_read

    # ------------------------------------------------------------------
    # Checkpoint state
    # ------------------------------------------------------------------

    def get_state(self) -> dict:
        """Full controller state for a simulation checkpoint.

        Covers every mutable structure the timing and functional paths
        touch, layer by layer; config-derived objects (address map,
        cipher, policy, the strategy objects themselves) are rebuilt
        from config on restore.  The event-trace subscriber is not
        state — a restored run re-appends to its trace.
        """
        return {
            "device": self.device.get_state(),
            "banks": self.banks.get_state(),
            "bus": self.bus.get_state(),
            "counter_store": self.counter_store.get_state(),
            "engine": self.engine.get_state() if self.engine is not None else None,
            "next_entry_id": self.entry_ids.next_id,
            "atomicity": self.atomicity.get_state(),
            "integrity": self.integrity.get_state(),
            "last_drain": dict(self._last_drain),
            "read_slots": list(self._read_slots),
            "read_queue_peak": self.read_queue_peak,
            "total_read_queue_wait_ns": self.total_read_queue_wait_ns,
            "journal": self.journal.get_state(),
            "stats": dataclasses.asdict(self.stats),
        }

    def set_state(self, state: dict) -> None:
        self.device.set_state(state["device"])
        self.banks.set_state(state["banks"])
        self.bus.set_state(state["bus"])
        self.counter_store.set_state(state["counter_store"])
        if self.engine is not None and state["engine"] is not None:
            self.engine.set_state(state["engine"])
        self.entry_ids.next_id = state["next_entry_id"]
        self.atomicity.set_state(state["atomicity"])
        self.integrity.set_state(state["integrity"])
        self._last_drain = dict(state["last_drain"])
        self._read_slots = list(state["read_slots"])
        self.read_queue_peak = state["read_queue_peak"]
        self.total_read_queue_wait_ns = state["total_read_queue_wait_ns"]
        self.journal.set_state(state["journal"])
        self._stats.stats = ControllerStats(**state["stats"])
