"""The memory controller: NVM coordinator + encryption + write queues.

All six design points of the paper run through this one controller,
parameterized by a :class:`repro.core.designs.DesignPolicy`.  The
controller owns:

* the encryption engine and counter cache (when the design has them),
* the read path with per-design decrypt-overlap rules (Figure 6),
* the data and counter write queues with the ready-bit pairing protocol
  (Section 5.2.2),
* bank and bus resource timelines, and
* the persist journal that lets the crash injector reconstruct the NVM
  image at any instant.

Timing contract: every public operation takes the requester's current
time and returns absolute completion/acceptance times.  Functionally,
writes are applied to the device immediately (modeling write-queue
forwarding); the journal records *when* each write became durable so
crash images can be reconstructed exactly.

A note on counter-atomic pairs and sibling counters: a paired write
persists the whole covering counter line.  The seven sibling slots are
taken from the *architectural* counter values (last persisted), not the
counter cache — re-persisting them is idempotent, whereas persisting a
dirty cached sibling could outrun its data line and strand it
undecryptable.  Dirty cached counters persist via
``counter_cache_writeback()`` or eviction, exactly as the paper's
protocol requires.
"""

from __future__ import annotations

import dataclasses
import heapq
from dataclasses import dataclass
from typing import Optional, Tuple

from ..config import CACHE_LINE_SIZE, SystemConfig
from ..core.designs import DesignPolicy
from ..crypto.counters import CounterStore
from ..crypto.engine import EncryptionEngine
from ..errors import SimulationError
from ..integrity.cache import TreeNodeCache
from ..integrity.tree import IntegrityTreeEngine, TreeNode
from ..nvm.address import AddressMap
from ..nvm.device import NVMDevice
from ..nvm.timing import BankTimingModel, BusModel
from ..persist.journal import PersistJournal
from .writequeue import EntryIdAllocator, WriteQueue

#: Payload size of a co-located access (64 B data + 8 B counter).
COLOCATED_PAYLOAD = CACHE_LINE_SIZE + 8


@dataclass
class ReadResult:
    """Completion of a read-line request."""

    address: int
    #: When decrypted plaintext is available to the cache hierarchy.
    complete_ns: float
    plaintext: Optional[bytes]
    counter_cache_hit: bool
    #: Raw memory latency before decryption overlap (diagnostics).
    raw_read_ns: float


@dataclass
class WriteTicket:
    """Acceptance of a write-line request.

    ``accept_ns`` is when the write is architecturally persistent under
    ADR (both queue entries accepted and ready, for paired writes);
    sfence/persist_barrier waits on this.  ``drain_ns`` is when the data
    actually reaches the NVM array (diagnostics, crash modeling).
    """

    address: int
    accept_ns: float
    drain_ns: float
    paired: bool
    coalesced: bool


@dataclass
class ControllerStats:
    """Aggregate controller statistics for one simulation."""

    reads: int = 0
    data_writes: int = 0
    counter_writes: int = 0
    paired_writes: int = 0
    coalesced_data_writes: int = 0
    coalesced_counter_writes: int = 0
    ccwb_calls: int = 0
    ccwb_lines_flushed: int = 0
    bytes_read: int = 0
    bytes_written: int = 0
    counter_fill_reads: int = 0
    total_read_latency_ns: float = 0.0
    total_write_accept_wait_ns: float = 0.0
    # Bonsai-tree designs only (all zero otherwise).
    tree_node_writes: int = 0
    coalesced_tree_writes: int = 0
    tree_verifications: int = 0
    tree_node_fills: int = 0
    root_updates: int = 0
    ccwb_tree_flushes: int = 0
    lag_forced_pairs: int = 0

    @property
    def mean_read_latency_ns(self) -> float:
        return self.total_read_latency_ns / self.reads if self.reads else 0.0


class MemoryController:
    """One shared memory controller in front of the NVM DIMM."""

    def __init__(self, config: SystemConfig, policy: DesignPolicy) -> None:
        self.config = config
        self.policy = policy
        nvm_timing = config.nvm
        if nvm_timing.bus_width_bits != policy.bus_width_bits:
            nvm_timing = dataclasses.replace(
                nvm_timing, bus_width_bits=policy.bus_width_bits
            )
        self.timing = nvm_timing
        self.address_map = AddressMap(
            memory_size_bytes=config.memory_size_bytes, num_banks=nvm_timing.num_banks
        )
        self.device = NVMDevice(self.address_map)
        self.banks = BankTimingModel(nvm_timing)
        self.bus = BusModel(nvm_timing)
        self.counter_store = CounterStore(
            counter_region_base=self.address_map.counter_region_base,
            memory_size_bytes=config.memory_size_bytes,
        )
        self.engine: Optional[EncryptionEngine] = None
        if policy.encrypts:
            self.engine = EncryptionEngine(
                config=config.encryption,
                cache_config=config.counter_cache,
                counter_store=self.counter_store,
                functional=config.functional,
            )
        # One id space shared by both queues keeps journal entry ids
        # unique; owning the allocator (instead of a module global)
        # makes entry ids reproducible across checkpoint/restore.
        self._entry_ids = EntryIdAllocator()
        self.data_queue = WriteQueue(
            "data-wq",
            config.controller.data_write_queue_entries,
            coalesce=config.controller.coalesce_writes,
            entry_ids=self._entry_ids,
        )
        self.counter_queue = WriteQueue(
            "counter-wq",
            config.controller.counter_write_queue_entries,
            coalesce=config.controller.coalesce_writes,
            entry_ids=self._entry_ids,
        )
        # Bonsai Merkle Tree over the counters (the +bmt designs): the
        # working tree and its secure root live on chip; the node cache
        # and the dedicated tree write queue model the persistence
        # traffic under the design's eager or lazy discipline.
        self.tree: Optional[IntegrityTreeEngine] = None
        self.tree_cache: Optional[TreeNodeCache] = None
        self.tree_queue: Optional[WriteQueue] = None
        self._tree_mode = ""
        if policy.integrity_tree:
            self.tree = IntegrityTreeEngine(
                config.encryption, self.address_map, arity=config.integrity.arity
            )
            self.tree_cache = TreeNodeCache(config.integrity.node_cache_entries)
            self.tree_queue = WriteQueue(
                "tree-wq",
                config.integrity.tree_write_queue_entries,
                coalesce=config.controller.coalesce_writes,
                entry_ids=self._entry_ids,
            )
            self._tree_mode = policy.integrity_mode or config.integrity.mode
        self._max_counter_lag = config.integrity.max_counter_lag
        self._fifo_drain = config.controller.drain_policy == "fifo"
        self._last_drain = {"data": 0.0, "counter": 0.0, "tree": 0.0}
        self._counter_hold_ns = config.controller.counter_drain_hold_ns
        self._pair_ready_latency_ns = config.controller.pair_ready_latency_ns
        #: Read-queue occupancy (Table 2: 32 entries).  A slot is held
        #: from request to data arrival; a full queue delays the start
        #: of new reads (blocking cores rarely fill it, but counter
        #: fills and multicore bursts can).
        self._read_slots: list = []
        self._read_queue_capacity = config.controller.read_queue_entries
        self.read_queue_peak = 0
        self.total_read_queue_wait_ns = 0.0
        self.journal = PersistJournal()
        self.stats = ControllerStats()
        self._functional = config.functional

    # ------------------------------------------------------------------
    # Read path (Figure 6)
    # ------------------------------------------------------------------

    def _acquire_read_slot(self, request_ns: float) -> float:
        """Wait for a read-queue entry; returns the adjusted start time."""
        while self._read_slots and self._read_slots[0] <= request_ns:
            heapq.heappop(self._read_slots)
        if len(self._read_slots) < self._read_queue_capacity:
            return request_ns
        start = heapq.heappop(self._read_slots)
        self.total_read_queue_wait_ns += start - request_ns
        return start

    def _release_read_slot(self, completion_ns: float) -> None:
        heapq.heappush(self._read_slots, completion_ns)
        if len(self._read_slots) > self.read_queue_peak:
            self.read_queue_peak = len(self._read_slots)

    def read_line(self, address: int, request_ns: float) -> ReadResult:
        """Fetch and (if encrypted) decrypt one data line."""
        self.stats.reads += 1
        request_ns = self._acquire_read_slot(request_ns)
        line = self.address_map.line_base(address)
        payload_bytes = COLOCATED_PAYLOAD if self.policy.colocated else CACHE_LINE_SIZE
        bank = self.address_map.bank_of(line)
        row = self.address_map.row_of(line)
        access = self.banks.schedule_read(bank, request_ns, row=row)
        data_arrival = self.bus.schedule_transfer(access.complete_ns, payload_bytes)
        self._release_read_slot(data_arrival)
        self.stats.bytes_read += payload_bytes

        stored = self.device.read_line(line)
        if self.engine is None:
            result = ReadResult(
                address=line,
                complete_ns=data_arrival,
                plaintext=stored.payload if self._functional else None,
                counter_cache_hit=False,
                raw_read_ns=data_arrival - request_ns,
            )
        else:
            result = self._read_encrypted(line, request_ns, data_arrival, stored.payload)
        self.stats.total_read_latency_ns += result.complete_ns - request_ns
        return result

    def _read_encrypted(
        self,
        line: int,
        request_ns: float,
        data_arrival: float,
        ciphertext: bytes,
    ) -> ReadResult:
        engine = self.engine
        assert engine is not None
        latency = engine.latency_ns
        if self.policy.colocated:
            return self._read_colocated(line, request_ns, data_arrival, ciphertext)
        decryption = engine.decrypt_for_read(
            line, ciphertext if self._functional else None
        )
        if decryption.counter_cache_hit:
            # OTP generation overlaps the array read (Figure 6(c)).
            complete = max(data_arrival, request_ns + latency)
        else:
            # Fetch the counter line in parallel with the data; the OTP
            # can only be generated once the counter arrives.
            counter_arrival = self._fetch_counter_line(line, request_ns)
            complete = max(data_arrival, counter_arrival + latency)
        if decryption.evicted_counter_line is not None and self.policy.counter_evict_writes:
            self._writeback_counter_line(decryption.evicted_counter_line, request_ns)
        return ReadResult(
            address=line,
            complete_ns=complete,
            plaintext=decryption.plaintext,
            counter_cache_hit=decryption.counter_cache_hit,
            raw_read_ns=data_arrival - request_ns,
        )

    def _read_colocated(
        self,
        line: int,
        request_ns: float,
        data_arrival: float,
        ciphertext: bytes,
    ) -> ReadResult:
        """Co-located designs: the 72 B fetch carries the counter."""
        engine = self.engine
        assert engine is not None
        latency = engine.latency_ns
        hit = False
        if self.policy.has_counter_cache:
            cached = engine.counter_cache.lookup_for_read(line)
            if cached is not None:
                # Figure 5(b): decrypt with the cached counter, in
                # parallel with the fetch.
                hit = True
                complete = max(data_arrival, request_ns + latency)
            else:
                # Miss: the counter rides in with the data, so the
                # decryption serializes after the fetch; install the
                # fetched counters in the cache for next time.
                complete = data_arrival + latency
                engine.counter_cache.fill(
                    line, self.counter_store.read_counter_line(line)
                )
        else:
            # Figure 5(a)/6(a): always serialized.
            complete = data_arrival + latency
        counter = self.counter_store.read(line)
        plaintext = None
        if self._functional:
            plaintext = engine.cipher.decrypt(line, counter, ciphertext)
        return ReadResult(
            address=line,
            complete_ns=complete,
            plaintext=plaintext,
            counter_cache_hit=hit,
            raw_read_ns=data_arrival - request_ns,
        )

    def _fetch_counter_line(self, data_address: int, request_ns: float) -> float:
        """Read the covering counter line from NVM (separate designs)."""
        counter_line = self.address_map.counter_line_address_of(data_address)
        bank = self.address_map.bank_of(counter_line)
        row = self.address_map.row_of(counter_line)
        access = self.banks.schedule_read(bank, request_ns, row=row)
        arrival = self.bus.schedule_transfer(access.complete_ns, CACHE_LINE_SIZE)
        self.stats.bytes_read += CACHE_LINE_SIZE
        self.stats.counter_fill_reads += 1
        if self.tree is not None:
            # The fetched counters cannot be trusted (used for OTPs)
            # until their tree path authenticates.
            arrival = max(
                arrival, self._verify_counter_fetch(data_address, request_ns)
            )
        return arrival

    # ------------------------------------------------------------------
    # Write path (Section 5.2.2)
    # ------------------------------------------------------------------

    def write_line(
        self,
        address: int,
        payload: Optional[bytes],
        request_ns: float,
        counter_atomic: bool = False,
    ) -> WriteTicket:
        """Accept one data-line writeback (clwb or cache eviction)."""
        self.stats.data_writes += 1
        line = self.address_map.line_base(address)

        if self.engine is None:
            return self._write_plain(line, payload, request_ns, encrypted_with=0)

        encryption = self.engine.encrypt_for_write(
            line, payload if self._functional else None
        )
        if encryption.evicted_counter_line is not None and self.policy.counter_evict_writes:
            self._writeback_counter_line(encryption.evicted_counter_line, request_ns)
        if not encryption.counter_cache_hit and self.policy.uses_separate_counters:
            # Background fill of the covering counter line: the write
            # does not stall, but the fill's read traffic is real.
            self._fetch_counter_line(line, request_ns)

        if self.policy.colocated:
            return self._write_colocated(
                line, encryption.ciphertext, request_ns, encryption.counter
            )

        paired = self.policy.write_is_paired(counter_atomic)
        if (
            not paired
            and self.tree is not None
            and not self.policy.magic_counter_persistence
            and encryption.counter - self.counter_store.read(line)
            > self._max_counter_lag
        ):
            # Osiris bound: the global counter has outrun this line's
            # persisted counter beyond the post-crash search window, so
            # an unpaired write here would be unrecoverable after a
            # crash.  Integrity-verified designs escalate the write to
            # a counter-atomic pair — all-or-nothing, no crash window —
            # keeping every persisted line re-authenticable.
            self.stats.lag_forced_pairs += 1
            paired = True
        if paired:
            return self._write_paired(
                line, encryption.ciphertext, request_ns, encryption.counter
            )

        ticket = self._write_plain(
            line, encryption.ciphertext, request_ns, encrypted_with=encryption.counter
        )
        if self.policy.magic_counter_persistence:
            # Ideal fiction: the architectural counter becomes durable
            # instantly and for free, together with the data.
            self.counter_store.write(line, encryption.counter)
            self.journal.record_counter(
                address=self.address_map.counter_line_address_of(line),
                counters=(encryption.counter,),
                group_base=line,
                accept_ns=ticket.accept_ns,
                ready_ns=ticket.accept_ns,
                drain_ns=ticket.accept_ns,
                single_slot=True,
            )
        return ticket

    def _write_plain(
        self,
        line: int,
        payload: Optional[bytes],
        request_ns: float,
        encrypted_with: int,
    ) -> WriteTicket:
        """Unpaired data write: coalesce or enqueue, drain when banks allow."""
        coalesced = self.data_queue.try_coalesce(line, request_ns, payload, encrypted_with)
        if coalesced is not None:
            self.stats.coalesced_data_writes += 1
            self.device.persist_line(line, payload, encrypted_with)
            self.journal.amend_data(
                coalesced.entry_id, payload, encrypted_with, effective_ns=request_ns
            )
            return WriteTicket(
                address=line,
                accept_ns=request_ns,
                drain_ns=coalesced.drain_ns,
                paired=False,
                coalesced=True,
            )
        entry = self.data_queue.accept(
            line, request_ns, payload, is_counter=False, encrypted_with=encrypted_with
        )
        self.data_queue.mark_ready(entry, entry.accept_ns)
        issue, drain = self._drain_write(self.data_queue, line, entry.accept_ns, CACHE_LINE_SIZE)
        self.data_queue.set_drain_time(entry, drain, slot_release_ns=issue)
        self.device.persist_line(line, payload, encrypted_with)
        self.journal.record_data(
            entry_id=entry.entry_id,
            address=line,
            payload=payload,
            encrypted_with=encrypted_with,
            accept_ns=entry.accept_ns,
            ready_ns=entry.ready_ns,
            drain_ns=drain,
        )
        self.stats.bytes_written += CACHE_LINE_SIZE
        self.stats.total_write_accept_wait_ns += entry.accept_ns - request_ns
        return WriteTicket(
            address=line, accept_ns=entry.accept_ns, drain_ns=drain, paired=False, coalesced=False
        )

    def _write_colocated(
        self,
        line: int,
        payload: Optional[bytes],
        request_ns: float,
        counter: int,
    ) -> WriteTicket:
        """Co-located designs: one 72 B access carries data + counter.

        Data and counter are inherently atomic here; the journal records
        them with identical timestamps so crash images stay in sync.
        """
        counter_line = self.address_map.counter_line_address_of(line)
        coalesced = self.data_queue.try_coalesce(line, request_ns, payload, counter)
        if coalesced is not None:
            self.stats.coalesced_data_writes += 1
            self.device.persist_line(line, payload, counter)
            self.counter_store.write(line, counter)
            self.journal.amend_data(
                coalesced.entry_id, payload, counter, effective_ns=request_ns
            )
            self.journal.record_counter(
                address=counter_line,
                counters=(counter,),
                group_base=line,
                accept_ns=request_ns,
                ready_ns=request_ns,
                drain_ns=coalesced.drain_ns,
                single_slot=True,
            )
            return WriteTicket(
                address=line,
                accept_ns=request_ns,
                drain_ns=coalesced.drain_ns,
                paired=False,
                coalesced=True,
            )
        entry = self.data_queue.accept(
            line, request_ns, payload, is_counter=False, encrypted_with=counter
        )
        self.data_queue.mark_ready(entry, entry.accept_ns)
        issue, drain = self._drain_write(self.data_queue, line, entry.accept_ns, COLOCATED_PAYLOAD)
        self.data_queue.set_drain_time(entry, drain, slot_release_ns=issue)
        self.device.persist_line(line, payload, counter)
        self.counter_store.write(line, counter)
        self.journal.record_data(
            entry_id=entry.entry_id,
            address=line,
            payload=payload,
            encrypted_with=counter,
            accept_ns=entry.accept_ns,
            ready_ns=entry.ready_ns,
            drain_ns=drain,
        )
        self.journal.record_counter(
            address=counter_line,
            counters=(counter,),
            group_base=line,
            accept_ns=entry.accept_ns,
            ready_ns=entry.ready_ns,
            drain_ns=drain,
            single_slot=True,
        )
        self.stats.bytes_written += COLOCATED_PAYLOAD
        self.stats.total_write_accept_wait_ns += entry.accept_ns - request_ns
        return WriteTicket(
            address=line, accept_ns=entry.accept_ns, drain_ns=drain, paired=False, coalesced=False
        )

    def _write_paired(
        self,
        line: int,
        payload: Optional[bytes],
        request_ns: float,
        counter: int,
    ) -> WriteTicket:
        """Counter-atomic write: data + counter entries with ready bits.

        Follows the paper's seven-step walkthrough: both entries are
        inserted, each checks for its partner, and both become ready
        only when both are present.  Neither drains before ready, and
        the ADR drain at a failure takes ready entries only, so the
        pair persists all-or-nothing.

        Counter updates to a counter line that is already queued (and
        still undrained) merge into the queued entry — the merge and
        ready-bit update are a single ADR-protected operation, so the
        amendment takes effect exactly when the new pair becomes ready.
        """
        assert self.engine is not None
        self.stats.paired_writes += 1
        group_base = self.address_map.data_group_base(line)
        counter_line = self.address_map.counter_line_address_of(line)
        counters = self._pair_counter_line_values(line, counter)

        # A new pair to a line whose previous pair is still queued
        # merges into it: the merge plus the ready-bit update is one
        # ADR-protected operation, so both the data amendment and the
        # counter amendment take effect exactly when this pair becomes
        # ready, preserving all-or-nothing behaviour.
        candidate_data = self.data_queue.peek_coalesce(
            line, request_ns, allow_counter_atomic=True
        )
        candidate_ctr = self.counter_queue.peek_coalesce(
            counter_line, request_ns, allow_counter_atomic=True
        )
        if (
            candidate_data is not None
            and candidate_data.counter_atomic
            and candidate_ctr is not None
        ):
            self.data_queue.commit_coalesce(candidate_data, payload, counter)
            self.counter_queue.commit_coalesce(
                candidate_ctr, None, 0, counter_values=(group_base, counters)
            )
            self.stats.coalesced_data_writes += 1
            self.stats.coalesced_counter_writes += 1
            ready_ns = request_ns + self._pair_ready_latency_ns
            self.journal.amend_data(
                candidate_data.entry_id, payload, counter, effective_ns=ready_ns
            )
            self.journal.amend_counter(
                candidate_ctr.entry_id, group_base, counters, effective_ns=ready_ns
            )
            self.device.persist_line(line, payload, counter)
            self.counter_store.write_counter_line(group_base, counters)
            settled_ns = self._note_counter_persist(group_base, counters, ready_ns)
            return WriteTicket(
                address=line,
                accept_ns=settled_ns,
                drain_ns=max(candidate_data.drain_ns, candidate_ctr.drain_ns),
                paired=True,
                coalesced=True,
            )

        data_entry = self.data_queue.accept(
            line,
            request_ns,
            payload,
            is_counter=False,
            encrypted_with=counter,
            counter_atomic=True,
        )
        pair_time = data_entry.accept_ns

        merged = self.counter_queue.try_coalesce(
            counter_line,
            pair_time,
            None,
            0,
            counter_values=(group_base, counters),
            allow_counter_atomic=True,
        )
        if merged is not None:
            self.stats.coalesced_counter_writes += 1
            ready_ns = max(pair_time, merged.accept_ns) + self._pair_ready_latency_ns
            counter_drain = merged.drain_ns
            counter_entry_id = merged.entry_id
            self.journal.amend_counter(
                merged.entry_id, group_base, counters, effective_ns=ready_ns
            )
        else:
            counter_entry = self.counter_queue.accept(
                counter_line,
                request_ns,
                None,
                is_counter=True,
                counter_values=(group_base, counters),
                counter_atomic=True,
            )
            ready_ns = (
                max(pair_time, counter_entry.accept_ns) + self._pair_ready_latency_ns
            )
            self.counter_queue.mark_ready(counter_entry, ready_ns)
            counter_entry.partner_id = data_entry.entry_id
            counter_bytes = self._counter_payload_bytes(group_base, counters)
            counter_issue, counter_drain = self._drain_write(
                self.counter_queue, counter_line, ready_ns, counter_bytes
            )
            self.counter_queue.set_drain_time(
                counter_entry, counter_drain, slot_release_ns=counter_issue
            )
            counter_entry_id = counter_entry.entry_id
            self.stats.bytes_written += counter_bytes
            self.stats.counter_writes += 1
            self.journal.record_counter(
                address=counter_line,
                counters=counters,
                group_base=group_base,
                accept_ns=counter_entry.accept_ns,
                ready_ns=ready_ns,
                drain_ns=counter_drain,
                entry_id=counter_entry.entry_id,
            )

        self.data_queue.mark_ready(data_entry, ready_ns)
        data_entry.partner_id = counter_entry_id
        data_issue, data_drain = self._drain_write(
            self.data_queue, line, ready_ns, CACHE_LINE_SIZE
        )
        self.data_queue.set_drain_time(data_entry, data_drain, slot_release_ns=data_issue)
        self.stats.bytes_written += CACHE_LINE_SIZE

        self.device.persist_line(line, payload, counter)
        self.counter_store.write_counter_line(group_base, counters)
        settled_ns = self._note_counter_persist(group_base, counters, ready_ns)
        self.journal.record_data(
            entry_id=data_entry.entry_id,
            address=line,
            payload=payload,
            encrypted_with=counter,
            accept_ns=data_entry.accept_ns,
            ready_ns=ready_ns,
            drain_ns=data_drain,
            partner_id=counter_entry_id,
        )
        self.stats.total_write_accept_wait_ns += settled_ns - request_ns
        return WriteTicket(
            address=line,
            accept_ns=settled_ns,
            drain_ns=max(data_drain, counter_drain),
            paired=True,
            coalesced=merged is not None,
        )

    def _counter_payload_bytes(
        self, group_base: int, counters: Tuple[int, ...]
    ) -> int:
        """Bytes a counter writeback moves to NVM.

        Full counter-atomicity updates counters at cache-line
        granularity — the overhead the paper's Section 4.1 calls out —
        while the selective design's coalesced writebacks move only the
        modified 8 B slots over the 64-bit bus.
        """
        if self.policy.pair_all_writes:
            return CACHE_LINE_SIZE
        stored = self.counter_store.read_counter_line(group_base)
        changed = sum(1 for old, new in zip(stored, counters) if old != new)
        return 8 * max(1, changed)

    def _pair_counter_line_values(self, line: int, new_counter: int) -> Tuple[int, ...]:
        """Counter-line contents persisted by a pair.

        The written slot carries the new counter; sibling slots carry
        their last *persisted* values (see the module docstring for why
        dirty cached siblings must not ride along).
        """
        group_base = self.address_map.data_group_base(line)
        own_slot = (line - group_base) // CACHE_LINE_SIZE
        values = list(self.counter_store.read_counter_line(line))
        values[own_slot] = new_counter
        return tuple(values)

    def _writeback_counter_line(
        self,
        flushed: Tuple[int, Tuple[int, ...]],
        request_ns: float,
    ) -> WriteTicket:
        """Write one counter line (eviction or ccwb flush) to NVM."""
        group_base, counters = flushed
        counter_line = self.address_map.counter_line_address_of(group_base)
        coalesced = self.counter_queue.try_coalesce(
            counter_line, request_ns, None, 0, counter_values=(group_base, counters)
        )
        if coalesced is not None:
            self.stats.coalesced_counter_writes += 1
            self.counter_store.write_counter_line(group_base, counters)
            settled_ns = self._note_counter_persist(group_base, counters, request_ns)
            self.journal.amend_counter(
                coalesced.entry_id, group_base, counters, effective_ns=request_ns
            )
            return WriteTicket(
                address=counter_line,
                accept_ns=settled_ns,
                drain_ns=coalesced.drain_ns,
                paired=False,
                coalesced=True,
            )
        entry = self.counter_queue.accept(
            counter_line,
            request_ns,
            None,
            is_counter=True,
            counter_values=(group_base, counters),
        )
        self.counter_queue.mark_ready(entry, entry.accept_ns)
        counter_bytes = self._counter_payload_bytes(group_base, counters)
        issue, drain = self._drain_write(
            self.counter_queue, counter_line, entry.accept_ns, counter_bytes
        )
        self.counter_queue.set_drain_time(entry, drain, slot_release_ns=issue)
        self.counter_store.write_counter_line(group_base, counters)
        settled_ns = self._note_counter_persist(group_base, counters, entry.accept_ns)
        self.journal.record_counter(
            address=counter_line,
            counters=counters,
            group_base=group_base,
            accept_ns=entry.accept_ns,
            ready_ns=entry.ready_ns,
            drain_ns=drain,
            entry_id=entry.entry_id,
        )
        self.stats.bytes_written += counter_bytes
        self.stats.counter_writes += 1
        return WriteTicket(
            address=counter_line,
            accept_ns=settled_ns,
            drain_ns=drain,
            paired=False,
            coalesced=False,
        )

    # ------------------------------------------------------------------
    # Bonsai Merkle Tree maintenance (the +bmt designs)
    # ------------------------------------------------------------------

    def _note_counter_persist(
        self, group_base: int, counters: Tuple[int, ...], effective_ns: float
    ) -> float:
        """Re-hash the tree path for a just-persisted counter line.

        The secure root always advances with the persisted counters;
        what differs per mode is when the *interior nodes* reach NVM:
        eagerly right here (Freij-style strict ordering), or lazily by
        dirtying the node cache and flushing at
        ``counter_cache_writeback()`` / eviction (the SCA relaxation —
        safe because interior nodes are reconstructible from the
        persisted leaves).

        Returns when the write's tree obligation is met.  The eager
        discipline takes no ADR cover for metadata — that is Freij's
        premise — so a write is not architecturally persistent until
        its whole root path has *drained* to the array, and the
        returned settle time extends the caller's acceptance ticket.
        The lazy mode has no ordering obligation (interior nodes are
        reconstructible) and returns ``effective_ns`` unchanged.
        """
        if self.tree is None:
            return effective_ns
        path = self.tree.update_group(group_base, counters)
        self.stats.root_updates += 1
        assert self.tree_cache is not None
        settled_ns = effective_ns
        if self._tree_mode == "eager":
            for node in path:
                evicted = self.tree_cache.insert(node, dirty=False)
                if evicted is not None:
                    self._persist_tree_node(evicted, effective_ns)
                settled_ns = max(
                    settled_ns, self._persist_tree_node(node, effective_ns)
                )
        else:
            for node in path:
                evicted = self.tree_cache.insert(node, dirty=True)
                if evicted is not None:
                    self._persist_tree_node(evicted, effective_ns)
        return settled_ns

    def _persist_tree_node(self, node: TreeNode, request_ns: float) -> float:
        """Send one tree node's current digest to NVM.

        Pure traffic: tree writes carry no journal records because a
        crash never needs them back — recovery rebuilds interior nodes
        from the persisted counters and checks the secure register.
        Repeated writes of a hot upper node coalesce in the tree queue.
        Returns when the node's digest is durable in the array (the
        point an eager/strict-ordering caller must wait for).
        """
        assert self.tree is not None and self.tree_queue is not None
        address = self.tree.node_address(node)
        coalesced = self.tree_queue.try_coalesce(address, request_ns, None, 0)
        if coalesced is not None:
            self.stats.coalesced_tree_writes += 1
            return max(request_ns, coalesced.drain_ns)
        entry = self.tree_queue.accept(address, request_ns, None, is_counter=False)
        self.tree_queue.mark_ready(entry, entry.accept_ns)
        issue, drain = self._drain_write(
            self.tree_queue, address, entry.accept_ns, CACHE_LINE_SIZE
        )
        self.tree_queue.set_drain_time(entry, drain, slot_release_ns=issue)
        self.stats.tree_node_writes += 1
        self.stats.bytes_written += CACHE_LINE_SIZE
        return drain

    def _verify_counter_fetch(self, data_address: int, request_ns: float) -> float:
        """Authenticate a counter-line fetch against the tree.

        Walks the leaf-to-root path bottom-up; the walk stops at the
        first node already in the on-chip node cache (a cached node is
        trusted — it was verified on its way in).  Uncached nodes cost
        a real 64 B NVM read each.  Returns when the fetched counters
        are trusted.
        """
        assert self.tree is not None and self.tree_cache is not None
        group_base = self.address_map.data_group_base(data_address)
        if not self.tree.verify_leaf(
            group_base, self.counter_store.read_counter_line(group_base)
        ):
            raise SimulationError(
                "integrity-tree mismatch for counter line of group 0x%x" % group_base
            )
        self.stats.tree_verifications += 1
        arrival = request_ns
        index = self.tree.leaf_index(group_base)
        for level in range(self.tree.levels):
            node = (level, index)
            if self.tree_cache.touch(node):
                break
            address = self.tree.node_address(node)
            bank = self.address_map.bank_of(address)
            row = self.address_map.row_of(address)
            access = self.banks.schedule_read(bank, request_ns, row=row)
            node_arrival = self.bus.schedule_transfer(access.complete_ns, CACHE_LINE_SIZE)
            arrival = max(arrival, node_arrival)
            self.stats.bytes_read += CACHE_LINE_SIZE
            self.stats.tree_node_fills += 1
            evicted = self.tree_cache.insert(node, dirty=False)
            if evicted is not None:
                self._persist_tree_node(evicted, request_ns)
            index //= self.tree.arity
        return arrival

    def _drain_write(
        self, queue: WriteQueue, address: int, ready_ns: float, payload_bytes: int
    ) -> Tuple[float, float]:
        """Schedule the array write + bus transfer for one drain.

        Returns ``(issue_ns, complete_ns)``: the entry's queue slot
        frees at issue (the write has left for its bank), while the
        cell write is durable at complete.  Counter-line entries may be
        held for a grace window first (``counter_drain_hold_ns``).
        """
        start = ready_ns
        if queue is self.counter_queue:
            start += self._counter_hold_ns
            drain_key = "counter"
        elif queue is self.tree_queue:
            drain_key = "tree"
        else:
            drain_key = "data"
        if self._fifo_drain:
            # Strict FIFO drain: head-of-line blocking (ablation).
            start = max(start, self._last_drain[drain_key])
        bank = self.address_map.bank_of(address)
        row = self.address_map.row_of(address)
        bus_done = self.bus.schedule_transfer(start, payload_bytes)
        access = self.banks.schedule_write(bank, bus_done, row=row)
        if self._fifo_drain:
            self._last_drain[drain_key] = access.complete_ns
        return access.start_ns, access.complete_ns

    # ------------------------------------------------------------------
    # counter_cache_writeback() (Section 4.3 / 5.2.2)
    # ------------------------------------------------------------------

    def counter_cache_writeback(self, address: int, request_ns: float) -> Optional[WriteTicket]:
        """Flush the dirty counter line covering ``address``.

        Returns the acceptance ticket, or None when the design has no
        ccwb support or the line is clean (a no-op, per the paper).
        The flushed entry's ready bit is always set — it is not paired.
        """
        self.stats.ccwb_calls += 1
        if self.engine is None or not self.policy.ccwb_enabled:
            return None
        flushed = self.engine.counter_cache.writeback_line(address)
        if flushed is None:
            return None
        self.stats.ccwb_lines_flushed += 1
        ticket = self._writeback_counter_line(flushed, request_ns)
        if self.tree_cache is not None and self._tree_mode == "lazy":
            # The lazy discipline piggybacks on the paper's persistence
            # point: flush every coalesced dirty tree node here, so the
            # NVM tree catches up exactly when the counters do.
            dirty = self.tree_cache.flush_dirty()
            for node in dirty:
                self._persist_tree_node(node, request_ns)
            self.stats.ccwb_tree_flushes += len(dirty)
        return ticket

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def counter_cache_stats(self):
        if self.engine is None:
            return None
        return self.engine.counter_cache.stats

    def write_traffic_bytes(self) -> int:
        return self.stats.bytes_written

    def read_traffic_bytes(self) -> int:
        return self.stats.bytes_read

    # ------------------------------------------------------------------
    # Checkpoint state
    # ------------------------------------------------------------------

    def get_state(self) -> dict:
        """Full controller state for a simulation checkpoint.

        Covers every mutable structure the timing and functional paths
        touch; config-derived objects (address map, cipher, policy) are
        rebuilt from config on restore.
        """
        return {
            "device": self.device.get_state(),
            "banks": self.banks.get_state(),
            "bus": self.bus.get_state(),
            "counter_store": self.counter_store.get_state(),
            "engine": self.engine.get_state() if self.engine is not None else None,
            "next_entry_id": self._entry_ids.next_id,
            "data_queue": self.data_queue.get_state(),
            "counter_queue": self.counter_queue.get_state(),
            "tree": self.tree.get_state() if self.tree is not None else None,
            "tree_cache": (
                self.tree_cache.get_state() if self.tree_cache is not None else None
            ),
            "tree_queue": (
                self.tree_queue.get_state() if self.tree_queue is not None else None
            ),
            "last_drain": dict(self._last_drain),
            "read_slots": list(self._read_slots),
            "read_queue_peak": self.read_queue_peak,
            "total_read_queue_wait_ns": self.total_read_queue_wait_ns,
            "journal": self.journal.get_state(),
            "stats": dataclasses.asdict(self.stats),
        }

    def set_state(self, state: dict) -> None:
        self.device.set_state(state["device"])
        self.banks.set_state(state["banks"])
        self.bus.set_state(state["bus"])
        self.counter_store.set_state(state["counter_store"])
        if self.engine is not None and state["engine"] is not None:
            self.engine.set_state(state["engine"])
        self._entry_ids.next_id = state["next_entry_id"]
        self.data_queue.set_state(state["data_queue"])
        self.counter_queue.set_state(state["counter_queue"])
        if self.tree is not None and state["tree"] is not None:
            self.tree.set_state(state["tree"])
            self.tree_cache.set_state(state["tree_cache"])
            self.tree_queue.set_state(state["tree_queue"])
        self._last_drain = dict(state["last_drain"])
        self._read_slots = list(state["read_slots"])
        self.read_queue_peak = state["read_queue_peak"]
        self.total_read_queue_wait_ns = state["total_read_queue_wait_ns"]
        self.journal.set_state(state["journal"])
        self.stats = ControllerStats(**state["stats"])
