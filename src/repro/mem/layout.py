"""Encryption layout paths: how read/write bytes move per design.

The layout layer owns the byte movement of the three counter layouts
the paper evaluates:

* :class:`PlainLayout` — no encryption; 64 B lines, nothing else moves.
* :class:`ColocatedLayout` — counter co-located with the data in one
  72 B access over the 72-bit bus (Figure 5(a)/(b)); atomic by
  construction, so writes never pair.
* :class:`SplitCounterLayout` — counters in their own NVM region over
  the 64-bit bus (Figure 5(c)); reads may fetch (and authenticate) the
  covering counter line, writes route through the design's atomicity
  discipline.

The shared read prologue (read-queue slot, bank + bus scheduling) stays
in the controller; a layout turns the arrived bytes into a
:class:`ReadResult` (``complete_read``) and routes writes
(``write_line``).
"""

from __future__ import annotations

from dataclasses import dataclass
from heapq import heappop, heappush
from typing import TYPE_CHECKING, Optional

from ..config import CACHE_LINE_SIZE, SystemConfig
from ..core.designs import DesignPolicy
from .atomicity import WriteTicket
from .events import _DATA_PERSIST, _FLUSH_EVERY, EventBus
from .writequeue import _INF, WriteQueueEntry

if TYPE_CHECKING:
    from .controller import MemoryController

#: Payload size of a co-located access (64 B data + 8 B counter).
COLOCATED_PAYLOAD = CACHE_LINE_SIZE + 8


@dataclass(slots=True)
class ReadResult:
    """Completion of a read-line request."""

    address: int
    #: When decrypted plaintext is available to the cache hierarchy.
    complete_ns: float
    plaintext: Optional[bytes]
    counter_cache_hit: bool
    #: Raw memory latency before decryption overlap (diagnostics).
    raw_read_ns: float


class PlainLayout:
    """No encryption: bytes come and go as stored."""

    kind = "plain"
    read_payload_bytes = CACHE_LINE_SIZE

    def __init__(self, ctrl: "MemoryController", config: SystemConfig, policy: DesignPolicy) -> None:
        self.ctrl = ctrl
        self.policy = policy
        self._functional = config.functional

    def complete_read(
        self, line: int, request_ns: float, data_arrival: float, stored: bytes
    ) -> ReadResult:
        return ReadResult(
            address=line,
            complete_ns=data_arrival,
            plaintext=stored if self._functional else None,
            counter_cache_hit=False,
            raw_read_ns=data_arrival - request_ns,
        )

    def write_line(
        self, line: int, payload: Optional[bytes], request_ns: float, counter_atomic: bool
    ) -> WriteTicket:
        return self.ctrl.atomicity.write_unpaired(line, payload, request_ns, encrypted_with=0)


class ColocatedLayout(PlainLayout):
    """Counter rides inside one 72 B access (Figure 5(a)/(b))."""

    kind = "colocated"
    read_payload_bytes = COLOCATED_PAYLOAD

    def complete_read(
        self, line: int, request_ns: float, data_arrival: float, stored: bytes
    ) -> ReadResult:
        """The 72 B fetch carries the counter."""
        ctrl = self.ctrl
        engine = ctrl.engine
        assert engine is not None
        latency = engine.latency_ns
        hit = False
        if self.policy.has_counter_cache:
            cached = engine.counter_cache.lookup_for_read(line)
            if cached is not None:
                # Figure 5(b): decrypt with the cached counter, in
                # parallel with the fetch.
                hit = True
                complete = max(data_arrival, request_ns + latency)
            else:
                # Miss: the counter rides in with the data, so the
                # decryption serializes after the fetch; install the
                # fetched counters in the cache for next time.
                complete = data_arrival + latency
                engine.counter_cache.fill(
                    line, ctrl.counter_store.read_counter_line(line)
                )
        else:
            # Figure 5(a)/6(a): always serialized.
            complete = data_arrival + latency
        counter = ctrl.counter_store.read(line)
        plaintext = None
        if self._functional:
            plaintext = engine.cipher.decrypt(line, counter, stored)
        return ReadResult(
            address=line,
            complete_ns=complete,
            plaintext=plaintext,
            counter_cache_hit=hit,
            raw_read_ns=data_arrival - request_ns,
        )

    def write_line(
        self, line: int, payload: Optional[bytes], request_ns: float, counter_atomic: bool
    ) -> WriteTicket:
        """One 72 B access carries data + counter.

        Data and counter are inherently atomic here; the journal records
        them with identical timestamps so crash images stay in sync.
        """
        ctrl = self.ctrl
        assert ctrl.engine is not None
        encryption = ctrl.engine.encrypt_for_write(
            line, payload if self._functional else None
        )
        if (
            encryption.evicted_counter_line is not None
            and self.policy.counter_evict_writes
        ):
            ctrl.atomicity.writeback_counter_line(
                encryption.evicted_counter_line, request_ns
            )
        payload = encryption.ciphertext
        counter = encryption.counter
        queue = ctrl.atomicity.data_queue
        events = ctrl.events
        counter_line = ctrl.address_map.counter_line_address_of(line)
        # Hot path: queue probe/accept/drain-time and the stats emit are
        # inlined, bit-identical to the composed calls (see
        # docs/performance.md); colocated entries are never
        # counter-atomic, but keep the probe's filter for exactness.
        entry = queue._live_by_address.get(line) if queue.coalesce_enabled else None
        if (
            entry is not None
            and entry.slot_release_ns > request_ns
            and not entry.counter_atomic
        ):
            entry.payload = payload
            entry.encrypted_with = counter
            entry.coalesced += 1
            queue.coalesced += 1
            drain_ns = entry.drain_ns
            ctrl.device.persist_line(line, payload, counter)
            ctrl.counter_store.write(line, counter)
            if ctrl.journal.enabled:
                ctrl.journal.amend_data(
                    entry.entry_id, payload, counter, effective_ns=request_ns
                )
                ctrl.journal.record_counter(
                    address=counter_line,
                    counters=(counter,),
                    group_base=line,
                    accept_ns=request_ns,
                    ready_ns=request_ns,
                    drain_ns=drain_ns,
                    single_slot=True,
                )
            if events._generic:
                EventBus.emit_data_persist(
                    events, line, COLOCATED_PAYLOAD, True, request_ns, drain_ns
                )
            else:
                buffer = events._buffer
                buffer.append((_DATA_PERSIST, COLOCATED_PAYLOAD, True, 0.0))
                if len(buffer) >= _FLUSH_EVERY:
                    events.flush()
            return WriteTicket(
                address=line,
                accept_ns=request_ns,
                drain_ns=drain_ns,
                paired=False,
                coalesced=True,
            )
        slots = queue._slots
        while slots and slots[0] <= request_ns:
            heappop(slots)
        if len(slots) < queue.capacity:
            accept_ns = request_ns
        else:
            accept_ns = slots[0]
            queue.total_accept_wait_ns += accept_ns - request_ns
        ids = queue._entry_ids
        entry_id = ids.next_id
        ids.next_id = entry_id + 1
        entry = WriteQueueEntry(
            entry_id, line, payload, False, counter, None,
            accept_ns, accept_ns, _INF,
        )
        queue._live_by_address[line] = entry
        queue.history.append(entry)
        queue.accepted += 1
        issue, drain = ctrl.drain_write(queue, "data", line, accept_ns, COLOCATED_PAYLOAD)
        entry.drain_ns = drain
        entry.slot_release_ns = issue
        while slots and slots[0] <= accept_ns:
            heappop(slots)
        heappush(slots, issue)
        if len(slots) > queue.peak_occupancy:
            queue.peak_occupancy = len(slots)
        ctrl.device.persist_line(line, payload, counter)
        ctrl.counter_store.write(line, counter)
        if ctrl.journal.enabled:
            ctrl.journal.record_data(
                entry_id=entry_id,
                address=line,
                payload=payload,
                encrypted_with=counter,
                accept_ns=accept_ns,
                ready_ns=accept_ns,
                drain_ns=drain,
            )
            ctrl.journal.record_counter(
                address=counter_line,
                counters=(counter,),
                group_base=line,
                accept_ns=accept_ns,
                ready_ns=accept_ns,
                drain_ns=drain,
                single_slot=True,
            )
        if events._generic:
            EventBus.emit_data_persist(
                events,
                line,
                COLOCATED_PAYLOAD,
                False,
                accept_ns,
                drain,
                accept_wait_ns=accept_ns - request_ns,
            )
        else:
            buffer = events._buffer
            buffer.append((_DATA_PERSIST, COLOCATED_PAYLOAD, False, accept_ns - request_ns))
            if len(buffer) >= _FLUSH_EVERY:
                events.flush()
        return WriteTicket(
            address=line, accept_ns=accept_ns, drain_ns=drain, paired=False, coalesced=False
        )


class SplitCounterLayout(PlainLayout):
    """Counters in their own NVM region (Figure 5(c))."""

    kind = "split"
    read_payload_bytes = CACHE_LINE_SIZE

    def complete_read(
        self, line: int, request_ns: float, data_arrival: float, stored: bytes
    ) -> ReadResult:
        ctrl = self.ctrl
        engine = ctrl.engine
        assert engine is not None
        latency = engine.latency_ns
        decryption = engine.decrypt_for_read(
            line, stored if self._functional else None
        )
        if decryption.counter_cache_hit:
            # OTP generation overlaps the array read (Figure 6(c)).
            complete = max(data_arrival, request_ns + latency)
        else:
            # Fetch the counter line in parallel with the data; the OTP
            # can only be generated once the counter arrives.
            counter_arrival = self.fetch_counter_line(line, request_ns)
            complete = max(data_arrival, counter_arrival + latency)
        if (
            decryption.evicted_counter_line is not None
            and self.policy.counter_evict_writes
        ):
            ctrl.atomicity.writeback_counter_line(
                decryption.evicted_counter_line, request_ns
            )
        return ReadResult(
            address=line,
            complete_ns=complete,
            plaintext=decryption.plaintext,
            counter_cache_hit=decryption.counter_cache_hit,
            raw_read_ns=data_arrival - request_ns,
        )

    def fetch_counter_line(self, data_address: int, request_ns: float) -> float:
        """Read the covering counter line from NVM."""
        ctrl = self.ctrl
        counter_line = ctrl.address_map.counter_line_address_of(data_address)
        bank = ctrl.address_map.bank_of(counter_line)
        row = ctrl.address_map.row_of(counter_line)
        access = ctrl.banks.schedule_read(bank, request_ns, row=row)
        arrival = ctrl.bus.schedule_transfer(access.complete_ns, CACHE_LINE_SIZE)
        ctrl.events.emit_counter_fetch(counter_line, request_ns, CACHE_LINE_SIZE)
        if ctrl.integrity.tree is not None:
            # The fetched counters cannot be trusted (used for OTPs)
            # until their tree path authenticates.
            arrival = max(
                arrival, ctrl.integrity.verify_counter_fetch(data_address, request_ns)
            )
        return arrival

    def write_line(
        self, line: int, payload: Optional[bytes], request_ns: float, counter_atomic: bool
    ) -> WriteTicket:
        ctrl = self.ctrl
        assert ctrl.engine is not None
        encryption = ctrl.engine.encrypt_for_write(
            line, payload if self._functional else None
        )
        if (
            encryption.evicted_counter_line is not None
            and self.policy.counter_evict_writes
        ):
            ctrl.atomicity.writeback_counter_line(
                encryption.evicted_counter_line, request_ns
            )
        if not encryption.counter_cache_hit:
            # Background fill of the covering counter line: the write
            # does not stall, but the fill's read traffic is real.
            self.fetch_counter_line(line, request_ns)
        return ctrl.atomicity.accept_write(
            line, encryption.ciphertext, request_ns, encryption.counter, counter_atomic
        )


_LAYOUT_CLASSES = {
    "plain": PlainLayout,
    "colocated": ColocatedLayout,
    "split": SplitCounterLayout,
}


def build_layout(
    ctrl: "MemoryController", config: SystemConfig, policy: DesignPolicy
) -> PlainLayout:
    """Instantiate the layout strategy for a design's axis value."""
    return _LAYOUT_CLASSES[policy.layout.kind](ctrl, config, policy)
