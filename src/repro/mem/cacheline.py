"""Cache-line bookkeeping shared by every cache level."""

from __future__ import annotations

from typing import Optional

from ..config import CACHE_LINE_SIZE
from ..errors import AddressError


class CacheLine:
    """One resident line: optional payload plus coherence metadata.

    ``payload`` is a mutable bytearray in functional mode and ``None``
    in timing-only mode.  ``counter_atomic`` records whether any store
    since the last writeback was annotated ``CounterAtomic`` — the flag
    travels with the eventual writeback so the memory controller knows
    to pair it with its counter (paper Section 5.1).
    """

    __slots__ = ("tag", "payload", "dirty", "counter_atomic", "lru_tick")

    def __init__(self, tag: int, payload: Optional[bytearray], lru_tick: int) -> None:
        self.tag = tag
        self.payload = payload
        self.dirty = False
        self.counter_atomic = False
        self.lru_tick = lru_tick

    def write_bytes(self, offset: int, data: bytes) -> None:
        """Store ``data`` at ``offset`` within the line (functional mode)."""
        if offset < 0 or offset + len(data) > CACHE_LINE_SIZE:
            raise AddressError(
                "store of %d bytes at offset %d spills out of the line"
                % (len(data), offset)
            )
        if self.payload is not None:
            self.payload[offset : offset + len(data)] = data

    def read_bytes(self, offset: int, length: int) -> Optional[bytes]:
        """Load ``length`` bytes at ``offset``; None in timing-only mode."""
        if offset < 0 or offset + length > CACHE_LINE_SIZE:
            raise AddressError(
                "load of %d bytes at offset %d spills out of the line" % (length, offset)
            )
        if self.payload is None:
            return None
        return bytes(self.payload[offset : offset + length])

    def snapshot_payload(self) -> Optional[bytes]:
        """Immutable copy of the current payload."""
        if self.payload is None:
            return None
        return bytes(self.payload)
