"""Counter-atomicity policies: queue selection and ready-bit pairing.

The atomicity layer owns the data and counter write queues and every
path by which a write (data or counter) reaches them:

* :class:`UnpairedAtomicity` — writes are accepted individually and are
  immediately ready (the no-encryption, ideal, unsafe and co-located
  designs; also SCA's non-annotated writes).
* :class:`FullCounterAtomicity` — every data write pairs with its
  covering counter-line write through the ready-bit protocol (paper
  Section 3.2.2 / 5.2.2).
* :class:`SelectiveCounterAtomicity` — only ``CounterAtomic``-annotated
  writes pair; other counters coalesce in the counter cache until
  ``counter_cache_writeback()`` (Section 4).

A note on counter-atomic pairs and sibling counters: a paired write
persists the whole covering counter line.  The seven sibling slots are
taken from the *architectural* counter values (last persisted), not the
counter cache — re-persisting them is idempotent, whereas persisting a
dirty cached sibling could outrun its data line and strand it
undecryptable.  Dirty cached counters persist via
``counter_cache_writeback()`` or eviction, exactly as the paper's
protocol requires.
"""

from __future__ import annotations

from dataclasses import dataclass
from heapq import heappop, heappush
from typing import TYPE_CHECKING, Optional, Tuple

from ..config import CACHE_LINE_SIZE, SystemConfig
from ..core.designs import DesignPolicy
from .events import _COUNTER_PERSIST, _DATA_PERSIST, _FLUSH_EVERY, _PAIR, EventBus
from .writequeue import _INF, WriteQueue, WriteQueueEntry

if TYPE_CHECKING:
    from .controller import MemoryController


@dataclass(slots=True)
class WriteTicket:
    """Acceptance of a write-line request.

    ``accept_ns`` is when the write is architecturally persistent under
    ADR (both queue entries accepted and ready, for paired writes);
    sfence/persist_barrier waits on this.  ``drain_ns`` is when the data
    actually reaches the NVM array (diagnostics, crash modeling).
    """

    address: int
    accept_ns: float
    drain_ns: float
    paired: bool
    coalesced: bool


class UnpairedAtomicity:
    """Base discipline: no pairing; every entry is ready on acceptance.

    Also the shared implementation substrate — the paired disciplines
    override :meth:`write_is_paired` (and FCA the counter-writeback
    granularity) but reuse the queue mechanics defined here.
    """

    kind = "unpaired"

    #: Bytes a *pair's* counter persist moves.  A pair changes at most
    #: its own 8 B slot relative to the persisted line, so this equals
    #: ``counter_payload_bytes`` (8 * max(1, changed)) for that case;
    #: FCA overrides both to full cache lines.
    pair_counter_bytes = 8

    def __init__(self, ctrl: "MemoryController", config: SystemConfig, policy: DesignPolicy) -> None:
        self.ctrl = ctrl
        self.policy = policy
        self.data_queue = WriteQueue(
            "data-wq",
            config.controller.data_write_queue_entries,
            coalesce=config.controller.coalesce_writes,
            entry_ids=ctrl.entry_ids,
        )
        self.counter_queue = WriteQueue(
            "counter-wq",
            config.controller.counter_write_queue_entries,
            coalesce=config.controller.coalesce_writes,
            entry_ids=ctrl.entry_ids,
        )
        self.pair_ready_latency_ns = config.controller.pair_ready_latency_ns
        self._magic = policy.magic_counter_persistence

    # -- pairing discipline --------------------------------------------------

    def write_is_paired(self, counter_atomic: bool) -> bool:
        return False

    def accept_write(
        self,
        line: int,
        payload: Optional[bytes],
        request_ns: float,
        counter: int,
        counter_atomic: bool,
    ) -> WriteTicket:
        """Route one encrypted split-region data write per the discipline.

        Unpaired writes may still be escalated to a counter-atomic pair
        by the integrity layer's Osiris counter-lag bound: an unpaired
        write whose global counter has outrun the persisted counter
        beyond the post-crash search window would be unrecoverable, so
        integrity-verified designs force the pair (all-or-nothing, no
        crash window), keeping every persisted line re-authenticable.
        """
        paired = self.write_is_paired(counter_atomic)
        lag_forced = False
        if not paired and self.ctrl.integrity.should_force_pair(line, counter):
            lag_forced = True
            paired = True
        if paired:
            return self.write_paired(line, payload, request_ns, counter, lag_forced)
        ticket = self.write_unpaired(line, payload, request_ns, encrypted_with=counter)
        if self._magic:
            # Ideal fiction: the architectural counter becomes durable
            # instantly and for free, together with the data.
            ctrl = self.ctrl
            ctrl.counter_store.write(line, counter)
            if ctrl.journal.enabled:
                ctrl.journal.record_counter(
                    address=ctrl.address_map.counter_line_address_of(line),
                    counters=(counter,),
                    group_base=line,
                    accept_ns=ticket.accept_ns,
                    ready_ns=ticket.accept_ns,
                    drain_ns=ticket.accept_ns,
                    single_slot=True,
                )
        return ticket

    # -- unpaired data writes ------------------------------------------------

    def write_unpaired(
        self,
        line: int,
        payload: Optional[bytes],
        request_ns: float,
        encrypted_with: int,
    ) -> WriteTicket:
        """Unpaired data write: coalesce or enqueue, drain when banks allow.

        Hot path: the queue probe/accept/ready/drain-time mechanics and
        the stats emit are inlined — bit-identical to the composed
        calls (``docs/performance.md``) — because every plain clwb and
        dirty data eviction funnels through here.
        """
        ctrl = self.ctrl
        queue = self.data_queue
        events = ctrl.events
        # Coalesce probe (== WriteQueue.try_coalesce without the
        # counter-values/counter-atomic cases, which cannot arise here).
        entry = queue._live_by_address.get(line) if queue.coalesce_enabled else None
        if (
            entry is not None
            and entry.slot_release_ns > request_ns
            and not entry.counter_atomic
        ):
            entry.payload = payload
            entry.encrypted_with = encrypted_with
            entry.coalesced += 1
            queue.coalesced += 1
            drain_ns = entry.drain_ns
            ctrl.device.persist_line(line, payload, encrypted_with)
            if ctrl.journal.enabled:
                ctrl.journal.amend_data(
                    entry.entry_id, payload, encrypted_with, effective_ns=request_ns
                )
            if events._generic:
                EventBus.emit_data_persist(
                    events, line, CACHE_LINE_SIZE, True, request_ns, drain_ns
                )
            else:
                buffer = events._buffer
                buffer.append((_DATA_PERSIST, CACHE_LINE_SIZE, True, 0.0))
                if len(buffer) >= _FLUSH_EVERY:
                    events.flush()
            return WriteTicket(
                address=line,
                accept_ns=request_ns,
                drain_ns=drain_ns,
                paired=False,
                coalesced=True,
            )
        # Acceptance (== WriteQueue.accept, ready at accept).
        slots = queue._slots
        while slots and slots[0] <= request_ns:
            heappop(slots)
        if len(slots) < queue.capacity:
            accept_ns = request_ns
        else:
            accept_ns = slots[0]
            queue.total_accept_wait_ns += accept_ns - request_ns
        ids = queue._entry_ids
        entry_id = ids.next_id
        ids.next_id = entry_id + 1
        entry = WriteQueueEntry(
            entry_id, line, payload, False, encrypted_with, None,
            accept_ns, accept_ns, _INF,
        )
        queue._live_by_address[line] = entry
        queue.history.append(entry)
        queue.accepted += 1
        issue, drain = ctrl.drain_write(queue, "data", line, accept_ns, CACHE_LINE_SIZE)
        # Drain schedule (== WriteQueue.set_drain_time; its validations
        # hold statically: drain >= issue >= accept == ready).
        entry.drain_ns = drain
        entry.slot_release_ns = issue
        while slots and slots[0] <= accept_ns:
            heappop(slots)
        heappush(slots, issue)
        if len(slots) > queue.peak_occupancy:
            queue.peak_occupancy = len(slots)
        ctrl.device.persist_line(line, payload, encrypted_with)
        if ctrl.journal.enabled:
            ctrl.journal.record_data(
                entry_id=entry_id,
                address=line,
                payload=payload,
                encrypted_with=encrypted_with,
                accept_ns=accept_ns,
                ready_ns=accept_ns,
                drain_ns=drain,
            )
        if events._generic:
            EventBus.emit_data_persist(
                events,
                line,
                CACHE_LINE_SIZE,
                False,
                accept_ns,
                drain,
                accept_wait_ns=accept_ns - request_ns,
            )
        else:
            buffer = events._buffer
            buffer.append((_DATA_PERSIST, CACHE_LINE_SIZE, False, accept_ns - request_ns))
            if len(buffer) >= _FLUSH_EVERY:
                events.flush()
        return WriteTicket(
            address=line, accept_ns=accept_ns, drain_ns=drain, paired=False, coalesced=False
        )

    # -- counter-atomic pairs ------------------------------------------------

    def write_paired(
        self,
        line: int,
        payload: Optional[bytes],
        request_ns: float,
        counter: int,
        lag_forced: bool = False,
    ) -> WriteTicket:
        """Counter-atomic write: data + counter entries with ready bits.

        Follows the paper's seven-step walkthrough: both entries are
        inserted, each checks for its partner, and both become ready
        only when both are present.  Neither drains before ready, and
        the ADR drain at a failure takes ready entries only, so the
        pair persists all-or-nothing.

        Counter updates to a counter line that is already queued (and
        still undrained) merge into the queued entry — the merge and
        ready-bit update are a single ADR-protected operation, so the
        amendment takes effect exactly when the new pair becomes ready.

        Hot path for FCA (and SCA annotated writes): the queue and emit
        mechanics are inlined exactly like :meth:`write_unpaired`.
        """
        ctrl = self.ctrl
        data_queue = self.data_queue
        counter_queue = self.counter_queue
        events = ctrl.events
        group_base = ctrl.address_map.data_group_base(line)
        counter_line = ctrl.address_map.counter_line_address_of(line)
        # == _pair_counter_line_values, reusing the group base computed
        # above; the persisted-sibling rationale is in the module
        # docstring.
        values = list(ctrl.counter_store.read_counter_line(line))
        values[(line - group_base) // CACHE_LINE_SIZE] = counter
        counters = tuple(values)

        # A new pair to a line whose previous pair is still queued
        # merges into it: the merge plus the ready-bit update is one
        # ADR-protected operation, so both the data amendment and the
        # counter amendment take effect exactly when this pair becomes
        # ready, preserving all-or-nothing behaviour.
        # (Inline peek_coalesce with allow_counter_atomic=True: any
        # live entry qualifies.)
        if data_queue.coalesce_enabled:
            candidate_data = data_queue._live_by_address.get(line)
            if candidate_data is not None and candidate_data.slot_release_ns <= request_ns:
                candidate_data = None
            candidate_ctr = counter_queue._live_by_address.get(counter_line)
            if candidate_ctr is not None and candidate_ctr.slot_release_ns <= request_ns:
                candidate_ctr = None
        else:
            candidate_data = None
            candidate_ctr = None
        if (
            candidate_data is not None
            and candidate_data.counter_atomic
            and candidate_ctr is not None
        ):
            self.data_queue.commit_coalesce(candidate_data, payload, counter)
            self.counter_queue.commit_coalesce(
                candidate_ctr, None, 0, counter_values=(group_base, counters)
            )
            ready_ns = request_ns + self.pair_ready_latency_ns
            ctrl.events.emit_data_persist(
                line, CACHE_LINE_SIZE, True, ready_ns, candidate_data.drain_ns
            )
            ctrl.events.emit_counter_persist(
                counter_line, 0, True, True, ready_ns, candidate_ctr.drain_ns
            )
            if ctrl.journal.enabled:
                ctrl.journal.amend_data(
                    candidate_data.entry_id, payload, counter, effective_ns=ready_ns
                )
                ctrl.journal.amend_counter(
                    candidate_ctr.entry_id, group_base, counters, effective_ns=ready_ns
                )
            ctrl.device.persist_line(line, payload, counter)
            ctrl.counter_store.write_counter_line(group_base, counters)
            settled_ns = ctrl.integrity.note_counter_persist(group_base, counters, ready_ns)
            ctrl.events.emit_pair(line, settled_ns, 0.0, lag_forced, True)
            return WriteTicket(
                address=line,
                accept_ns=settled_ns,
                drain_ns=max(candidate_data.drain_ns, candidate_ctr.drain_ns),
                paired=True,
                coalesced=True,
            )

        # Data acceptance (== WriteQueue.accept with counter_atomic=True).
        data_slots = data_queue._slots
        while data_slots and data_slots[0] <= request_ns:
            heappop(data_slots)
        if len(data_slots) < data_queue.capacity:
            pair_time = request_ns
        else:
            pair_time = data_slots[0]
            data_queue.total_accept_wait_ns += pair_time - request_ns
        ids = data_queue._entry_ids
        data_entry_id = ids.next_id
        ids.next_id = data_entry_id + 1
        data_entry = WriteQueueEntry(
            data_entry_id, line, payload, False, counter, None,
            pair_time, _INF, _INF, _INF, True,
        )
        data_queue._live_by_address[line] = data_entry
        data_queue.history.append(data_entry)
        data_queue.accepted += 1

        # Counter side: merge into a live queued counter entry, else
        # accept a fresh one (== try_coalesce / accept + mark_ready +
        # set_drain_time, inlined).
        merged = (
            counter_queue._live_by_address.get(counter_line)
            if counter_queue.coalesce_enabled
            else None
        )
        if merged is not None and merged.slot_release_ns <= pair_time:
            merged = None
        if merged is not None:
            merged.payload = None
            merged.encrypted_with = 0
            merged.counter_values = (group_base, counters)
            merged.coalesced += 1
            counter_queue.coalesced += 1
            ready_ns = max(pair_time, merged.accept_ns) + self.pair_ready_latency_ns
            counter_drain = merged.drain_ns
            counter_entry_id = merged.entry_id
            if events._generic:
                EventBus.emit_counter_persist(
                    events, counter_line, 0, True, True, ready_ns, counter_drain
                )
            else:
                buffer = events._buffer
                buffer.append((_COUNTER_PERSIST, 0, True))
                if len(buffer) >= _FLUSH_EVERY:
                    events.flush()
            if ctrl.journal.enabled:
                ctrl.journal.amend_counter(
                    merged.entry_id, group_base, counters, effective_ns=ready_ns
                )
        else:
            counter_slots = counter_queue._slots
            while counter_slots and counter_slots[0] <= request_ns:
                heappop(counter_slots)
            if len(counter_slots) < counter_queue.capacity:
                counter_accept = request_ns
            else:
                counter_accept = counter_slots[0]
                counter_queue.total_accept_wait_ns += counter_accept - request_ns
            ids = counter_queue._entry_ids
            counter_entry_id = ids.next_id
            ids.next_id = counter_entry_id + 1
            ready_ns = max(pair_time, counter_accept) + self.pair_ready_latency_ns
            counter_entry = WriteQueueEntry(
                counter_entry_id, counter_line, None, True, 0,
                (group_base, counters), counter_accept, ready_ns, _INF, _INF,
                True, data_entry_id,
            )
            counter_queue._live_by_address[counter_line] = counter_entry
            counter_queue.history.append(counter_entry)
            counter_queue.accepted += 1
            counter_bytes = self.pair_counter_bytes
            counter_issue, counter_drain = ctrl.drain_write(
                counter_queue, "counter", counter_line, ready_ns, counter_bytes
            )
            counter_entry.drain_ns = counter_drain
            counter_entry.slot_release_ns = counter_issue
            while counter_slots and counter_slots[0] <= counter_accept:
                heappop(counter_slots)
            heappush(counter_slots, counter_issue)
            if len(counter_slots) > counter_queue.peak_occupancy:
                counter_queue.peak_occupancy = len(counter_slots)
            if events._generic:
                EventBus.emit_counter_persist(
                    events, counter_line, counter_bytes, False, True,
                    counter_accept, counter_drain,
                )
            else:
                buffer = events._buffer
                buffer.append((_COUNTER_PERSIST, counter_bytes, False))
                if len(buffer) >= _FLUSH_EVERY:
                    events.flush()
            if ctrl.journal.enabled:
                ctrl.journal.record_counter(
                    address=counter_line,
                    counters=counters,
                    group_base=group_base,
                    accept_ns=counter_accept,
                    ready_ns=ready_ns,
                    drain_ns=counter_drain,
                    entry_id=counter_entry_id,
                )

        data_entry.ready_ns = ready_ns
        data_entry.partner_id = counter_entry_id
        data_issue, data_drain = ctrl.drain_write(
            data_queue, "data", line, ready_ns, CACHE_LINE_SIZE
        )
        data_entry.drain_ns = data_drain
        data_entry.slot_release_ns = data_issue
        while data_slots and data_slots[0] <= pair_time:
            heappop(data_slots)
        heappush(data_slots, data_issue)
        if len(data_slots) > data_queue.peak_occupancy:
            data_queue.peak_occupancy = len(data_slots)
        if events._generic:
            EventBus.emit_data_persist(
                events, line, CACHE_LINE_SIZE, False, pair_time, data_drain
            )
        else:
            buffer = events._buffer
            buffer.append((_DATA_PERSIST, CACHE_LINE_SIZE, False, 0.0))
            if len(buffer) >= _FLUSH_EVERY:
                events.flush()

        ctrl.device.persist_line(line, payload, counter)
        ctrl.counter_store.write_counter_line(group_base, counters)
        settled_ns = ctrl.integrity.note_counter_persist(group_base, counters, ready_ns)
        if ctrl.journal.enabled:
            ctrl.journal.record_data(
                entry_id=data_entry_id,
                address=line,
                payload=payload,
                encrypted_with=counter,
                accept_ns=pair_time,
                ready_ns=ready_ns,
                drain_ns=data_drain,
                partner_id=counter_entry_id,
            )
        if events._generic:
            EventBus.emit_pair(
                events, line, settled_ns, settled_ns - request_ns, lag_forced,
                merged is not None,
            )
        else:
            buffer = events._buffer
            buffer.append((_PAIR, settled_ns - request_ns, lag_forced))
            if len(buffer) >= _FLUSH_EVERY:
                events.flush()
        return WriteTicket(
            address=line,
            accept_ns=settled_ns,
            drain_ns=max(data_drain, counter_drain),
            paired=True,
            coalesced=merged is not None,
        )

    # -- counter-line writebacks (evictions / ccwb flushes) ------------------

    def writeback_counter_line(
        self,
        flushed: Tuple[int, Tuple[int, ...]],
        request_ns: float,
    ) -> WriteTicket:
        """Write one counter line (eviction or ccwb flush) to NVM."""
        ctrl = self.ctrl
        group_base, counters = flushed
        counter_line = ctrl.address_map.counter_line_address_of(group_base)
        coalesced = self.counter_queue.try_coalesce(
            counter_line, request_ns, None, 0, counter_values=(group_base, counters)
        )
        if coalesced is not None:
            ctrl.events.emit_counter_persist(
                counter_line, 0, True, False, request_ns, coalesced.drain_ns
            )
            ctrl.counter_store.write_counter_line(group_base, counters)
            settled_ns = ctrl.integrity.note_counter_persist(group_base, counters, request_ns)
            if ctrl.journal.enabled:
                ctrl.journal.amend_counter(
                    coalesced.entry_id, group_base, counters, effective_ns=request_ns
                )
            return WriteTicket(
                address=counter_line,
                accept_ns=settled_ns,
                drain_ns=coalesced.drain_ns,
                paired=False,
                coalesced=True,
            )
        entry = self.counter_queue.accept(
            counter_line,
            request_ns,
            None,
            is_counter=True,
            counter_values=(group_base, counters),
        )
        self.counter_queue.mark_ready(entry, entry.accept_ns)
        counter_bytes = self.counter_payload_bytes(group_base, counters)
        issue, drain = ctrl.drain_write(
            self.counter_queue, "counter", counter_line, entry.accept_ns, counter_bytes
        )
        self.counter_queue.set_drain_time(entry, drain, slot_release_ns=issue)
        ctrl.counter_store.write_counter_line(group_base, counters)
        settled_ns = ctrl.integrity.note_counter_persist(group_base, counters, entry.accept_ns)
        if ctrl.journal.enabled:
            ctrl.journal.record_counter(
                address=counter_line,
                counters=counters,
                group_base=group_base,
                accept_ns=entry.accept_ns,
                ready_ns=entry.ready_ns,
                drain_ns=drain,
                entry_id=entry.entry_id,
            )
        ctrl.events.emit_counter_persist(
            counter_line, counter_bytes, False, False, entry.accept_ns, drain
        )
        return WriteTicket(
            address=counter_line,
            accept_ns=settled_ns,
            drain_ns=drain,
            paired=False,
            coalesced=False,
        )

    # -- helpers -------------------------------------------------------------

    def counter_payload_bytes(self, group_base: int, counters: Tuple[int, ...]) -> int:
        """Bytes a counter writeback moves to NVM.

        Coalesced writebacks move only the modified 8 B slots over the
        64-bit bus; full counter-atomicity overrides this with
        cache-line granularity (the Section 4.1 overhead).
        """
        stored = self.ctrl.counter_store.read_counter_line(group_base)
        changed = sum(1 for old, new in zip(stored, counters) if old != new)
        return 8 * max(1, changed)

    def _pair_counter_line_values(self, line: int, new_counter: int) -> Tuple[int, ...]:
        """Counter-line contents persisted by a pair.

        The written slot carries the new counter; sibling slots carry
        their last *persisted* values (see the module docstring for why
        dirty cached siblings must not ride along).
        """
        ctrl = self.ctrl
        group_base = ctrl.address_map.data_group_base(line)
        own_slot = (line - group_base) // CACHE_LINE_SIZE
        values = list(ctrl.counter_store.read_counter_line(line))
        values[own_slot] = new_counter
        return tuple(values)

    # -- checkpoint state ----------------------------------------------------

    def get_state(self) -> dict:
        return {
            "data_queue": self.data_queue.get_state(),
            "counter_queue": self.counter_queue.get_state(),
        }

    def set_state(self, state: dict) -> None:
        self.data_queue.set_state(state["data_queue"])
        self.counter_queue.set_state(state["counter_queue"])


class FullCounterAtomicity(UnpairedAtomicity):
    """FCA: every write pairs; counter writebacks are full lines."""

    kind = "fca"

    pair_counter_bytes = CACHE_LINE_SIZE

    def write_is_paired(self, counter_atomic: bool) -> bool:
        return True

    def counter_payload_bytes(self, group_base: int, counters: Tuple[int, ...]) -> int:
        return CACHE_LINE_SIZE


class SelectiveCounterAtomicity(UnpairedAtomicity):
    """SCA: only ``CounterAtomic``-annotated writes pair."""

    kind = "sca"

    def write_is_paired(self, counter_atomic: bool) -> bool:
        return counter_atomic


_ATOMICITY_CLASSES = {
    "unpaired": UnpairedAtomicity,
    "fca": FullCounterAtomicity,
    "sca": SelectiveCounterAtomicity,
}


def build_atomicity(
    ctrl: "MemoryController", config: SystemConfig, policy: DesignPolicy
) -> UnpairedAtomicity:
    """Instantiate the atomicity strategy for a design's axis value."""
    return _ATOMICITY_CLASSES[policy.atomicity.kind](ctrl, config, policy)
