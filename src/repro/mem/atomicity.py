"""Counter-atomicity policies: queue selection and ready-bit pairing.

The atomicity layer owns the data and counter write queues and every
path by which a write (data or counter) reaches them:

* :class:`UnpairedAtomicity` — writes are accepted individually and are
  immediately ready (the no-encryption, ideal, unsafe and co-located
  designs; also SCA's non-annotated writes).
* :class:`FullCounterAtomicity` — every data write pairs with its
  covering counter-line write through the ready-bit protocol (paper
  Section 3.2.2 / 5.2.2).
* :class:`SelectiveCounterAtomicity` — only ``CounterAtomic``-annotated
  writes pair; other counters coalesce in the counter cache until
  ``counter_cache_writeback()`` (Section 4).

A note on counter-atomic pairs and sibling counters: a paired write
persists the whole covering counter line.  The seven sibling slots are
taken from the *architectural* counter values (last persisted), not the
counter cache — re-persisting them is idempotent, whereas persisting a
dirty cached sibling could outrun its data line and strand it
undecryptable.  Dirty cached counters persist via
``counter_cache_writeback()`` or eviction, exactly as the paper's
protocol requires.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional, Tuple

from ..config import CACHE_LINE_SIZE, SystemConfig
from ..core.designs import DesignPolicy
from .events import CounterPersistEvent, DataPersistEvent, PairEvent
from .writequeue import WriteQueue

if TYPE_CHECKING:
    from .controller import MemoryController


@dataclass
class WriteTicket:
    """Acceptance of a write-line request.

    ``accept_ns`` is when the write is architecturally persistent under
    ADR (both queue entries accepted and ready, for paired writes);
    sfence/persist_barrier waits on this.  ``drain_ns`` is when the data
    actually reaches the NVM array (diagnostics, crash modeling).
    """

    address: int
    accept_ns: float
    drain_ns: float
    paired: bool
    coalesced: bool


class UnpairedAtomicity:
    """Base discipline: no pairing; every entry is ready on acceptance.

    Also the shared implementation substrate — the paired disciplines
    override :meth:`write_is_paired` (and FCA the counter-writeback
    granularity) but reuse the queue mechanics defined here.
    """

    kind = "unpaired"

    def __init__(self, ctrl: "MemoryController", config: SystemConfig, policy: DesignPolicy) -> None:
        self.ctrl = ctrl
        self.policy = policy
        self.data_queue = WriteQueue(
            "data-wq",
            config.controller.data_write_queue_entries,
            coalesce=config.controller.coalesce_writes,
            entry_ids=ctrl.entry_ids,
        )
        self.counter_queue = WriteQueue(
            "counter-wq",
            config.controller.counter_write_queue_entries,
            coalesce=config.controller.coalesce_writes,
            entry_ids=ctrl.entry_ids,
        )
        self.pair_ready_latency_ns = config.controller.pair_ready_latency_ns
        self._magic = policy.magic_counter_persistence

    # -- pairing discipline --------------------------------------------------

    def write_is_paired(self, counter_atomic: bool) -> bool:
        return False

    def accept_write(
        self,
        line: int,
        payload: Optional[bytes],
        request_ns: float,
        counter: int,
        counter_atomic: bool,
    ) -> WriteTicket:
        """Route one encrypted split-region data write per the discipline.

        Unpaired writes may still be escalated to a counter-atomic pair
        by the integrity layer's Osiris counter-lag bound: an unpaired
        write whose global counter has outrun the persisted counter
        beyond the post-crash search window would be unrecoverable, so
        integrity-verified designs force the pair (all-or-nothing, no
        crash window), keeping every persisted line re-authenticable.
        """
        paired = self.write_is_paired(counter_atomic)
        lag_forced = False
        if not paired and self.ctrl.integrity.should_force_pair(line, counter):
            lag_forced = True
            paired = True
        if paired:
            return self.write_paired(line, payload, request_ns, counter, lag_forced)
        ticket = self.write_unpaired(line, payload, request_ns, encrypted_with=counter)
        if self._magic:
            # Ideal fiction: the architectural counter becomes durable
            # instantly and for free, together with the data.
            ctrl = self.ctrl
            ctrl.counter_store.write(line, counter)
            ctrl.journal.record_counter(
                address=ctrl.address_map.counter_line_address_of(line),
                counters=(counter,),
                group_base=line,
                accept_ns=ticket.accept_ns,
                ready_ns=ticket.accept_ns,
                drain_ns=ticket.accept_ns,
                single_slot=True,
            )
        return ticket

    # -- unpaired data writes ------------------------------------------------

    def write_unpaired(
        self,
        line: int,
        payload: Optional[bytes],
        request_ns: float,
        encrypted_with: int,
    ) -> WriteTicket:
        """Unpaired data write: coalesce or enqueue, drain when banks allow."""
        ctrl = self.ctrl
        coalesced = self.data_queue.try_coalesce(line, request_ns, payload, encrypted_with)
        if coalesced is not None:
            ctrl.device.persist_line(line, payload, encrypted_with)
            ctrl.journal.amend_data(
                coalesced.entry_id, payload, encrypted_with, effective_ns=request_ns
            )
            ctrl.events.emit(
                DataPersistEvent(
                    address=line,
                    payload_bytes=CACHE_LINE_SIZE,
                    coalesced=True,
                    accept_ns=request_ns,
                    drain_ns=coalesced.drain_ns,
                )
            )
            return WriteTicket(
                address=line,
                accept_ns=request_ns,
                drain_ns=coalesced.drain_ns,
                paired=False,
                coalesced=True,
            )
        entry = self.data_queue.accept(
            line, request_ns, payload, is_counter=False, encrypted_with=encrypted_with
        )
        self.data_queue.mark_ready(entry, entry.accept_ns)
        issue, drain = ctrl.drain_write(self.data_queue, "data", line, entry.accept_ns, CACHE_LINE_SIZE)
        self.data_queue.set_drain_time(entry, drain, slot_release_ns=issue)
        ctrl.device.persist_line(line, payload, encrypted_with)
        ctrl.journal.record_data(
            entry_id=entry.entry_id,
            address=line,
            payload=payload,
            encrypted_with=encrypted_with,
            accept_ns=entry.accept_ns,
            ready_ns=entry.ready_ns,
            drain_ns=drain,
        )
        ctrl.events.emit(
            DataPersistEvent(
                address=line,
                payload_bytes=CACHE_LINE_SIZE,
                coalesced=False,
                accept_ns=entry.accept_ns,
                drain_ns=drain,
                accept_wait_ns=entry.accept_ns - request_ns,
            )
        )
        return WriteTicket(
            address=line, accept_ns=entry.accept_ns, drain_ns=drain, paired=False, coalesced=False
        )

    # -- counter-atomic pairs ------------------------------------------------

    def write_paired(
        self,
        line: int,
        payload: Optional[bytes],
        request_ns: float,
        counter: int,
        lag_forced: bool = False,
    ) -> WriteTicket:
        """Counter-atomic write: data + counter entries with ready bits.

        Follows the paper's seven-step walkthrough: both entries are
        inserted, each checks for its partner, and both become ready
        only when both are present.  Neither drains before ready, and
        the ADR drain at a failure takes ready entries only, so the
        pair persists all-or-nothing.

        Counter updates to a counter line that is already queued (and
        still undrained) merge into the queued entry — the merge and
        ready-bit update are a single ADR-protected operation, so the
        amendment takes effect exactly when the new pair becomes ready.
        """
        ctrl = self.ctrl
        group_base = ctrl.address_map.data_group_base(line)
        counter_line = ctrl.address_map.counter_line_address_of(line)
        counters = self._pair_counter_line_values(line, counter)

        # A new pair to a line whose previous pair is still queued
        # merges into it: the merge plus the ready-bit update is one
        # ADR-protected operation, so both the data amendment and the
        # counter amendment take effect exactly when this pair becomes
        # ready, preserving all-or-nothing behaviour.
        candidate_data = self.data_queue.peek_coalesce(
            line, request_ns, allow_counter_atomic=True
        )
        candidate_ctr = self.counter_queue.peek_coalesce(
            counter_line, request_ns, allow_counter_atomic=True
        )
        if (
            candidate_data is not None
            and candidate_data.counter_atomic
            and candidate_ctr is not None
        ):
            self.data_queue.commit_coalesce(candidate_data, payload, counter)
            self.counter_queue.commit_coalesce(
                candidate_ctr, None, 0, counter_values=(group_base, counters)
            )
            ready_ns = request_ns + self.pair_ready_latency_ns
            ctrl.events.emit(
                DataPersistEvent(
                    address=line,
                    payload_bytes=CACHE_LINE_SIZE,
                    coalesced=True,
                    accept_ns=ready_ns,
                    drain_ns=candidate_data.drain_ns,
                )
            )
            ctrl.events.emit(
                CounterPersistEvent(
                    address=counter_line,
                    payload_bytes=0,
                    coalesced=True,
                    paired=True,
                    accept_ns=ready_ns,
                    drain_ns=candidate_ctr.drain_ns,
                )
            )
            ctrl.journal.amend_data(
                candidate_data.entry_id, payload, counter, effective_ns=ready_ns
            )
            ctrl.journal.amend_counter(
                candidate_ctr.entry_id, group_base, counters, effective_ns=ready_ns
            )
            ctrl.device.persist_line(line, payload, counter)
            ctrl.counter_store.write_counter_line(group_base, counters)
            settled_ns = ctrl.integrity.note_counter_persist(group_base, counters, ready_ns)
            ctrl.events.emit(
                PairEvent(
                    address=line,
                    settled_ns=settled_ns,
                    accept_wait_ns=0.0,
                    lag_forced=lag_forced,
                    coalesced=True,
                )
            )
            return WriteTicket(
                address=line,
                accept_ns=settled_ns,
                drain_ns=max(candidate_data.drain_ns, candidate_ctr.drain_ns),
                paired=True,
                coalesced=True,
            )

        data_entry = self.data_queue.accept(
            line,
            request_ns,
            payload,
            is_counter=False,
            encrypted_with=counter,
            counter_atomic=True,
        )
        pair_time = data_entry.accept_ns

        merged = self.counter_queue.try_coalesce(
            counter_line,
            pair_time,
            None,
            0,
            counter_values=(group_base, counters),
            allow_counter_atomic=True,
        )
        if merged is not None:
            ready_ns = max(pair_time, merged.accept_ns) + self.pair_ready_latency_ns
            counter_drain = merged.drain_ns
            counter_entry_id = merged.entry_id
            ctrl.events.emit(
                CounterPersistEvent(
                    address=counter_line,
                    payload_bytes=0,
                    coalesced=True,
                    paired=True,
                    accept_ns=ready_ns,
                    drain_ns=counter_drain,
                )
            )
            ctrl.journal.amend_counter(
                merged.entry_id, group_base, counters, effective_ns=ready_ns
            )
        else:
            counter_entry = self.counter_queue.accept(
                counter_line,
                request_ns,
                None,
                is_counter=True,
                counter_values=(group_base, counters),
                counter_atomic=True,
            )
            ready_ns = (
                max(pair_time, counter_entry.accept_ns) + self.pair_ready_latency_ns
            )
            self.counter_queue.mark_ready(counter_entry, ready_ns)
            counter_entry.partner_id = data_entry.entry_id
            counter_bytes = self.counter_payload_bytes(group_base, counters)
            counter_issue, counter_drain = ctrl.drain_write(
                self.counter_queue, "counter", counter_line, ready_ns, counter_bytes
            )
            self.counter_queue.set_drain_time(
                counter_entry, counter_drain, slot_release_ns=counter_issue
            )
            counter_entry_id = counter_entry.entry_id
            ctrl.events.emit(
                CounterPersistEvent(
                    address=counter_line,
                    payload_bytes=counter_bytes,
                    coalesced=False,
                    paired=True,
                    accept_ns=counter_entry.accept_ns,
                    drain_ns=counter_drain,
                )
            )
            ctrl.journal.record_counter(
                address=counter_line,
                counters=counters,
                group_base=group_base,
                accept_ns=counter_entry.accept_ns,
                ready_ns=ready_ns,
                drain_ns=counter_drain,
                entry_id=counter_entry.entry_id,
            )

        self.data_queue.mark_ready(data_entry, ready_ns)
        data_entry.partner_id = counter_entry_id
        data_issue, data_drain = ctrl.drain_write(
            self.data_queue, "data", line, ready_ns, CACHE_LINE_SIZE
        )
        self.data_queue.set_drain_time(data_entry, data_drain, slot_release_ns=data_issue)
        ctrl.events.emit(
            DataPersistEvent(
                address=line,
                payload_bytes=CACHE_LINE_SIZE,
                coalesced=False,
                accept_ns=data_entry.accept_ns,
                drain_ns=data_drain,
            )
        )

        ctrl.device.persist_line(line, payload, counter)
        ctrl.counter_store.write_counter_line(group_base, counters)
        settled_ns = ctrl.integrity.note_counter_persist(group_base, counters, ready_ns)
        ctrl.journal.record_data(
            entry_id=data_entry.entry_id,
            address=line,
            payload=payload,
            encrypted_with=counter,
            accept_ns=data_entry.accept_ns,
            ready_ns=ready_ns,
            drain_ns=data_drain,
            partner_id=counter_entry_id,
        )
        ctrl.events.emit(
            PairEvent(
                address=line,
                settled_ns=settled_ns,
                accept_wait_ns=settled_ns - request_ns,
                lag_forced=lag_forced,
                coalesced=merged is not None,
            )
        )
        return WriteTicket(
            address=line,
            accept_ns=settled_ns,
            drain_ns=max(data_drain, counter_drain),
            paired=True,
            coalesced=merged is not None,
        )

    # -- counter-line writebacks (evictions / ccwb flushes) ------------------

    def writeback_counter_line(
        self,
        flushed: Tuple[int, Tuple[int, ...]],
        request_ns: float,
    ) -> WriteTicket:
        """Write one counter line (eviction or ccwb flush) to NVM."""
        ctrl = self.ctrl
        group_base, counters = flushed
        counter_line = ctrl.address_map.counter_line_address_of(group_base)
        coalesced = self.counter_queue.try_coalesce(
            counter_line, request_ns, None, 0, counter_values=(group_base, counters)
        )
        if coalesced is not None:
            ctrl.events.emit(
                CounterPersistEvent(
                    address=counter_line,
                    payload_bytes=0,
                    coalesced=True,
                    paired=False,
                    accept_ns=request_ns,
                    drain_ns=coalesced.drain_ns,
                )
            )
            ctrl.counter_store.write_counter_line(group_base, counters)
            settled_ns = ctrl.integrity.note_counter_persist(group_base, counters, request_ns)
            ctrl.journal.amend_counter(
                coalesced.entry_id, group_base, counters, effective_ns=request_ns
            )
            return WriteTicket(
                address=counter_line,
                accept_ns=settled_ns,
                drain_ns=coalesced.drain_ns,
                paired=False,
                coalesced=True,
            )
        entry = self.counter_queue.accept(
            counter_line,
            request_ns,
            None,
            is_counter=True,
            counter_values=(group_base, counters),
        )
        self.counter_queue.mark_ready(entry, entry.accept_ns)
        counter_bytes = self.counter_payload_bytes(group_base, counters)
        issue, drain = ctrl.drain_write(
            self.counter_queue, "counter", counter_line, entry.accept_ns, counter_bytes
        )
        self.counter_queue.set_drain_time(entry, drain, slot_release_ns=issue)
        ctrl.counter_store.write_counter_line(group_base, counters)
        settled_ns = ctrl.integrity.note_counter_persist(group_base, counters, entry.accept_ns)
        ctrl.journal.record_counter(
            address=counter_line,
            counters=counters,
            group_base=group_base,
            accept_ns=entry.accept_ns,
            ready_ns=entry.ready_ns,
            drain_ns=drain,
            entry_id=entry.entry_id,
        )
        ctrl.events.emit(
            CounterPersistEvent(
                address=counter_line,
                payload_bytes=counter_bytes,
                coalesced=False,
                paired=False,
                accept_ns=entry.accept_ns,
                drain_ns=drain,
            )
        )
        return WriteTicket(
            address=counter_line,
            accept_ns=settled_ns,
            drain_ns=drain,
            paired=False,
            coalesced=False,
        )

    # -- helpers -------------------------------------------------------------

    def counter_payload_bytes(self, group_base: int, counters: Tuple[int, ...]) -> int:
        """Bytes a counter writeback moves to NVM.

        Coalesced writebacks move only the modified 8 B slots over the
        64-bit bus; full counter-atomicity overrides this with
        cache-line granularity (the Section 4.1 overhead).
        """
        stored = self.ctrl.counter_store.read_counter_line(group_base)
        changed = sum(1 for old, new in zip(stored, counters) if old != new)
        return 8 * max(1, changed)

    def _pair_counter_line_values(self, line: int, new_counter: int) -> Tuple[int, ...]:
        """Counter-line contents persisted by a pair.

        The written slot carries the new counter; sibling slots carry
        their last *persisted* values (see the module docstring for why
        dirty cached siblings must not ride along).
        """
        ctrl = self.ctrl
        group_base = ctrl.address_map.data_group_base(line)
        own_slot = (line - group_base) // CACHE_LINE_SIZE
        values = list(ctrl.counter_store.read_counter_line(line))
        values[own_slot] = new_counter
        return tuple(values)

    # -- checkpoint state ----------------------------------------------------

    def get_state(self) -> dict:
        return {
            "data_queue": self.data_queue.get_state(),
            "counter_queue": self.counter_queue.get_state(),
        }

    def set_state(self, state: dict) -> None:
        self.data_queue.set_state(state["data_queue"])
        self.counter_queue.set_state(state["counter_queue"])


class FullCounterAtomicity(UnpairedAtomicity):
    """FCA: every write pairs; counter writebacks are full lines."""

    kind = "fca"

    def write_is_paired(self, counter_atomic: bool) -> bool:
        return True

    def counter_payload_bytes(self, group_base: int, counters: Tuple[int, ...]) -> int:
        return CACHE_LINE_SIZE


class SelectiveCounterAtomicity(UnpairedAtomicity):
    """SCA: only ``CounterAtomic``-annotated writes pair."""

    kind = "sca"

    def write_is_paired(self, counter_atomic: bool) -> bool:
        return counter_atomic


_ATOMICITY_CLASSES = {
    "unpaired": UnpairedAtomicity,
    "fca": FullCounterAtomicity,
    "sca": SelectiveCounterAtomicity,
}


def build_atomicity(
    ctrl: "MemoryController", config: SystemConfig, policy: DesignPolicy
) -> UnpairedAtomicity:
    """Instantiate the atomicity strategy for a design's axis value."""
    return _ATOMICITY_CLASSES[policy.atomicity.kind](ctrl, config, policy)
