"""Volatile memory hierarchy and the memory controller.

* :mod:`repro.mem.cache` — set-associative write-back caches (L1, L2),
* :mod:`repro.mem.hierarchy` — the per-core L1 / shared L2 stack,
* :mod:`repro.mem.writequeue` — the data and counter write queues with
  the paper's ready-bit pairing protocol,
* :mod:`repro.mem.controller` — the memory controller (NVM coordinator +
  encryption engine + queues) parameterized by a counter-atomicity
  design policy.
"""

from .cache import Cache, CacheStats, EvictedLine
from .cacheline import CacheLine
from .controller import MemoryController, ReadResult, WriteTicket
from .hierarchy import CacheHierarchy, HierarchyAccess
from .writequeue import WriteQueue, WriteQueueEntry

__all__ = [
    "Cache",
    "CacheStats",
    "EvictedLine",
    "CacheLine",
    "CacheHierarchy",
    "HierarchyAccess",
    "MemoryController",
    "ReadResult",
    "WriteTicket",
    "WriteQueue",
    "WriteQueueEntry",
]
