"""Volatile memory hierarchy and the memory controller.

* :mod:`repro.mem.cache` — set-associative write-back caches (L1, L2),
* :mod:`repro.mem.hierarchy` — the per-core L1 / shared L2 stack,
* :mod:`repro.mem.writequeue` — the data and counter write queues with
  the paper's ready-bit pairing protocol,
* :mod:`repro.mem.controller` — the slim memory controller coordinating
  the composed policy layers over the event bus,
* :mod:`repro.mem.layout` — the encryption layout paths (plain /
  co-located 72 B / split counter region),
* :mod:`repro.mem.atomicity` — the counter-atomicity disciplines
  (unpaired / FCA / SCA ready-bit pairing),
* :mod:`repro.mem.integrity_policy` — the integrity-tree persistence
  modes (none / eager / lazy),
* :mod:`repro.mem.events` — typed memory events, the controller's event
  bus, and the stats / JSONL-trace subscribers.
"""

from .atomicity import (
    FullCounterAtomicity,
    SelectiveCounterAtomicity,
    UnpairedAtomicity,
    WriteTicket,
)
from .cache import Cache, CacheStats, EvictedLine
from .cacheline import CacheLine
from .controller import ControllerStats, MemoryController
from .events import EventBus, JsonlTraceSubscriber, MemoryEvent, StatsSubscriber
from .hierarchy import CacheHierarchy, HierarchyAccess
from .integrity_policy import (
    EagerTreePersistence,
    LazyTreePersistence,
    NoIntegrity,
)
from .layout import ColocatedLayout, PlainLayout, ReadResult, SplitCounterLayout
from .writequeue import WriteQueue, WriteQueueEntry

__all__ = [
    "Cache",
    "CacheStats",
    "EvictedLine",
    "CacheLine",
    "CacheHierarchy",
    "HierarchyAccess",
    "ColocatedLayout",
    "ControllerStats",
    "EagerTreePersistence",
    "EventBus",
    "FullCounterAtomicity",
    "JsonlTraceSubscriber",
    "LazyTreePersistence",
    "MemoryController",
    "MemoryEvent",
    "NoIntegrity",
    "PlainLayout",
    "ReadResult",
    "SelectiveCounterAtomicity",
    "SplitCounterLayout",
    "StatsSubscriber",
    "UnpairedAtomicity",
    "WriteQueue",
    "WriteQueueEntry",
    "WriteTicket",
]
