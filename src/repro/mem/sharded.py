"""N-way sharded memory system with a cross-shard persist barrier.

The scale-out encrypted NVMM of ROADMAP item 2(a): the physical address
space is interleaved across N :class:`MemoryController` instances at
counter-group granularity (:class:`repro.nvm.address.ShardMap`), so each
shard owns complete counter lines, counter-cache entries and BMT
subtrees — no security-metadata structure ever spans controllers.  Every
shard gets its own event bus, data/counter/tree write queues, counter
cache (an iso-hardware slice of the configured capacity) and, on
``+bmt`` designs, a Bonsai subtree keyed by its own secure root.

:class:`ShardedMemorySystem` is a drop-in coordinator presenting the
``MemoryController`` surface to the cache hierarchy, the machine, the
snapshot layer and the crash tooling:

* **Addressing** — data addresses are translated global → shard-local
  on entry; shard-local results are translated back on exit.
* **Ciphertext stays globally addressed** — each shard's OTP cipher is
  wrapped in a :class:`TranslatingCipher` that seeds pads with the
  *global* line address, so crash images (always in the global space)
  decrypt with the stock recovery/verification stack.
* **One logical journal** — ``.journal`` merges the per-shard persist
  journals back into the global address space (entry ids remapped
  injectively, records ordered by acceptance time), so
  :class:`repro.crash.injector.CrashInjector` works unchanged.
* **Cross-shard commits** — the coordinator tracks per-shard
  acceptance watermarks and runs the two-phase
  :class:`repro.txn.manager.CrossShardBarrier` at every transaction
  commit, appending a durable commit record for recovery's prefix
  reconciliation (``docs/sharding.md``).

``config.shards == 1`` never reaches this module: the machine keeps the
singleton :class:`MemoryController` path, bit-identical to the
pre-sharding simulator under the golden-equivalence fixtures.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence, Tuple

from ..config import CACHE_LINE_SIZE, SystemConfig
from ..core.designs import DesignPolicy
from ..crypto.counter_cache import CounterCacheStats
from ..crypto.otp import OTPCipher
from ..errors import ConfigurationError
from ..nvm.address import AddressMap, ShardMap
from ..persist.journal import JournalKind, JournalRecord, PersistJournal, _Amendment
from .atomicity import WriteTicket
from .controller import MemoryController
from .events import ControllerStats
from .layout import ReadResult
from .writequeue import WriteQueue

__all__ = ["ShardedMemorySystem", "TranslatingCipher"]

_LINE_MASK = ~(CACHE_LINE_SIZE - 1)


class TranslatingCipher:
    """OTP cipher proxy that seeds pads with *global* line addresses.

    A shard's controller encrypts at shard-local addresses, but the OTP
    pad is a function of ``(address, counter)`` — if pads were seeded
    locally, a crash image assembled in the global address space would
    not decrypt.  This proxy translates local → global before every pad
    derivation, making all at-rest ciphertext globally addressed while
    the shard's timing model stays oblivious.
    """

    def __init__(self, inner: OTPCipher, shard: int, shard_map: ShardMap) -> None:
        self._inner = inner
        self._shard = shard
        self._map = shard_map

    def _global(self, local_address: int) -> int:
        return self._map.to_global(self._shard, local_address & _LINE_MASK) + (
            local_address & ~_LINE_MASK
        )

    def pad(self, address: int, counter: int) -> bytes:
        return self._inner.pad(self._global(address), counter)

    def encrypt(self, address: int, counter: int, plaintext: bytes) -> bytes:
        return self._inner.encrypt(self._global(address), counter, plaintext)

    def decrypt(self, address: int, counter: int, ciphertext: bytes) -> bytes:
        return self._inner.decrypt(self._global(address), counter, ciphertext)

    def pads_many(self, keys: Sequence[Tuple[int, int]]) -> List[bytes]:
        return self._inner.pads_many(
            [(self._global(address), counter) for address, counter in keys]
        )

    def encrypt_lines(
        self, items: Sequence[Tuple[int, int, bytes]]
    ) -> List[bytes]:
        return self._inner.encrypt_lines(
            [(self._global(address), counter, data) for address, counter, data in items]
        )

    decrypt_lines = encrypt_lines

    @property
    def pad_cache_stats(self) -> Dict[str, int]:
        return self._inner.pad_cache_stats


class _QueueView:
    """Read-only fold of one queue role across every shard."""

    def __init__(self, queues: Sequence[WriteQueue]) -> None:
        self._queues = list(queues)

    @property
    def peak_occupancy(self) -> int:
        return max((q.peak_occupancy for q in self._queues), default=0)

    @property
    def accepted(self) -> int:
        return sum(q.accepted for q in self._queues)

    @property
    def coalesced(self) -> int:
        return sum(q.coalesced for q in self._queues)

    @property
    def total_accept_wait_ns(self) -> float:
        return sum(q.total_accept_wait_ns for q in self._queues)


def _shard_cache_size(size_bytes: int, shards: int, ways: int) -> int:
    """Iso-hardware slice of a cache across shards.

    Divides the configured capacity by the shard count, then rounds the
    set count down to a power of two so the slice still satisfies the
    cache geometry constraints.  The floor is one full set.
    """
    set_bytes = ways * CACHE_LINE_SIZE
    sets = max((size_bytes // shards) // set_bytes, 1)
    sets = 1 << (sets.bit_length() - 1)
    return sets * set_bytes


class ShardedMemorySystem:
    """N memory controllers behind one ``MemoryController`` surface."""

    def __init__(self, config: SystemConfig, policy: DesignPolicy) -> None:
        if config.shards < 2:
            raise ConfigurationError(
                "ShardedMemorySystem requires shards >= 2; the singleton "
                "path must keep the stock MemoryController"
            )
        self.config = config
        self.policy = policy
        self.shards = config.shards
        self.shard_map = ShardMap(
            memory_size_bytes=config.memory_size_bytes,
            shards=config.shards,
            num_banks=config.nvm.num_banks,
        )
        #: The *global* address map — crash images, validators and the
        #: integrity verifier all reason in this space.
        self.address_map = AddressMap(
            memory_size_bytes=config.memory_size_bytes,
            num_banks=config.nvm.num_banks,
        )
        shard_config = dataclasses.replace(
            config,
            shards=1,
            memory_size_bytes=self.shard_map.shard_memory_bytes,
            counter_cache=dataclasses.replace(
                config.counter_cache,
                size_bytes=_shard_cache_size(
                    config.counter_cache.size_bytes,
                    config.shards,
                    config.counter_cache.ways,
                ),
            ),
        )
        self.controllers: List[MemoryController] = []
        for shard in range(config.shards):
            cfg = shard_config
            if shard_config.controller.event_trace_path:
                cfg = dataclasses.replace(
                    shard_config,
                    controller=dataclasses.replace(
                        shard_config.controller,
                        event_trace_path="%s.shard%d"
                        % (shard_config.controller.event_trace_path, shard),
                    ),
                )
            controller = MemoryController(cfg, policy)
            if controller.engine is not None:
                controller.engine.cipher = TranslatingCipher(  # type: ignore[assignment]
                    controller.engine.cipher, shard, self.shard_map
                )
            self.controllers.append(controller)
        #: Per-shard acceptance watermarks (latest queue-acceptance time
        #: each shard handed out) — phase one of the commit barrier.
        self._watermarks: Dict[int, float] = {s: 0.0 for s in range(self.shards)}
        #: Commit records live in their own journal so the merged view
        #: can adopt them without copying write records.
        self._commit_log = PersistJournal()
        if not config.controller.crash_bookkeeping:
            self._commit_log.enabled = False
        # Deferred import: repro.txn pulls in the crash package, which
        # imports the machine — importing it at module scope would close
        # an import cycle through repro.sim.machine.
        from ..txn.manager import CrossShardBarrier

        self._barrier = CrossShardBarrier(self._commit_log, self.shards)
        self._merged_journal: Optional[PersistJournal] = None
        self._merged_key: Tuple[int, ...] = ()
        self._functional = config.functional

    # ------------------------------------------------------------------
    # Address routing
    # ------------------------------------------------------------------

    def _route(self, address: int) -> Tuple[MemoryController, int, int]:
        line = address & _LINE_MASK
        shard, local_line = self.shard_map.to_local(line)
        return self.controllers[shard], shard, local_line + (address - line)

    # ------------------------------------------------------------------
    # The MemoryController surface
    # ------------------------------------------------------------------

    def read_line(self, address: int, request_ns: float) -> ReadResult:
        controller, _shard, local = self._route(address)
        result = controller.read_line(local, request_ns)
        return dataclasses.replace(result, address=address & _LINE_MASK)

    def write_line(
        self,
        address: int,
        payload: Optional[bytes],
        request_ns: float,
        counter_atomic: bool = False,
    ) -> WriteTicket:
        controller, shard, local = self._route(address)
        ticket = controller.write_line(local, payload, request_ns, counter_atomic)
        if ticket.accept_ns > self._watermarks[shard]:
            self._watermarks[shard] = ticket.accept_ns
        return dataclasses.replace(ticket, address=address & _LINE_MASK)

    def counter_cache_writeback(
        self, address: int, request_ns: float
    ) -> Optional[WriteTicket]:
        controller, shard, local = self._route(address)
        ticket = controller.counter_cache_writeback(local, request_ns)
        if ticket is None:
            return None
        if ticket.accept_ns > self._watermarks[shard]:
            self._watermarks[shard] = ticket.accept_ns
        return ticket

    def peek_line(self, line_address: int) -> bytes:
        controller, _shard, local = self._route(line_address)
        return controller.peek_line(local)

    # ------------------------------------------------------------------
    # Cross-shard persist barrier
    # ------------------------------------------------------------------

    def note_txn_commit(self, core: int, now_ns: float) -> None:
        """Two-phase commit barrier hook, called by the machine at TXN_END."""
        self._barrier.commit(core, now_ns, dict(self._watermarks))

    @property
    def commit_log(self) -> PersistJournal:
        return self._commit_log

    # ------------------------------------------------------------------
    # Merged journal (global address space)
    # ------------------------------------------------------------------

    def shard_journal(self, shard: int) -> PersistJournal:
        """Shard ``shard``'s journal, translated to the global space."""
        return self._translate_journal(shard)

    def _translate_id(self, entry_id: int, shard: int) -> int:
        # Injective across shards for both queue-entry ids (>= 0) and
        # journal auto ids (< 0).
        if entry_id >= 0:
            return entry_id * self.shards + shard
        return entry_id * self.shards - shard

    def _translate_record(self, record: JournalRecord, shard: int) -> JournalRecord:
        to_global = self.shard_map.to_global
        if record.kind is JournalKind.DATA:
            address = to_global(shard, record.address)
            group_base = record.group_base
        else:
            group_base = to_global(shard, record.group_base or 0)
            address = self.address_map.counter_line_address_of(group_base)
        amendments = [
            _Amendment(
                effective_ns=a.effective_ns,
                payload=a.payload,
                encrypted_with=a.encrypted_with,
                group_base=(
                    to_global(shard, a.group_base) if a.group_base is not None else None
                ),
                counters=a.counters,
            )
            for a in record.amendments
        ]
        return JournalRecord(
            kind=record.kind,
            entry_id=self._translate_id(record.entry_id, shard),
            address=address,
            accept_ns=record.accept_ns,
            ready_ns=record.ready_ns,
            drain_ns=record.drain_ns,
            payload=record.payload,
            encrypted_with=record.encrypted_with,
            group_base=group_base,
            counters=record.counters,
            single_slot=record.single_slot,
            partner_id=(
                self._translate_id(record.partner_id, shard)
                if record.partner_id is not None
                else None
            ),
            amendments=amendments,
        )

    def _translate_journal(self, shard: int) -> PersistJournal:
        journal = PersistJournal()
        source = self.controllers[shard].journal
        journal.enabled = source.enabled
        journal.records = [
            self._translate_record(record, shard) for record in source.records
        ]
        journal._by_entry_id = {r.entry_id: r for r in journal.records}
        return journal

    @property
    def journal(self) -> PersistJournal:
        """One logical journal over all shards, in the global space.

        Records are merge-ordered by acceptance time (shard id, then
        per-shard order, break ties), matching the singleton journal's
        replay discipline: records touching the same address always come
        from one shard, so cross-shard order only fixes determinism.
        """
        key = tuple(len(c.journal.records) for c in self.controllers) + (
            len(self._commit_log.commits),
        )
        if self._merged_journal is not None and key == self._merged_key:
            return self._merged_journal
        tagged: List[Tuple[float, int, int, JournalRecord]] = []
        for shard in range(self.shards):
            for index, record in enumerate(self.controllers[shard].journal.records):
                tagged.append(
                    (record.accept_ns, shard, index, self._translate_record(record, shard))
                )
        tagged.sort(key=lambda item: (item[0], item[1], item[2]))
        merged = PersistJournal()
        merged.enabled = all(c.journal.enabled for c in self.controllers)
        merged.records = [item[3] for item in tagged]
        merged._by_entry_id = {r.entry_id: r for r in merged.records}
        merged.commits = list(self._commit_log.commits)
        self._merged_journal = merged
        self._merged_key = key
        return merged

    # ------------------------------------------------------------------
    # Folded statistics
    # ------------------------------------------------------------------

    @property
    def stats(self) -> ControllerStats:
        merged = ControllerStats()
        for controller in self.controllers:
            stats = controller.stats  # flushes the shard's event bus
            for field in dataclasses.fields(ControllerStats):
                setattr(
                    merged,
                    field.name,
                    getattr(merged, field.name) + getattr(stats, field.name),
                )
        return merged

    @property
    def data_queue(self) -> _QueueView:
        return _QueueView([c.data_queue for c in self.controllers])

    @property
    def counter_queue(self) -> _QueueView:
        return _QueueView([c.counter_queue for c in self.controllers])

    @property
    def tree_queue(self) -> Optional[_QueueView]:
        queues = [c.tree_queue for c in self.controllers]
        if queues[0] is None:
            return None
        return _QueueView([q for q in queues if q is not None])

    @property
    def counter_cache_stats(self) -> Optional[CounterCacheStats]:
        per_shard = [c.counter_cache_stats for c in self.controllers]
        if per_shard[0] is None:
            return None
        merged = CounterCacheStats()
        for stats in per_shard:
            if stats is None:
                continue
            for field in dataclasses.fields(CounterCacheStats):
                setattr(
                    merged,
                    field.name,
                    getattr(merged, field.name) + getattr(stats, field.name),
                )
        return merged

    def write_traffic_bytes(self) -> int:
        return sum(c.write_traffic_bytes() for c in self.controllers)

    def read_traffic_bytes(self) -> int:
        return sum(c.read_traffic_bytes() for c in self.controllers)

    # ------------------------------------------------------------------
    # Checkpoint state
    # ------------------------------------------------------------------

    def get_state(self) -> dict:
        return {
            "shards": [controller.get_state() for controller in self.controllers],
            "watermarks": dict(self._watermarks),
            "commit_log": self._commit_log.get_state(),
            "barrier": self._barrier.get_state(),
        }

    def set_state(self, state: dict) -> None:
        shard_states = state["shards"]
        if len(shard_states) != len(self.controllers):
            raise ConfigurationError(
                "snapshot has %d shards, system has %d"
                % (len(shard_states), len(self.controllers))
            )
        for controller, shard_state in zip(self.controllers, shard_states):
            controller.set_state(shard_state)
        self._watermarks = {
            int(shard): mark for shard, mark in state["watermarks"].items()
        }
        self._commit_log.set_state(state["commit_log"])
        self._barrier.set_state(state["barrier"])
        self._merged_journal = None
