"""A set-associative write-back, write-allocate cache level.

Used for the private L1s and the shared L2.  The cache is functional
(moves real bytes) when built with ``functional=True`` and tag-only
otherwise; the replacement, dirty and CounterAtomic bookkeeping is
identical in both modes, so timing-only sweeps exercise the same paths.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..config import CACHE_LINE_SIZE, CacheConfig
from ..errors import AddressError
from .cacheline import CacheLine

#: Line addressing as plain mask/shift arithmetic: the hot paths run
#: once per cache access, so the generic ``align_down`` helper call is
#: replaced by constants derived from the (power-of-two) line size.
_LINE_MASK = ~(CACHE_LINE_SIZE - 1)
_LINE_SHIFT = CACHE_LINE_SIZE.bit_length() - 1


@dataclass
class CacheStats:
    """Hit/miss/writeback counters for one cache level."""

    read_hits: int = 0
    read_misses: int = 0
    write_hits: int = 0
    write_misses: int = 0
    evictions: int = 0
    dirty_evictions: int = 0
    writebacks_cleaned: int = 0  # clwb on a dirty line

    @property
    def accesses(self) -> int:
        return self.read_hits + self.read_misses + self.write_hits + self.write_misses

    @property
    def miss_rate(self) -> float:
        if self.accesses == 0:
            return 0.0
        return (self.read_misses + self.write_misses) / self.accesses


@dataclass(slots=True)
class EvictedLine:
    """A victim pushed out of a cache level."""

    address: int
    payload: Optional[bytes]
    dirty: bool
    counter_atomic: bool


class Cache:
    """One cache level with true-LRU replacement."""

    def __init__(self, config: CacheConfig, functional: bool = True, name: str = "cache") -> None:
        self.config = config
        self.functional = functional
        self.name = name
        self.num_sets = config.num_sets
        self.ways = config.ways
        self._set_mask = self.num_sets - 1  # num_sets is a power of two
        self._sets: List[Dict[int, CacheLine]] = [dict() for _ in range(self.num_sets)]
        self._tick = 0
        self.stats = CacheStats()

    # -- addressing ------------------------------------------------------

    def _set_index(self, line_address: int) -> int:
        return (line_address >> _LINE_SHIFT) & self._set_mask

    @staticmethod
    def line_address(address: int) -> int:
        return address & _LINE_MASK

    # -- internals -------------------------------------------------------

    def _lookup(self, line_address: int) -> Optional[CacheLine]:
        return self._sets[(line_address >> _LINE_SHIFT) & self._set_mask].get(line_address)

    def _touch(self, line: CacheLine) -> None:
        self._tick += 1
        line.lru_tick = self._tick

    # -- queries -----------------------------------------------------------

    def contains(self, address: int) -> bool:
        line_address = address & _LINE_MASK
        return (
            self._sets[(line_address >> _LINE_SHIFT) & self._set_mask].get(line_address)
            is not None
        )

    def peek(self, address: int) -> Optional[CacheLine]:
        """Inspect a line without touching LRU or statistics."""
        line_address = address & _LINE_MASK
        return self._sets[(line_address >> _LINE_SHIFT) & self._set_mask].get(line_address)

    # -- read path -----------------------------------------------------------

    def read(self, address: int, length: int) -> Optional[Tuple[Optional[bytes], CacheLine]]:
        """Read ``length`` bytes; returns None on miss.

        On a hit, returns ``(data, line)`` where data is None in
        timing-only mode.
        """
        line_address = address & _LINE_MASK
        line = self._sets[(line_address >> _LINE_SHIFT) & self._set_mask].get(line_address)
        if line is None:
            self.stats.read_misses += 1
            return None
        self.stats.read_hits += 1
        self._tick += 1
        line.lru_tick = self._tick
        data = line.read_bytes(address - line_address, length)
        return (data, line)

    # -- write path ------------------------------------------------------------

    def write(
        self, address: int, data: Optional[bytes], length: int, counter_atomic: bool = False
    ) -> bool:
        """Store into a resident line; returns False on miss.

        ``data`` is None in timing-only mode, in which case ``length``
        still drives the bounds check.
        """
        line_address = address & _LINE_MASK
        line = self._sets[(line_address >> _LINE_SHIFT) & self._set_mask].get(line_address)
        if line is None:
            self.stats.write_misses += 1
            return False
        self.stats.write_hits += 1
        self._tick += 1
        line.lru_tick = self._tick
        if data is not None:
            line.write_bytes(address - line_address, data)
        elif address - line_address + length > CACHE_LINE_SIZE:
            raise AddressError("store spills out of the line")
        line.dirty = True
        if counter_atomic:
            line.counter_atomic = True
        return True

    # -- fills and evictions -------------------------------------------------------

    def fill(
        self,
        address: int,
        payload: Optional[bytes],
        dirty: bool = False,
        counter_atomic: bool = False,
    ) -> Optional[EvictedLine]:
        """Install a line, evicting the LRU way if the set is full.

        Returns the victim only when it was dirty, so the caller can
        propagate its data downward; clean victims are dropped silently
        (the eviction still shows up in the stats) and no-eviction fills
        return None.
        """
        line_address = address & _LINE_MASK
        cache_set = self._sets[(line_address >> _LINE_SHIFT) & self._set_mask]
        existing = cache_set.get(line_address)
        if existing is not None:
            # Refill of a resident line: merge payload, keep metadata.
            if payload is not None and existing.payload is not None:
                existing.payload[:] = payload
            existing.dirty = existing.dirty or dirty
            existing.counter_atomic = existing.counter_atomic or counter_atomic
            self._tick += 1
            existing.lru_tick = self._tick
            return None
        victim: Optional[EvictedLine] = None
        if len(cache_set) >= self.ways:
            # Manual first-minimal scan: same victim as
            # min(cache_set, key=...) but without 'ways' lambda calls.
            values = iter(cache_set.values())
            victim_line = next(values)
            victim_tick = victim_line.lru_tick
            for candidate in values:
                candidate_tick = candidate.lru_tick
                if candidate_tick < victim_tick:
                    victim_line = candidate
                    victim_tick = candidate_tick
            del cache_set[victim_line.tag]
            self.stats.evictions += 1
            if victim_line.dirty:
                self.stats.dirty_evictions += 1
                victim_payload = victim_line.payload
                victim = EvictedLine(
                    address=victim_line.tag,
                    payload=(
                        None if victim_payload is None else bytes(victim_payload)
                    ),
                    dirty=True,
                    counter_atomic=victim_line.counter_atomic,
                )
        self._tick += 1
        stored = (
            bytearray(payload)
            if (self.functional and payload is not None)
            else (bytearray(CACHE_LINE_SIZE) if self.functional else None)
        )
        new_line = CacheLine(line_address, stored, self._tick)
        new_line.dirty = dirty
        new_line.counter_atomic = counter_atomic
        cache_set[line_address] = new_line
        return victim

    def clean_line(self, address: int) -> Optional[EvictedLine]:
        """clwb semantics: emit a writeback for a dirty line, keep it valid.

        Returns the writeback payload (with its CounterAtomic flag) or
        None if the line is absent or clean.  The line's dirty and
        CounterAtomic flags are cleared — the update is now owned by
        the memory controller.
        """
        line_address = address & _LINE_MASK
        line = self._sets[(line_address >> _LINE_SHIFT) & self._set_mask].get(line_address)
        if line is None or not line.dirty:
            return None
        line.dirty = False
        was_ca = line.counter_atomic
        line.counter_atomic = False
        self.stats.writebacks_cleaned += 1
        return EvictedLine(
            address=line_address,
            payload=line.snapshot_payload(),
            dirty=True,
            counter_atomic=was_ca,
        )

    def invalidate_all(self) -> None:
        """Drop all contents (volatile loss at power failure)."""
        for cache_set in self._sets:
            cache_set.clear()

    def dirty_lines(self) -> List[EvictedLine]:
        """All dirty lines, for flush-all style operations."""
        result: List[EvictedLine] = []
        for cache_set in self._sets:
            for line in cache_set.values():
                if line.dirty:
                    result.append(
                        EvictedLine(
                            address=line.tag,
                            payload=line.snapshot_payload(),
                            dirty=True,
                            counter_atomic=line.counter_atomic,
                        )
                    )
        result.sort(key=lambda e: e.address)
        return result

    def occupancy(self) -> int:
        return sum(len(s) for s in self._sets)

    # -- checkpoint state -------------------------------------------------------

    def get_state(self) -> Dict[str, object]:
        """Plain-container snapshot of all mutable state.

        Lines are emitted in set-dict insertion order: LRU eviction
        breaks ties by iteration order, so restoring in the same order
        is part of the bit-identical resume contract.
        """
        return {
            "tick": self._tick,
            "stats": dataclasses.asdict(self.stats),
            "sets": [
                [
                    (
                        line.tag,
                        None if line.payload is None else bytes(line.payload),
                        line.dirty,
                        line.counter_atomic,
                        line.lru_tick,
                    )
                    for line in cache_set.values()
                ]
                for cache_set in self._sets
            ],
        }

    def set_state(self, state: Dict[str, object]) -> None:
        """Inverse of :meth:`get_state` (geometry must match)."""
        self._tick = state["tick"]
        self.stats = CacheStats(**state["stats"])
        sets: List[Dict[int, CacheLine]] = []
        for stored_set in state["sets"]:
            cache_set: Dict[int, CacheLine] = {}
            for tag, payload, dirty, counter_atomic, lru_tick in stored_set:
                line = CacheLine(
                    tag,
                    None if payload is None else bytearray(payload),
                    lru_tick,
                )
                line.dirty = dirty
                line.counter_atomic = counter_atomic
                cache_set[tag] = line
            sets.append(cache_set)
        self._sets = sets
