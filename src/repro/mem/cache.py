"""A set-associative write-back, write-allocate cache level.

Used for the private L1s and the shared L2.  The cache is functional
(moves real bytes) when built with ``functional=True`` and tag-only
otherwise; the replacement, dirty and CounterAtomic bookkeeping is
identical in both modes, so timing-only sweeps exercise the same paths.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..config import CACHE_LINE_SIZE, CacheConfig
from ..errors import AddressError
from ..utils.bitops import align_down
from .cacheline import CacheLine


@dataclass
class CacheStats:
    """Hit/miss/writeback counters for one cache level."""

    read_hits: int = 0
    read_misses: int = 0
    write_hits: int = 0
    write_misses: int = 0
    evictions: int = 0
    dirty_evictions: int = 0
    writebacks_cleaned: int = 0  # clwb on a dirty line

    @property
    def accesses(self) -> int:
        return self.read_hits + self.read_misses + self.write_hits + self.write_misses

    @property
    def miss_rate(self) -> float:
        if self.accesses == 0:
            return 0.0
        return (self.read_misses + self.write_misses) / self.accesses


@dataclass
class EvictedLine:
    """A victim pushed out of a cache level."""

    address: int
    payload: Optional[bytes]
    dirty: bool
    counter_atomic: bool


class Cache:
    """One cache level with true-LRU replacement."""

    def __init__(self, config: CacheConfig, functional: bool = True, name: str = "cache") -> None:
        self.config = config
        self.functional = functional
        self.name = name
        self.num_sets = config.num_sets
        self.ways = config.ways
        self._sets: List[Dict[int, CacheLine]] = [dict() for _ in range(self.num_sets)]
        self._tick = 0
        self.stats = CacheStats()

    # -- addressing ------------------------------------------------------

    def _set_index(self, line_address: int) -> int:
        return (line_address // CACHE_LINE_SIZE) % self.num_sets

    @staticmethod
    def line_address(address: int) -> int:
        return align_down(address, CACHE_LINE_SIZE)

    # -- internals -------------------------------------------------------

    def _lookup(self, line_address: int) -> Optional[CacheLine]:
        return self._sets[self._set_index(line_address)].get(line_address)

    def _touch(self, line: CacheLine) -> None:
        self._tick += 1
        line.lru_tick = self._tick

    # -- queries -----------------------------------------------------------

    def contains(self, address: int) -> bool:
        return self._lookup(self.line_address(address)) is not None

    def peek(self, address: int) -> Optional[CacheLine]:
        """Inspect a line without touching LRU or statistics."""
        return self._lookup(self.line_address(address))

    # -- read path -----------------------------------------------------------

    def read(self, address: int, length: int) -> Optional[Tuple[Optional[bytes], CacheLine]]:
        """Read ``length`` bytes; returns None on miss.

        On a hit, returns ``(data, line)`` where data is None in
        timing-only mode.
        """
        line_address = self.line_address(address)
        line = self._lookup(line_address)
        if line is None:
            self.stats.read_misses += 1
            return None
        self.stats.read_hits += 1
        self._touch(line)
        data = line.read_bytes(address - line_address, length)
        return (data, line)

    # -- write path ------------------------------------------------------------

    def write(
        self, address: int, data: Optional[bytes], length: int, counter_atomic: bool = False
    ) -> bool:
        """Store into a resident line; returns False on miss.

        ``data`` is None in timing-only mode, in which case ``length``
        still drives the bounds check.
        """
        line_address = self.line_address(address)
        line = self._lookup(line_address)
        if line is None:
            self.stats.write_misses += 1
            return False
        self.stats.write_hits += 1
        self._touch(line)
        if data is not None:
            line.write_bytes(address - line_address, data)
        elif address - line_address + length > CACHE_LINE_SIZE:
            raise AddressError("store spills out of the line")
        line.dirty = True
        if counter_atomic:
            line.counter_atomic = True
        return True

    # -- fills and evictions -------------------------------------------------------

    def fill(
        self,
        address: int,
        payload: Optional[bytes],
        dirty: bool = False,
        counter_atomic: bool = False,
    ) -> Optional[EvictedLine]:
        """Install a line, evicting the LRU way if the set is full.

        Returns the victim (clean or dirty) so the caller can propagate
        dirty data downward; returns None when no eviction happened.
        """
        line_address = self.line_address(address)
        cache_set = self._sets[self._set_index(line_address)]
        existing = cache_set.get(line_address)
        if existing is not None:
            # Refill of a resident line: merge payload, keep metadata.
            if payload is not None and existing.payload is not None:
                existing.payload[:] = payload
            existing.dirty = existing.dirty or dirty
            existing.counter_atomic = existing.counter_atomic or counter_atomic
            self._touch(existing)
            return None
        victim: Optional[EvictedLine] = None
        if len(cache_set) >= self.ways:
            victim_address = min(cache_set, key=lambda a: cache_set[a].lru_tick)
            victim_line = cache_set.pop(victim_address)
            self.stats.evictions += 1
            if victim_line.dirty:
                self.stats.dirty_evictions += 1
            victim = EvictedLine(
                address=victim_address,
                payload=victim_line.snapshot_payload(),
                dirty=victim_line.dirty,
                counter_atomic=victim_line.counter_atomic,
            )
        self._tick += 1
        stored = (
            bytearray(payload)
            if (self.functional and payload is not None)
            else (bytearray(CACHE_LINE_SIZE) if self.functional else None)
        )
        new_line = CacheLine(line_address, stored, self._tick)
        new_line.dirty = dirty
        new_line.counter_atomic = counter_atomic
        cache_set[line_address] = new_line
        return victim

    def clean_line(self, address: int) -> Optional[EvictedLine]:
        """clwb semantics: emit a writeback for a dirty line, keep it valid.

        Returns the writeback payload (with its CounterAtomic flag) or
        None if the line is absent or clean.  The line's dirty and
        CounterAtomic flags are cleared — the update is now owned by
        the memory controller.
        """
        line_address = self.line_address(address)
        line = self._lookup(line_address)
        if line is None or not line.dirty:
            return None
        line.dirty = False
        was_ca = line.counter_atomic
        line.counter_atomic = False
        self.stats.writebacks_cleaned += 1
        return EvictedLine(
            address=line_address,
            payload=line.snapshot_payload(),
            dirty=True,
            counter_atomic=was_ca,
        )

    def invalidate_all(self) -> None:
        """Drop all contents (volatile loss at power failure)."""
        for cache_set in self._sets:
            cache_set.clear()

    def dirty_lines(self) -> List[EvictedLine]:
        """All dirty lines, for flush-all style operations."""
        result: List[EvictedLine] = []
        for cache_set in self._sets:
            for line in cache_set.values():
                if line.dirty:
                    result.append(
                        EvictedLine(
                            address=line.tag,
                            payload=line.snapshot_payload(),
                            dirty=True,
                            counter_atomic=line.counter_atomic,
                        )
                    )
        result.sort(key=lambda e: e.address)
        return result

    def occupancy(self) -> int:
        return sum(len(s) for s in self._sets)

    # -- checkpoint state -------------------------------------------------------

    def get_state(self) -> Dict[str, object]:
        """Plain-container snapshot of all mutable state.

        Lines are emitted in set-dict insertion order: LRU eviction
        breaks ties by iteration order, so restoring in the same order
        is part of the bit-identical resume contract.
        """
        return {
            "tick": self._tick,
            "stats": dataclasses.asdict(self.stats),
            "sets": [
                [
                    (
                        line.tag,
                        None if line.payload is None else bytes(line.payload),
                        line.dirty,
                        line.counter_atomic,
                        line.lru_tick,
                    )
                    for line in cache_set.values()
                ]
                for cache_set in self._sets
            ],
        }

    def set_state(self, state: Dict[str, object]) -> None:
        """Inverse of :meth:`get_state` (geometry must match)."""
        self._tick = state["tick"]
        self.stats = CacheStats(**state["stats"])
        sets: List[Dict[int, CacheLine]] = []
        for stored_set in state["sets"]:
            cache_set: Dict[int, CacheLine] = {}
            for tag, payload, dirty, counter_atomic, lru_tick in stored_set:
                line = CacheLine(
                    tag,
                    None if payload is None else bytearray(payload),
                    lru_tick,
                )
                line.dirty = dirty
                line.counter_atomic = counter_atomic
                cache_set[tag] = line
            sets.append(cache_set)
        self._sets = sets
