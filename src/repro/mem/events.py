"""Typed memory events, the controller's event bus, and its subscribers.

The decomposed controller (see :mod:`repro.mem.controller`) does not
increment statistics inline.  Instead, every observable action on the
write/read path — a read completing, a data line persisting, a
counter-atomic pair committing, a tree node draining — is emitted as a
typed :class:`MemoryEvent` on a synchronous :class:`EventBus`, and
:class:`ControllerStats` is *derived* by :class:`StatsSubscriber` from
the event stream.  An optional :class:`JsonlTraceSubscriber` appends
every event as a JSON line, giving campaigns and perf debugging an
observability hook without touching the simulation paths.

Bus contract (also documented in ``docs/architecture.md``):

* Dispatch is synchronous and in emission order; subscribers must not
  emit events themselves or mutate simulation state.
* Events are frozen dataclasses; timestamps are absolute simulated
  nanoseconds (the controller's timing contract).
* Float-valued statistics (read latency, accept waits) are accumulated
  in emission order, which the controller keeps identical to the
  pre-decomposition increment order so long-run sums stay bit-identical.
* Subscribers are *not* checkpointed: :class:`StatsSubscriber` state is
  captured via ``ControllerStats`` in the controller snapshot, and a
  JSONL trace is diagnostic output that restored runs re-append to.
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass
from typing import Callable, ClassVar, List, Optional

from ..config import CACHE_LINE_SIZE


@dataclass(frozen=True)
class MemoryEvent:
    """Base class for everything emitted on the controller's bus."""

    kind: ClassVar[str] = ""


@dataclass(frozen=True)
class ReadEvent(MemoryEvent):
    """One ``read_line`` completed (decryption overlap already applied)."""

    kind: ClassVar[str] = "read"
    address: int
    request_ns: float
    complete_ns: float
    payload_bytes: int
    counter_cache_hit: bool


@dataclass(frozen=True)
class CounterFetchEvent(MemoryEvent):
    """A covering counter line was read from the NVM counter region."""

    kind: ClassVar[str] = "counter-fetch"
    address: int
    request_ns: float
    payload_bytes: int


@dataclass(frozen=True)
class WriteRequestEvent(MemoryEvent):
    """One ``write_line`` entered the controller (before routing)."""

    kind: ClassVar[str] = "write-request"
    address: int
    request_ns: float
    counter_atomic: bool


@dataclass(frozen=True)
class DataPersistEvent(MemoryEvent):
    """A data-line write was accepted (or coalesced into a queued one).

    ``accept_wait_ns`` is the stall between the request and queue
    acceptance charged to this write; paired writes charge their wait on
    the :class:`PairEvent` instead and carry ``0.0`` here.
    """

    kind: ClassVar[str] = "data-persist"
    address: int
    payload_bytes: int
    coalesced: bool
    accept_ns: float
    drain_ns: float
    accept_wait_ns: float = 0.0


@dataclass(frozen=True)
class CounterPersistEvent(MemoryEvent):
    """A counter-line write reached the counter write queue.

    Only split-counter-region persists emit this; co-located designs
    carry the counter inside their 72 B data access and the ideal
    design's magic counters never generate traffic.
    """

    kind: ClassVar[str] = "counter-persist"
    address: int
    payload_bytes: int
    coalesced: bool
    paired: bool
    accept_ns: float
    drain_ns: float


@dataclass(frozen=True)
class PairEvent(MemoryEvent):
    """A counter-atomic pair committed (paper Section 5.2.2).

    ``lag_forced`` marks pairs escalated by the Osiris counter-lag
    bound rather than requested by the design's pairing discipline.
    """

    kind: ClassVar[str] = "pair"
    address: int
    settled_ns: float
    accept_wait_ns: float
    lag_forced: bool
    coalesced: bool


@dataclass(frozen=True)
class CcwbEvent(MemoryEvent):
    """``counter_cache_writeback()`` was invoked (flushing or not)."""

    kind: ClassVar[str] = "ccwb"
    address: int
    request_ns: float


@dataclass(frozen=True)
class CcwbFlushEvent(MemoryEvent):
    """A ccwb call found its covering counter line dirty and flushed it."""

    kind: ClassVar[str] = "ccwb-flush"
    address: int
    request_ns: float


@dataclass(frozen=True)
class CcwbTreeFlushEvent(MemoryEvent):
    """A lazy-mode ccwb drained the coalesced dirty tree nodes."""

    kind: ClassVar[str] = "ccwb-tree-flush"
    request_ns: float
    nodes: int


@dataclass(frozen=True)
class TreeNodeEvent(MemoryEvent):
    """One integrity-tree node digest was sent to (or merged in) NVM."""

    kind: ClassVar[str] = "tree-node"
    address: int
    coalesced: bool
    drain_ns: float


@dataclass(frozen=True)
class TreeVerifyEvent(MemoryEvent):
    """A fetched counter line authenticated against the tree."""

    kind: ClassVar[str] = "tree-verify"
    group_base: int
    request_ns: float


@dataclass(frozen=True)
class TreeFillEvent(MemoryEvent):
    """An uncached tree node was read from NVM during verification."""

    kind: ClassVar[str] = "tree-fill"
    address: int
    payload_bytes: int


@dataclass(frozen=True)
class RootUpdateEvent(MemoryEvent):
    """The on-chip secure root advanced over a persisted counter line."""

    kind: ClassVar[str] = "root-update"
    group_base: int
    effective_ns: float


@dataclass(frozen=True)
class DrainEvent(MemoryEvent):
    """One write-queue entry drained to its bank (pure observability)."""

    kind: ClassVar[str] = "drain"
    role: str
    address: int
    issue_ns: float
    complete_ns: float


#: A bus subscriber: called once per event, in emission order.
Subscriber = Callable[[MemoryEvent], None]

#: Integer codes of the vector-emit records buffered by
#: :class:`BatchingEventBus`.  Each buffered record is a plain tuple
#: ``(code, <stats fields>)`` carrying only what the stats fold needs.
_READ = 0
_DATA_PERSIST = 1
_COUNTER_PERSIST = 2
_PAIR = 3
_WRITE_REQUEST = 4
_COUNTER_FETCH = 5
_CCWB = 6
_CCWB_FLUSH = 7
_CCWB_TREE_FLUSH = 8
_TREE_NODE = 9
_TREE_VERIFY = 10
_TREE_FILL = 11
_ROOT_UPDATE = 12

#: Field-free records are shared constants so the hot path allocates
#: nothing for them.
_WRITE_REQUEST_RECORD = (_WRITE_REQUEST,)
_CCWB_RECORD = (_CCWB,)
_CCWB_FLUSH_RECORD = (_CCWB_FLUSH,)
_TREE_VERIFY_RECORD = (_TREE_VERIFY,)
_ROOT_UPDATE_RECORD = (_ROOT_UPDATE,)

#: Buffered records folded per flush (amortizes the Python-call and
#: attribute-store cost over the batch).
_FLUSH_EVERY = 512


class EventBus:
    """Synchronous fan-out of :class:`MemoryEvent` to subscribers.

    Dispatch happens inline on the emitting call — subscribers see
    events in exactly the order the simulation produced them, which is
    what lets :class:`StatsSubscriber` reproduce the legacy inline
    float-accumulation order bit for bit.

    The ``emit_<kind>`` methods are the vector-emit surface shared with
    :class:`BatchingEventBus`: on this bus they simply materialize the
    dataclass and dispatch it, so emitters can be written once against
    the batched API and stay correct on either bus.
    """

    def __init__(self) -> None:
        self._subscribers: List[Subscriber] = []

    def subscribe(self, subscriber: Subscriber) -> None:
        self._subscribers.append(subscriber)

    def emit(self, event: MemoryEvent) -> None:
        for subscriber in self._subscribers:
            subscriber(event)

    def flush(self) -> None:
        """Drain any buffered records (no-op on the synchronous bus)."""

    # -- vector-emit surface (materializing fallbacks) -------------------

    def emit_read(self, address, request_ns, complete_ns, payload_bytes, counter_cache_hit) -> None:
        self.emit(
            ReadEvent(
                address=address,
                request_ns=request_ns,
                complete_ns=complete_ns,
                payload_bytes=payload_bytes,
                counter_cache_hit=counter_cache_hit,
            )
        )

    def emit_counter_fetch(self, address, request_ns, payload_bytes) -> None:
        self.emit(
            CounterFetchEvent(
                address=address, request_ns=request_ns, payload_bytes=payload_bytes
            )
        )

    def emit_write_request(self, address, request_ns, counter_atomic) -> None:
        self.emit(
            WriteRequestEvent(
                address=address, request_ns=request_ns, counter_atomic=counter_atomic
            )
        )

    def emit_data_persist(
        self, address, payload_bytes, coalesced, accept_ns, drain_ns, accept_wait_ns=0.0
    ) -> None:
        self.emit(
            DataPersistEvent(
                address=address,
                payload_bytes=payload_bytes,
                coalesced=coalesced,
                accept_ns=accept_ns,
                drain_ns=drain_ns,
                accept_wait_ns=accept_wait_ns,
            )
        )

    def emit_counter_persist(
        self, address, payload_bytes, coalesced, paired, accept_ns, drain_ns
    ) -> None:
        self.emit(
            CounterPersistEvent(
                address=address,
                payload_bytes=payload_bytes,
                coalesced=coalesced,
                paired=paired,
                accept_ns=accept_ns,
                drain_ns=drain_ns,
            )
        )

    def emit_pair(self, address, settled_ns, accept_wait_ns, lag_forced, coalesced) -> None:
        self.emit(
            PairEvent(
                address=address,
                settled_ns=settled_ns,
                accept_wait_ns=accept_wait_ns,
                lag_forced=lag_forced,
                coalesced=coalesced,
            )
        )

    def emit_ccwb(self, address, request_ns) -> None:
        self.emit(CcwbEvent(address=address, request_ns=request_ns))

    def emit_ccwb_flush(self, address, request_ns) -> None:
        self.emit(CcwbFlushEvent(address=address, request_ns=request_ns))

    def emit_ccwb_tree_flush(self, request_ns, nodes) -> None:
        self.emit(CcwbTreeFlushEvent(request_ns=request_ns, nodes=nodes))

    def emit_tree_node(self, address, coalesced, drain_ns) -> None:
        self.emit(TreeNodeEvent(address=address, coalesced=coalesced, drain_ns=drain_ns))

    def emit_tree_verify(self, group_base, request_ns) -> None:
        self.emit(TreeVerifyEvent(group_base=group_base, request_ns=request_ns))

    def emit_tree_fill(self, address, payload_bytes) -> None:
        self.emit(TreeFillEvent(address=address, payload_bytes=payload_bytes))

    def emit_root_update(self, group_base, effective_ns) -> None:
        self.emit(RootUpdateEvent(group_base=group_base, effective_ns=effective_ns))

    def emit_drain(self, role, address, issue_ns, complete_ns) -> None:
        self.emit(
            DrainEvent(
                role=role, address=address, issue_ns=issue_ns, complete_ns=complete_ns
            )
        )


@dataclass
class ControllerStats:
    """Aggregate controller statistics for one simulation.

    Derived from the event stream by :class:`StatsSubscriber`; nothing
    in the simulation paths increments these fields directly.
    """

    reads: int = 0
    data_writes: int = 0
    counter_writes: int = 0
    paired_writes: int = 0
    coalesced_data_writes: int = 0
    coalesced_counter_writes: int = 0
    ccwb_calls: int = 0
    ccwb_lines_flushed: int = 0
    bytes_read: int = 0
    bytes_written: int = 0
    counter_fill_reads: int = 0
    total_read_latency_ns: float = 0.0
    total_write_accept_wait_ns: float = 0.0
    # Bonsai-tree designs only (all zero otherwise).
    tree_node_writes: int = 0
    coalesced_tree_writes: int = 0
    tree_verifications: int = 0
    tree_node_fills: int = 0
    root_updates: int = 0
    ccwb_tree_flushes: int = 0
    lag_forced_pairs: int = 0

    @property
    def mean_read_latency_ns(self) -> float:
        return self.total_read_latency_ns / self.reads if self.reads else 0.0


class StatsSubscriber:
    """Folds the event stream into a :class:`ControllerStats`.

    The mapping is one event kind to a fixed set of increments; the
    float accumulators pick up contributions in emission order.
    """

    def __init__(self, stats: Optional[ControllerStats] = None) -> None:
        self.stats = stats if stats is not None else ControllerStats()

    def __call__(self, event: MemoryEvent) -> None:
        stats = self.stats
        if isinstance(event, ReadEvent):
            stats.reads += 1
            stats.bytes_read += event.payload_bytes
            stats.total_read_latency_ns += event.complete_ns - event.request_ns
        elif isinstance(event, DataPersistEvent):
            if event.coalesced:
                stats.coalesced_data_writes += 1
            else:
                stats.bytes_written += event.payload_bytes
            stats.total_write_accept_wait_ns += event.accept_wait_ns
        elif isinstance(event, CounterPersistEvent):
            if event.coalesced:
                stats.coalesced_counter_writes += 1
            else:
                stats.counter_writes += 1
                stats.bytes_written += event.payload_bytes
        elif isinstance(event, PairEvent):
            stats.paired_writes += 1
            stats.total_write_accept_wait_ns += event.accept_wait_ns
            if event.lag_forced:
                stats.lag_forced_pairs += 1
        elif isinstance(event, WriteRequestEvent):
            stats.data_writes += 1
        elif isinstance(event, CounterFetchEvent):
            stats.counter_fill_reads += 1
            stats.bytes_read += event.payload_bytes
        elif isinstance(event, CcwbEvent):
            stats.ccwb_calls += 1
        elif isinstance(event, CcwbFlushEvent):
            stats.ccwb_lines_flushed += 1
        elif isinstance(event, CcwbTreeFlushEvent):
            stats.ccwb_tree_flushes += event.nodes
        elif isinstance(event, TreeNodeEvent):
            if event.coalesced:
                stats.coalesced_tree_writes += 1
            else:
                stats.tree_node_writes += 1
                stats.bytes_written += CACHE_LINE_SIZE
        elif isinstance(event, TreeVerifyEvent):
            stats.tree_verifications += 1
        elif isinstance(event, TreeFillEvent):
            stats.tree_node_fills += 1
            stats.bytes_read += event.payload_bytes
        elif isinstance(event, RootUpdateEvent):
            stats.root_updates += 1
        # DrainEvent carries no statistics — trace-only.

    def fold_vector(self, records: List[tuple]) -> None:
        """Fold a batch of vector-emit records into the stats.

        The per-kind increments are exactly those of :meth:`__call__`,
        applied in buffer (= emission) order; each accumulator is kept
        in a local for the duration of the batch and written back once,
        which is where the batched bus's speedup comes from.  Because
        every accumulator picks up its contributions in the same order
        as the synchronous dispatch, float sums stay bit-identical.
        """
        stats = self.stats
        reads = stats.reads
        data_writes = stats.data_writes
        counter_writes = stats.counter_writes
        paired_writes = stats.paired_writes
        coalesced_data = stats.coalesced_data_writes
        coalesced_counter = stats.coalesced_counter_writes
        ccwb_calls = stats.ccwb_calls
        ccwb_lines = stats.ccwb_lines_flushed
        bytes_read = stats.bytes_read
        bytes_written = stats.bytes_written
        counter_fills = stats.counter_fill_reads
        read_latency = stats.total_read_latency_ns
        accept_wait = stats.total_write_accept_wait_ns
        tree_nodes = stats.tree_node_writes
        coalesced_tree = stats.coalesced_tree_writes
        tree_verifies = stats.tree_verifications
        tree_fills = stats.tree_node_fills
        root_updates = stats.root_updates
        tree_flushes = stats.ccwb_tree_flushes
        lag_forced = stats.lag_forced_pairs
        for record in records:
            code = record[0]
            if code == _READ:
                # (code, request_ns, complete_ns, payload_bytes)
                reads += 1
                bytes_read += record[3]
                read_latency += record[2] - record[1]
            elif code == _DATA_PERSIST:
                # (code, payload_bytes, coalesced, accept_wait_ns)
                if record[2]:
                    coalesced_data += 1
                else:
                    bytes_written += record[1]
                accept_wait += record[3]
            elif code == _WRITE_REQUEST:
                data_writes += 1
            elif code == _COUNTER_PERSIST:
                # (code, payload_bytes, coalesced)
                if record[2]:
                    coalesced_counter += 1
                else:
                    counter_writes += 1
                    bytes_written += record[1]
            elif code == _PAIR:
                # (code, accept_wait_ns, lag_forced)
                paired_writes += 1
                accept_wait += record[1]
                if record[2]:
                    lag_forced += 1
            elif code == _CCWB:
                ccwb_calls += 1
            elif code == _CCWB_FLUSH:
                ccwb_lines += 1
            elif code == _COUNTER_FETCH:
                # (code, payload_bytes)
                counter_fills += 1
                bytes_read += record[1]
            elif code == _TREE_NODE:
                # (code, coalesced)
                if record[1]:
                    coalesced_tree += 1
                else:
                    tree_nodes += 1
                    bytes_written += CACHE_LINE_SIZE
            elif code == _TREE_VERIFY:
                tree_verifies += 1
            elif code == _TREE_FILL:
                # (code, payload_bytes)
                tree_fills += 1
                bytes_read += record[1]
            elif code == _ROOT_UPDATE:
                root_updates += 1
            elif code == _CCWB_TREE_FLUSH:
                # (code, nodes)
                tree_flushes += record[1]
        stats.reads = reads
        stats.data_writes = data_writes
        stats.counter_writes = counter_writes
        stats.paired_writes = paired_writes
        stats.coalesced_data_writes = coalesced_data
        stats.coalesced_counter_writes = coalesced_counter
        stats.ccwb_calls = ccwb_calls
        stats.ccwb_lines_flushed = ccwb_lines
        stats.bytes_read = bytes_read
        stats.bytes_written = bytes_written
        stats.counter_fill_reads = counter_fills
        stats.total_read_latency_ns = read_latency
        stats.total_write_accept_wait_ns = accept_wait
        stats.tree_node_writes = tree_nodes
        stats.coalesced_tree_writes = coalesced_tree
        stats.tree_verifications = tree_verifies
        stats.tree_node_fills = tree_fills
        stats.root_updates = root_updates
        stats.ccwb_tree_flushes = tree_flushes
        stats.lag_forced_pairs = lag_forced


class BatchingEventBus(EventBus):
    """Amortized event dispatch: stats fold over buffered record vectors.

    When only :class:`StatsSubscriber`\\ s are attached (the common
    case — every simulation), each ``emit_<kind>`` call appends one
    compact tuple to a buffer instead of allocating a frozen dataclass
    and walking the subscriber list; the buffer is folded in batches by
    :meth:`StatsSubscriber.fold_vector`.  Buffer order is emission
    order and the fold applies the exact per-kind increments of the
    synchronous dispatch, so derived statistics — including the
    order-sensitive float accumulators — are bit-identical.

    As soon as a generic subscriber (e.g. the JSONL tracer) is
    attached, every ``emit_<kind>`` materializes its event and
    dispatches synchronously — generic subscribers see the full stream
    in order, exactly as on the plain :class:`EventBus`.  Drain events
    carry no statistics, so with no generic subscriber attached they
    are skipped entirely.

    ``flush()`` is called by the controller whenever derived stats are
    read (the ``stats`` property, checkpoints), keeping the buffer
    invisible to every observer.
    """

    def __init__(self) -> None:
        super().__init__()
        self._stats: List[StatsSubscriber] = []
        self._generic: List[Subscriber] = []
        self._buffer: List[tuple] = []

    def subscribe(self, subscriber: Subscriber) -> None:
        self.flush()
        self._subscribers.append(subscriber)
        if isinstance(subscriber, StatsSubscriber):
            self._stats.append(subscriber)
        else:
            self._generic.append(subscriber)

    def emit(self, event: MemoryEvent) -> None:
        """Generic emit: flush the buffer first to preserve order."""
        if self._buffer:
            self.flush()
        for subscriber in self._subscribers:
            subscriber(event)

    def flush(self) -> None:
        buffer = self._buffer
        if buffer:
            self._buffer = []
            for subscriber in self._stats:
                subscriber.fold_vector(buffer)

    # -- vector-emit fast paths ------------------------------------------

    def emit_read(self, address, request_ns, complete_ns, payload_bytes, counter_cache_hit) -> None:
        if self._generic:
            EventBus.emit_read(
                self, address, request_ns, complete_ns, payload_bytes, counter_cache_hit
            )
            return
        buffer = self._buffer
        buffer.append((_READ, request_ns, complete_ns, payload_bytes))
        if len(buffer) >= _FLUSH_EVERY:
            self.flush()

    def emit_counter_fetch(self, address, request_ns, payload_bytes) -> None:
        if self._generic:
            EventBus.emit_counter_fetch(self, address, request_ns, payload_bytes)
            return
        buffer = self._buffer
        buffer.append((_COUNTER_FETCH, payload_bytes))
        if len(buffer) >= _FLUSH_EVERY:
            self.flush()

    def emit_write_request(self, address, request_ns, counter_atomic) -> None:
        if self._generic:
            EventBus.emit_write_request(self, address, request_ns, counter_atomic)
            return
        buffer = self._buffer
        buffer.append(_WRITE_REQUEST_RECORD)
        if len(buffer) >= _FLUSH_EVERY:
            self.flush()

    def emit_data_persist(
        self, address, payload_bytes, coalesced, accept_ns, drain_ns, accept_wait_ns=0.0
    ) -> None:
        if self._generic:
            EventBus.emit_data_persist(
                self, address, payload_bytes, coalesced, accept_ns, drain_ns, accept_wait_ns
            )
            return
        buffer = self._buffer
        buffer.append((_DATA_PERSIST, payload_bytes, coalesced, accept_wait_ns))
        if len(buffer) >= _FLUSH_EVERY:
            self.flush()

    def emit_counter_persist(
        self, address, payload_bytes, coalesced, paired, accept_ns, drain_ns
    ) -> None:
        if self._generic:
            EventBus.emit_counter_persist(
                self, address, payload_bytes, coalesced, paired, accept_ns, drain_ns
            )
            return
        buffer = self._buffer
        buffer.append((_COUNTER_PERSIST, payload_bytes, coalesced))
        if len(buffer) >= _FLUSH_EVERY:
            self.flush()

    def emit_pair(self, address, settled_ns, accept_wait_ns, lag_forced, coalesced) -> None:
        if self._generic:
            EventBus.emit_pair(self, address, settled_ns, accept_wait_ns, lag_forced, coalesced)
            return
        buffer = self._buffer
        buffer.append((_PAIR, accept_wait_ns, lag_forced))
        if len(buffer) >= _FLUSH_EVERY:
            self.flush()

    def emit_ccwb(self, address, request_ns) -> None:
        if self._generic:
            EventBus.emit_ccwb(self, address, request_ns)
            return
        buffer = self._buffer
        buffer.append(_CCWB_RECORD)
        if len(buffer) >= _FLUSH_EVERY:
            self.flush()

    def emit_ccwb_flush(self, address, request_ns) -> None:
        if self._generic:
            EventBus.emit_ccwb_flush(self, address, request_ns)
            return
        buffer = self._buffer
        buffer.append(_CCWB_FLUSH_RECORD)
        if len(buffer) >= _FLUSH_EVERY:
            self.flush()

    def emit_ccwb_tree_flush(self, request_ns, nodes) -> None:
        if self._generic:
            EventBus.emit_ccwb_tree_flush(self, request_ns, nodes)
            return
        buffer = self._buffer
        buffer.append((_CCWB_TREE_FLUSH, nodes))
        if len(buffer) >= _FLUSH_EVERY:
            self.flush()

    def emit_tree_node(self, address, coalesced, drain_ns) -> None:
        if self._generic:
            EventBus.emit_tree_node(self, address, coalesced, drain_ns)
            return
        buffer = self._buffer
        buffer.append((_TREE_NODE, coalesced))
        if len(buffer) >= _FLUSH_EVERY:
            self.flush()

    def emit_tree_verify(self, group_base, request_ns) -> None:
        if self._generic:
            EventBus.emit_tree_verify(self, group_base, request_ns)
            return
        buffer = self._buffer
        buffer.append(_TREE_VERIFY_RECORD)
        if len(buffer) >= _FLUSH_EVERY:
            self.flush()

    def emit_tree_fill(self, address, payload_bytes) -> None:
        if self._generic:
            EventBus.emit_tree_fill(self, address, payload_bytes)
            return
        buffer = self._buffer
        buffer.append((_TREE_FILL, payload_bytes))
        if len(buffer) >= _FLUSH_EVERY:
            self.flush()

    def emit_root_update(self, group_base, effective_ns) -> None:
        if self._generic:
            EventBus.emit_root_update(self, group_base, effective_ns)
            return
        buffer = self._buffer
        buffer.append(_ROOT_UPDATE_RECORD)
        if len(buffer) >= _FLUSH_EVERY:
            self.flush()

    def emit_drain(self, role, address, issue_ns, complete_ns) -> None:
        # Drain events are pure observability: without a generic
        # subscriber there is nothing to record.
        if self._generic:
            EventBus.emit_drain(self, role, address, issue_ns, complete_ns)


class JsonlTraceSubscriber:
    """Appends every event as one JSON line (the observability hook).

    The file handle opens lazily on the first event and stays open for
    the controller's lifetime.  ``flush_every`` controls the crash
    durability of the trace: the default of 1 flushes per event, so a
    crashed or killed run keeps its full trace prefix; larger values
    amortize the flush over batches at the cost of losing up to that
    many trailing lines on a crash
    (``config.controller.event_trace_flush_every``).
    """

    def __init__(self, path: str, flush_every: int = 1) -> None:
        self.path = path
        self.flush_every = max(1, int(flush_every))
        self._since_flush = 0
        self._stream = None

    def __call__(self, event: MemoryEvent) -> None:
        if self._stream is None:
            self._stream = open(self.path, "a", encoding="utf-8")
        record = {"kind": event.kind}
        record.update(dataclasses.asdict(event))
        self._stream.write(json.dumps(record, sort_keys=True))
        self._stream.write("\n")
        self._since_flush += 1
        if self._since_flush >= self.flush_every:
            self._stream.flush()
            self._since_flush = 0

    def close(self) -> None:
        if self._stream is not None:
            self._stream.close()
            self._stream = None
            self._since_flush = 0
