"""Typed memory events, the controller's event bus, and its subscribers.

The decomposed controller (see :mod:`repro.mem.controller`) does not
increment statistics inline.  Instead, every observable action on the
write/read path — a read completing, a data line persisting, a
counter-atomic pair committing, a tree node draining — is emitted as a
typed :class:`MemoryEvent` on a synchronous :class:`EventBus`, and
:class:`ControllerStats` is *derived* by :class:`StatsSubscriber` from
the event stream.  An optional :class:`JsonlTraceSubscriber` appends
every event as a JSON line, giving campaigns and perf debugging an
observability hook without touching the simulation paths.

Bus contract (also documented in ``docs/architecture.md``):

* Dispatch is synchronous and in emission order; subscribers must not
  emit events themselves or mutate simulation state.
* Events are frozen dataclasses; timestamps are absolute simulated
  nanoseconds (the controller's timing contract).
* Float-valued statistics (read latency, accept waits) are accumulated
  in emission order, which the controller keeps identical to the
  pre-decomposition increment order so long-run sums stay bit-identical.
* Subscribers are *not* checkpointed: :class:`StatsSubscriber` state is
  captured via ``ControllerStats`` in the controller snapshot, and a
  JSONL trace is diagnostic output that restored runs re-append to.
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass
from typing import Callable, ClassVar, List, Optional

from ..config import CACHE_LINE_SIZE


@dataclass(frozen=True)
class MemoryEvent:
    """Base class for everything emitted on the controller's bus."""

    kind: ClassVar[str] = ""


@dataclass(frozen=True)
class ReadEvent(MemoryEvent):
    """One ``read_line`` completed (decryption overlap already applied)."""

    kind: ClassVar[str] = "read"
    address: int
    request_ns: float
    complete_ns: float
    payload_bytes: int
    counter_cache_hit: bool


@dataclass(frozen=True)
class CounterFetchEvent(MemoryEvent):
    """A covering counter line was read from the NVM counter region."""

    kind: ClassVar[str] = "counter-fetch"
    address: int
    request_ns: float
    payload_bytes: int


@dataclass(frozen=True)
class WriteRequestEvent(MemoryEvent):
    """One ``write_line`` entered the controller (before routing)."""

    kind: ClassVar[str] = "write-request"
    address: int
    request_ns: float
    counter_atomic: bool


@dataclass(frozen=True)
class DataPersistEvent(MemoryEvent):
    """A data-line write was accepted (or coalesced into a queued one).

    ``accept_wait_ns`` is the stall between the request and queue
    acceptance charged to this write; paired writes charge their wait on
    the :class:`PairEvent` instead and carry ``0.0`` here.
    """

    kind: ClassVar[str] = "data-persist"
    address: int
    payload_bytes: int
    coalesced: bool
    accept_ns: float
    drain_ns: float
    accept_wait_ns: float = 0.0


@dataclass(frozen=True)
class CounterPersistEvent(MemoryEvent):
    """A counter-line write reached the counter write queue.

    Only split-counter-region persists emit this; co-located designs
    carry the counter inside their 72 B data access and the ideal
    design's magic counters never generate traffic.
    """

    kind: ClassVar[str] = "counter-persist"
    address: int
    payload_bytes: int
    coalesced: bool
    paired: bool
    accept_ns: float
    drain_ns: float


@dataclass(frozen=True)
class PairEvent(MemoryEvent):
    """A counter-atomic pair committed (paper Section 5.2.2).

    ``lag_forced`` marks pairs escalated by the Osiris counter-lag
    bound rather than requested by the design's pairing discipline.
    """

    kind: ClassVar[str] = "pair"
    address: int
    settled_ns: float
    accept_wait_ns: float
    lag_forced: bool
    coalesced: bool


@dataclass(frozen=True)
class CcwbEvent(MemoryEvent):
    """``counter_cache_writeback()`` was invoked (flushing or not)."""

    kind: ClassVar[str] = "ccwb"
    address: int
    request_ns: float


@dataclass(frozen=True)
class CcwbFlushEvent(MemoryEvent):
    """A ccwb call found its covering counter line dirty and flushed it."""

    kind: ClassVar[str] = "ccwb-flush"
    address: int
    request_ns: float


@dataclass(frozen=True)
class CcwbTreeFlushEvent(MemoryEvent):
    """A lazy-mode ccwb drained the coalesced dirty tree nodes."""

    kind: ClassVar[str] = "ccwb-tree-flush"
    request_ns: float
    nodes: int


@dataclass(frozen=True)
class TreeNodeEvent(MemoryEvent):
    """One integrity-tree node digest was sent to (or merged in) NVM."""

    kind: ClassVar[str] = "tree-node"
    address: int
    coalesced: bool
    drain_ns: float


@dataclass(frozen=True)
class TreeVerifyEvent(MemoryEvent):
    """A fetched counter line authenticated against the tree."""

    kind: ClassVar[str] = "tree-verify"
    group_base: int
    request_ns: float


@dataclass(frozen=True)
class TreeFillEvent(MemoryEvent):
    """An uncached tree node was read from NVM during verification."""

    kind: ClassVar[str] = "tree-fill"
    address: int
    payload_bytes: int


@dataclass(frozen=True)
class RootUpdateEvent(MemoryEvent):
    """The on-chip secure root advanced over a persisted counter line."""

    kind: ClassVar[str] = "root-update"
    group_base: int
    effective_ns: float


@dataclass(frozen=True)
class DrainEvent(MemoryEvent):
    """One write-queue entry drained to its bank (pure observability)."""

    kind: ClassVar[str] = "drain"
    role: str
    address: int
    issue_ns: float
    complete_ns: float


#: A bus subscriber: called once per event, in emission order.
Subscriber = Callable[[MemoryEvent], None]


class EventBus:
    """Synchronous fan-out of :class:`MemoryEvent` to subscribers.

    Dispatch happens inline on the emitting call — subscribers see
    events in exactly the order the simulation produced them, which is
    what lets :class:`StatsSubscriber` reproduce the legacy inline
    float-accumulation order bit for bit.
    """

    def __init__(self) -> None:
        self._subscribers: List[Subscriber] = []

    def subscribe(self, subscriber: Subscriber) -> None:
        self._subscribers.append(subscriber)

    def emit(self, event: MemoryEvent) -> None:
        for subscriber in self._subscribers:
            subscriber(event)


@dataclass
class ControllerStats:
    """Aggregate controller statistics for one simulation.

    Derived from the event stream by :class:`StatsSubscriber`; nothing
    in the simulation paths increments these fields directly.
    """

    reads: int = 0
    data_writes: int = 0
    counter_writes: int = 0
    paired_writes: int = 0
    coalesced_data_writes: int = 0
    coalesced_counter_writes: int = 0
    ccwb_calls: int = 0
    ccwb_lines_flushed: int = 0
    bytes_read: int = 0
    bytes_written: int = 0
    counter_fill_reads: int = 0
    total_read_latency_ns: float = 0.0
    total_write_accept_wait_ns: float = 0.0
    # Bonsai-tree designs only (all zero otherwise).
    tree_node_writes: int = 0
    coalesced_tree_writes: int = 0
    tree_verifications: int = 0
    tree_node_fills: int = 0
    root_updates: int = 0
    ccwb_tree_flushes: int = 0
    lag_forced_pairs: int = 0

    @property
    def mean_read_latency_ns(self) -> float:
        return self.total_read_latency_ns / self.reads if self.reads else 0.0


class StatsSubscriber:
    """Folds the event stream into a :class:`ControllerStats`.

    The mapping is one event kind to a fixed set of increments; the
    float accumulators pick up contributions in emission order.
    """

    def __init__(self, stats: Optional[ControllerStats] = None) -> None:
        self.stats = stats if stats is not None else ControllerStats()

    def __call__(self, event: MemoryEvent) -> None:
        stats = self.stats
        if isinstance(event, ReadEvent):
            stats.reads += 1
            stats.bytes_read += event.payload_bytes
            stats.total_read_latency_ns += event.complete_ns - event.request_ns
        elif isinstance(event, DataPersistEvent):
            if event.coalesced:
                stats.coalesced_data_writes += 1
            else:
                stats.bytes_written += event.payload_bytes
            stats.total_write_accept_wait_ns += event.accept_wait_ns
        elif isinstance(event, CounterPersistEvent):
            if event.coalesced:
                stats.coalesced_counter_writes += 1
            else:
                stats.counter_writes += 1
                stats.bytes_written += event.payload_bytes
        elif isinstance(event, PairEvent):
            stats.paired_writes += 1
            stats.total_write_accept_wait_ns += event.accept_wait_ns
            if event.lag_forced:
                stats.lag_forced_pairs += 1
        elif isinstance(event, WriteRequestEvent):
            stats.data_writes += 1
        elif isinstance(event, CounterFetchEvent):
            stats.counter_fill_reads += 1
            stats.bytes_read += event.payload_bytes
        elif isinstance(event, CcwbEvent):
            stats.ccwb_calls += 1
        elif isinstance(event, CcwbFlushEvent):
            stats.ccwb_lines_flushed += 1
        elif isinstance(event, CcwbTreeFlushEvent):
            stats.ccwb_tree_flushes += event.nodes
        elif isinstance(event, TreeNodeEvent):
            if event.coalesced:
                stats.coalesced_tree_writes += 1
            else:
                stats.tree_node_writes += 1
                stats.bytes_written += CACHE_LINE_SIZE
        elif isinstance(event, TreeVerifyEvent):
            stats.tree_verifications += 1
        elif isinstance(event, TreeFillEvent):
            stats.tree_node_fills += 1
            stats.bytes_read += event.payload_bytes
        elif isinstance(event, RootUpdateEvent):
            stats.root_updates += 1
        # DrainEvent carries no statistics — trace-only.


class JsonlTraceSubscriber:
    """Appends every event as one JSON line (the observability hook).

    The file handle opens lazily on the first event and stays open for
    the controller's lifetime; lines are flushed per event so a crashed
    or killed run keeps its trace prefix.
    """

    def __init__(self, path: str) -> None:
        self.path = path
        self._stream = None

    def __call__(self, event: MemoryEvent) -> None:
        if self._stream is None:
            self._stream = open(self.path, "a", encoding="utf-8")
        record = {"kind": event.kind}
        record.update(dataclasses.asdict(event))
        self._stream.write(json.dumps(record, sort_keys=True))
        self._stream.write("\n")
        self._stream.flush()

    def close(self) -> None:
        if self._stream is not None:
            self._stream.close()
            self._stream = None
