"""The data and counter write queues with ready-bit pairing.

The paper's counter-atomicity hardware (Section 5.2.2) keeps two
ADR-protected queues in the memory controller: a 64-entry data write
queue and a 16-entry counter write queue.  Counter-atomic writes insert
one entry into each queue; an entry's *ready bit* is set only once its
partner has also been accepted.  On a power failure, only ready entries
drain — this yields the all-or-nothing behaviour that keeps data and
counter versions in sync.

Timing model: each queue is a bounded buffer whose slots are occupied
from acceptance until drain.  Acceptance applies backpressure: a request
arriving while the queue is full is accepted only when the earliest
in-flight entry drains.  Drain times are computed against the shared
bank/bus timelines by the memory controller; this module owns occupancy,
coalescing, pairing and the crash-time ready-bit semantics.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from ..errors import QueueFullError, SimulationError

_INF = float("inf")


class EntryIdAllocator:
    """Monotonic entry-id source shared by a controller's queues.

    Ids must be unique across the data and counter queues (the persist
    journal indexes by them) and — for deterministic checkpoint/resume —
    must depend only on the simulation itself, never on how many other
    machines ran earlier in the process.  Each controller therefore owns
    one allocator starting from zero; its cursor is part of the
    checkpoint state.
    """

    __slots__ = ("next_id",)

    def __init__(self, start: int = 0) -> None:
        self.next_id = start

    def allocate(self) -> int:
        value = self.next_id
        self.next_id += 1
        return value


#: Fallback for queues constructed standalone (tests, tools).
_default_entry_ids = EntryIdAllocator()


@dataclass(slots=True)
class WriteQueueEntry:
    """One queued writeback (data line or counter line)."""

    entry_id: int
    address: int
    payload: Optional[bytes]
    is_counter: bool
    #: Counter value this payload was encrypted with (ground truth for
    #: crash reconstruction); counters-in-payload use 0.
    encrypted_with: int
    #: For counter entries: the eight counter values being persisted,
    #: keyed by group base data address.
    counter_values: Optional[Tuple[int, Tuple[int, ...]]]
    accept_ns: float
    #: When the ready bit was set (== accept for unpaired entries).
    ready_ns: float
    #: When the array write completes in the NVM (durability point for
    #: crash reconstruction of non-ADR systems).
    drain_ns: float
    #: When the entry's slot frees: the write has issued to its bank
    #: and left the queue (always <= drain_ns).
    slot_release_ns: float = float("inf")
    counter_atomic: bool = False
    #: entry_id of the paired entry in the other queue, if any.
    partner_id: Optional[int] = None
    coalesced: int = 0

    @property
    def ready_at(self) -> float:
        return self.ready_ns


class WriteQueue:
    """Bounded write buffer with coalescing and occupancy backpressure."""

    def __init__(
        self,
        name: str,
        capacity: int,
        coalesce: bool = True,
        entry_ids: Optional[EntryIdAllocator] = None,
    ) -> None:
        if capacity <= 0:
            raise QueueFullError("queue capacity must be positive")
        self.name = name
        self.capacity = capacity
        self.coalesce_enabled = coalesce
        self._entry_ids = entry_ids if entry_ids is not None else _default_entry_ids
        #: Drain times of entries currently holding slots.
        self._slots: List[float] = []
        #: Live entries by line address (for coalescing) — an address
        #: maps to its most recent undrained entry.
        self._live_by_address: Dict[int, WriteQueueEntry] = {}
        #: All entries ever accepted, in order (the crash journal reads
        #: this; memory stays bounded because experiments are finite).
        self.history: List[WriteQueueEntry] = []
        self.accepted = 0
        self.coalesced = 0
        self.total_accept_wait_ns = 0.0
        self.peak_occupancy = 0

    # -- occupancy --------------------------------------------------------

    def _release_drained(self, now_ns: float) -> None:
        while self._slots and self._slots[0] <= now_ns:
            heapq.heappop(self._slots)

    def occupancy(self, now_ns: float) -> int:
        self._release_drained(now_ns)
        return len(self._slots)

    def acceptance_time(self, request_ns: float) -> float:
        """Earliest time a new entry can be accepted (slot available)."""
        self._release_drained(request_ns)
        if len(self._slots) < self.capacity:
            return request_ns
        # Queue full: the request waits for the earliest drain.
        return self._slots[0]

    # -- coalescing --------------------------------------------------------

    def find_live(self, address: int, now_ns: float) -> Optional[WriteQueueEntry]:
        """A still-queued entry for ``address`` (eligible to coalesce).

        An entry stops being mergeable once its write has issued to the
        bank (``slot_release_ns``), even though the cell write finishes
        later.
        """
        entry = self._live_by_address.get(address)
        if entry is not None and entry.slot_release_ns > now_ns:
            return entry
        return None

    def try_coalesce(
        self,
        address: int,
        now_ns: float,
        payload: Optional[bytes],
        encrypted_with: int,
        counter_values: Optional[Tuple[int, Tuple[int, ...]]] = None,
        allow_counter_atomic: bool = False,
    ) -> Optional[WriteQueueEntry]:
        """Merge a new write into a queued entry for the same line.

        Returns the updated entry on success, None if no live entry
        exists (or coalescing is disabled).  By default counter-atomic
        paired entries never coalesce with later *plain* writes — their
        all-or-nothing pairing must not absorb unrelated updates; a new
        counter-atomic pair may merge into a queued paired counter line
        (``allow_counter_atomic=True``) because the merge and the
        ready-bit update form one ADR-protected operation.
        """
        entry = self.peek_coalesce(address, now_ns, allow_counter_atomic)
        if entry is None:
            return None
        return self.commit_coalesce(entry, payload, encrypted_with, counter_values)

    def peek_coalesce(
        self, address: int, now_ns: float, allow_counter_atomic: bool = False
    ) -> Optional[WriteQueueEntry]:
        """Find a merge candidate without mutating it.

        Callers that must merge into *two* queues atomically (paired
        writes) peek both, then commit both, so a miss on one side
        leaves the other untouched.
        """
        if not self.coalesce_enabled:
            return None
        entry = self.find_live(address, now_ns)
        if entry is None or (entry.counter_atomic and not allow_counter_atomic):
            return None
        return entry

    def commit_coalesce(
        self,
        entry: WriteQueueEntry,
        payload: Optional[bytes],
        encrypted_with: int,
        counter_values: Optional[Tuple[int, Tuple[int, ...]]] = None,
    ) -> WriteQueueEntry:
        """Apply a merge found by :meth:`peek_coalesce`."""
        entry.payload = payload
        entry.encrypted_with = encrypted_with
        if counter_values is not None:
            entry.counter_values = counter_values
        entry.coalesced += 1
        self.coalesced += 1
        return entry

    # -- acceptance ----------------------------------------------------------

    def accept(
        self,
        address: int,
        request_ns: float,
        payload: Optional[bytes],
        is_counter: bool,
        encrypted_with: int = 0,
        counter_values: Optional[Tuple[int, Tuple[int, ...]]] = None,
        counter_atomic: bool = False,
    ) -> WriteQueueEntry:
        """Accept a new entry, waiting for a slot if the queue is full.

        The entry's ready/drain times start undefined (``inf``); the
        controller sets them via :meth:`mark_ready` /
        :meth:`set_drain_time` once pairing resolves and the drain is
        scheduled.
        """
        # Inlined acceptance_time(): accept() runs once per simulated
        # writeback, so the slot scan and id allocation are done
        # in-place with bound locals rather than through method calls.
        slots = self._slots
        heappop = heapq.heappop
        while slots and slots[0] <= request_ns:
            heappop(slots)
        if len(slots) < self.capacity:
            accept_ns = request_ns
        else:
            accept_ns = slots[0]
            self.total_accept_wait_ns += accept_ns - request_ns
        ids = self._entry_ids
        entry_id = ids.next_id
        ids.next_id = entry_id + 1
        entry = WriteQueueEntry(
            entry_id,
            address,
            payload,
            is_counter,
            encrypted_with,
            counter_values,
            accept_ns,
            _INF,
            _INF,
        )
        if counter_atomic:
            entry.counter_atomic = True
        self._live_by_address[address] = entry
        self.history.append(entry)
        self.accepted += 1
        return entry

    def mark_ready(self, entry: WriteQueueEntry, ready_ns: float) -> None:
        if ready_ns < entry.accept_ns:
            raise SimulationError("entry cannot be ready before acceptance")
        entry.ready_ns = ready_ns

    def set_drain_time(
        self,
        entry: WriteQueueEntry,
        drain_ns: float,
        slot_release_ns: Optional[float] = None,
    ) -> None:
        """Finalize the drain schedule and occupy a slot.

        The slot is held until ``slot_release_ns`` — the instant the
        write issues to its bank and leaves the queue — while
        ``drain_ns`` records when the cell write completes (the long
        PCM write recovery no longer blocks the queue slot).
        """
        if drain_ns < entry.ready_ns:
            raise SimulationError("entry cannot drain before it is ready")
        entry.drain_ns = drain_ns
        entry.slot_release_ns = slot_release_ns if slot_release_ns is not None else drain_ns
        if entry.slot_release_ns > drain_ns:
            raise SimulationError("slot cannot outlive the drain")
        self._release_drained(entry.accept_ns)
        heapq.heappush(self._slots, entry.slot_release_ns)
        if len(self._slots) > self.peak_occupancy:
            self.peak_occupancy = len(self._slots)

    # -- crash semantics --------------------------------------------------------

    def entries_at(self, crash_ns: float) -> List[WriteQueueEntry]:
        """Entries resident in the queue at ``crash_ns``."""
        return [
            e
            for e in self.history
            if e.accept_ns <= crash_ns and e.drain_ns > crash_ns
        ]

    def adr_drainable_at(self, crash_ns: float) -> List[WriteQueueEntry]:
        """Entries the ADR logic drains on a failure at ``crash_ns``.

        Exactly the *ready* resident entries (paper Section 5.2.2,
        "Steps During a System Failure").
        """
        return [e for e in self.entries_at(crash_ns) if e.ready_ns <= crash_ns]

    def dropped_at(self, crash_ns: float) -> List[WriteQueueEntry]:
        """Resident entries whose ready bit was still 0 at the failure."""
        return [e for e in self.entries_at(crash_ns) if e.ready_ns > crash_ns]

    # -- checkpoint state --------------------------------------------------------

    @staticmethod
    def _entry_state(entry: WriteQueueEntry) -> tuple:
        return (
            entry.entry_id,
            entry.address,
            entry.payload,
            entry.is_counter,
            entry.encrypted_with,
            entry.counter_values,
            entry.accept_ns,
            entry.ready_ns,
            entry.drain_ns,
            entry.slot_release_ns,
            entry.counter_atomic,
            entry.partner_id,
            entry.coalesced,
        )

    @staticmethod
    def _entry_from_state(state: tuple) -> WriteQueueEntry:
        return WriteQueueEntry(
            entry_id=state[0],
            address=state[1],
            payload=state[2],
            is_counter=state[3],
            encrypted_with=state[4],
            counter_values=state[5],
            accept_ns=state[6],
            ready_ns=state[7],
            drain_ns=state[8],
            slot_release_ns=state[9],
            counter_atomic=state[10],
            partner_id=state[11],
            coalesced=state[12],
        )

    def get_state(self) -> Dict[str, object]:
        """Checkpoint state: history, live map (by history index), slots.

        The live-entry map is stored as history indexes so identity is
        preserved on restore — coalescing mutates the shared object that
        both the map and the history reference.
        """
        index_of = {id(entry): i for i, entry in enumerate(self.history)}
        return {
            "slots": list(self._slots),
            "history": [self._entry_state(entry) for entry in self.history],
            "live": [
                (address, index_of[id(entry)])
                for address, entry in self._live_by_address.items()
            ],
            "accepted": self.accepted,
            "coalesced": self.coalesced,
            "total_accept_wait_ns": self.total_accept_wait_ns,
            "peak_occupancy": self.peak_occupancy,
        }

    def set_state(self, state: Dict[str, object]) -> None:
        self._slots = list(state["slots"])  # a valid heap, saved verbatim
        self.history = [self._entry_from_state(entry) for entry in state["history"]]
        self._live_by_address = {
            address: self.history[index] for address, index in state["live"]
        }
        self.accepted = state["accepted"]
        self.coalesced = state["coalesced"]
        self.total_accept_wait_ns = state["total_accept_wait_ns"]
        self.peak_occupancy = state["peak_occupancy"]
