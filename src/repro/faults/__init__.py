"""Composable, seeded fault models over post-crash NVM images.

See :mod:`repro.faults.base` for the model contract and
:mod:`repro.faults.models` for the concrete failure modes; campaigns
(:mod:`repro.crash.campaign`) sweep these across workloads, designs and
crash points.
"""

from .base import (
    FaultEvent,
    FaultModel,
    apply_fault_models,
    derive_rng,
    touched_counter_groups,
    touched_data_lines,
)
from .models import (
    BitFlip,
    CounterCorruption,
    DroppedADRDrain,
    NoFault,
    TornCounterLineWrite,
    TornDataLineWrite,
)
from .oneshot import OneShotTrigger, latch_once
from .recovery import (
    RECOVERY_PHASES,
    RecoveryFaultPlan,
    RecoveryFaultPoint,
    nested_point_grid,
)
from .registry import (
    DEFAULT_SUITE,
    default_fault_suite,
    list_fault_models,
    make_fault_model,
    model_from_spec,
)

__all__ = [
    "OneShotTrigger",
    "latch_once",
    "RECOVERY_PHASES",
    "RecoveryFaultPlan",
    "RecoveryFaultPoint",
    "nested_point_grid",
    "FaultEvent",
    "FaultModel",
    "apply_fault_models",
    "derive_rng",
    "touched_counter_groups",
    "touched_data_lines",
    "BitFlip",
    "CounterCorruption",
    "DroppedADRDrain",
    "NoFault",
    "TornCounterLineWrite",
    "TornDataLineWrite",
    "DEFAULT_SUITE",
    "default_fault_suite",
    "list_fault_models",
    "make_fault_model",
    "model_from_spec",
]
