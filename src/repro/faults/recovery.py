"""Recovery-phase fault points: crashes *during* recovery.

The image-mutating models in :mod:`repro.faults.models` corrupt the
durable state a crash leaves behind; the fault points here corrupt the
*recovery* that runs afterwards.  Phoenix (arxiv 1911.01922) and the
fast-recovery metadata line of work treat recoverability of the
recovery path as the hard part of the problem: a second power failure
mid-replay, a torn persist of a recovery-side write, a reset during
the Osiris counter search — all leave a partially-recovered durable
state that the next boot must recover from.

A :class:`RecoveryFaultPlan` is a seeded schedule of such points.  Each
point names a recovery phase (``txn-replay``, ``counter-search``,
``tree-repair``), a step index within that phase, and a kind:

``crash``
    Power fails immediately after the Nth recovery step of the phase
    completes (and its write, if any, persists).
``torn-write``
    Power fails *during* the Nth recovery-side line write: a prefix of
    the new content persists, the tail keeps the pre-write content —
    the recovery-side twin of :class:`~repro.faults.models.TornDataLineWrite`.

Delivery is one-shot through the same latch discipline the chaos
harness uses for worker faults (:mod:`repro.faults.oneshot`): every
point fires exactly once per plan, so a recovery procedure that is
restartable always terminates — re-running it after the nested crash
proceeds past the fired point.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..config import CACHE_LINE_SIZE
from .base import require
from .oneshot import OneShotTrigger

#: Recovery phases a fault point can name, in escalation-ladder order.
RECOVERY_PHASES: Tuple[str, ...] = ("txn-replay", "counter-search", "tree-repair")

#: Fault kinds; torn writes only make sense for phases that perform
#: recovery-side line writes (txn replay).
RECOVERY_FAULT_KINDS: Tuple[str, ...] = ("crash", "torn-write")

#: Torn recovery writes tear at the same word granularity as the NVM
#: row buffer (see repro.faults.models.TEAR_GRANULARITY).
TEAR_GRANULARITY = 8


@dataclass(frozen=True)
class RecoveryFaultPoint:
    """One scheduled fault inside a recovery phase."""

    phase: str
    step: int
    kind: str = "crash"

    def __post_init__(self) -> None:
        require(
            self.phase in RECOVERY_PHASES,
            "unknown recovery phase %r; known: %s"
            % (self.phase, ", ".join(RECOVERY_PHASES)),
        )
        require(
            self.kind in RECOVERY_FAULT_KINDS,
            "unknown recovery fault kind %r; known: %s"
            % (self.kind, ", ".join(RECOVERY_FAULT_KINDS)),
        )
        require(self.step >= 0, "recovery fault step cannot be negative")
        require(
            self.kind != "torn-write" or self.phase == "txn-replay",
            "torn-write faults apply only to the txn-replay phase "
            "(the other phases write counters, not lines)",
        )

    def as_dict(self) -> Dict[str, object]:
        return {"phase": self.phase, "step": self.step, "kind": self.kind}


class RecoveryFaultPlan:
    """A one-shot schedule of recovery-phase fault points.

    The plan is consulted by the :class:`~repro.crash.session.RecoveryContext`
    at every recovery step; each point fires exactly once, after which
    the plan is inert for that point — retries run past it.  A plan
    with several points produces nested-nested crashes: the second
    point can fire during the recovery *of* the first nested crash.
    """

    def __init__(self, points: Sequence[RecoveryFaultPoint], seed: int = 0) -> None:
        self.points = tuple(points)
        self.seed = seed
        self._trigger = OneShotTrigger()
        self._fired: List[RecoveryFaultPoint] = []

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "RecoveryFaultPlan(%r, seed=%d)" % (list(self.points), self.seed)

    def _fire(self, phase: str, step: int, kind: str) -> Optional[RecoveryFaultPoint]:
        for point in self.points:
            if (
                point.phase == phase
                and point.step == step
                and point.kind == kind
                and self._trigger.fire(point)
            ):
                self._fired.append(point)
                return point
        return None

    def crash_after(self, phase: str, step: int) -> Optional[RecoveryFaultPoint]:
        """The ``crash`` point firing just after ``step``, if armed."""
        return self._fire(phase, step, "crash")

    def tear_write(self, phase: str, step: int) -> Optional[RecoveryFaultPoint]:
        """The ``torn-write`` point firing at write ``step``, if armed."""
        return self._fire(phase, step, "torn-write")

    def tear_length(self, point: RecoveryFaultPoint) -> int:
        """How many bytes of the torn write persist (seeded, stable)."""
        rng = random.Random(repr((self.seed, point.phase, point.step)))
        return rng.randrange(TEAR_GRANULARITY, CACHE_LINE_SIZE, TEAR_GRANULARITY)

    @property
    def injected(self) -> int:
        """How many points have fired so far."""
        return len(self._fired)

    def fired_points(self) -> List[Dict[str, object]]:
        """JSON-ready record of every point that fired, in order."""
        return [point.as_dict() for point in self._fired]

    @classmethod
    def generate(
        cls,
        seed: int,
        *scope: object,
        points: int = 1,
        phases: Sequence[str] = RECOVERY_PHASES,
        max_step: int = 4,
        torn: bool = True,
    ) -> "RecoveryFaultPlan":
        """A seeded random plan for one (seed, scope...) combination.

        Mirrors :func:`repro.faults.base.derive_rng`: the same seed and
        scope always produce the same schedule, so any nested-crash
        finding is replayable from its seed.
        """
        require(points >= 1, "a generated plan needs at least one point")
        require(max_step >= 1, "max_step must be positive")
        rng = random.Random(repr((int(seed),) + scope))
        chosen: List[RecoveryFaultPoint] = []
        seen = set()
        for _ in range(points):
            for _attempt in range(16):
                phase = rng.choice(tuple(phases))
                kind = (
                    "torn-write"
                    if torn and phase == "txn-replay" and rng.random() < 0.25
                    else "crash"
                )
                point = RecoveryFaultPoint(phase, rng.randrange(max_step), kind)
                if point not in seen:
                    seen.add(point)
                    chosen.append(point)
                    break
        return cls(chosen, seed=seed)


def nested_point_grid(
    max_step: int,
    counter_search: bool = False,
    tree_repair: bool = False,
    torn: bool = True,
    double: bool = True,
) -> List[Tuple[RecoveryFaultPoint, ...]]:
    """The campaign's crash-point x recovery-step sweep grid.

    One schedule per (phase, step) cell, enumerated deterministically:
    crashes after steps ``0..max_step-1`` of every *reachable* phase
    (``counter_search`` / ``tree_repair`` gate the phases the design
    can actually enter — an unreachable point would sweep a no-op),
    plus torn recovery writes in the replay phase and one double-crash
    schedule (a crash during the recovery of a nested crash).
    """
    require(max_step >= 1, "the nested-crash grid needs max_step >= 1")
    schedules: List[Tuple[RecoveryFaultPoint, ...]] = []
    phases = ["txn-replay"]
    if counter_search:
        phases.append("counter-search")
    if tree_repair:
        phases.append("tree-repair")
    for phase in phases:
        for step in range(max_step):
            schedules.append((RecoveryFaultPoint(phase, step, "crash"),))
    if torn:
        for step in range(max_step):
            schedules.append((RecoveryFaultPoint("txn-replay", step, "torn-write"),))
    if double:
        schedules.append(
            (
                RecoveryFaultPoint("txn-replay", 0, "crash"),
                RecoveryFaultPoint("txn-replay", 1, "crash"),
            )
        )
    return schedules
