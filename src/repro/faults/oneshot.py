"""One-shot fault latches.

Every fault the harness injects — chaos faults into workqueue workers,
nested crashes into running recovery — must fire *exactly once* per
(scope, fault) pair, or a fault that re-fires on every retry would make
its own recovery path unterminating.  This module is the shared latch
discipline behind both delivery mechanisms:

* :class:`OneShotTrigger` — in-process latching for recovery-phase
  fault plans (:mod:`repro.faults.recovery`), where injector and victim
  share one interpreter.
* :func:`latch_once` — cross-process latching via an ``O_EXCL`` marker
  file, used by the workqueue chaos workers
  (:mod:`repro.bench.backends.workqueue`), where racing claimants must
  agree on who fires the fault.
"""

from __future__ import annotations

import os
from typing import Hashable, Set


class OneShotTrigger:
    """In-process one-shot latch set: ``fire(key)`` is True once per key."""

    def __init__(self) -> None:
        self._fired: Set[Hashable] = set()

    def fire(self, key: Hashable) -> bool:
        """Latch ``key``; True only for the first call with this key."""
        if key in self._fired:
            return False
        self._fired.add(key)
        return True

    def fired(self, key: Hashable) -> bool:
        return key in self._fired

    @property
    def count(self) -> int:
        """How many distinct keys have fired."""
        return len(self._fired)


def latch_once(path: str) -> bool:
    """Cross-process one-shot latch: True only for the first caller ever.

    ``O_CREAT | O_EXCL`` makes the latch atomic across racing processes;
    the marker file at ``path`` is the durable record that the fault
    already fired.
    """
    try:
        handle = os.open(path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
    except FileExistsError:
        return False
    os.close(handle)
    return True
