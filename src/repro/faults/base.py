"""Fault-model substrate: what a fault is and how faults compose.

The paper's crash injector models one failure mode — a clean power cut
with a perfect ADR drain.  Related work assumes a much richer failure
space: Osiris-style counter recovery presumes counters can be lost or
corrupted, and SuperMem worries about torn persists of security
metadata.  A :class:`FaultModel` produces exactly such states by
mutating a reconstructed :class:`~repro.crash.injector.CrashImage`
after the clean power-cut semantics have been applied.

Design rules:

* **Seeded and reproducible** — a model never touches global RNG state;
  it receives a :class:`random.Random` derived deterministically from
  (campaign seed, crash point, model), so the same seed always yields
  the same corrupted image.
* **Composable** — models only mutate the image they are given and
  report what they did as :class:`FaultEvent` records, so several
  models can stack on one image.
* **Observable** — every mutation is reported; silent fault injection
  would make triage impossible.

The one fault that cannot be expressed as an image mutation — an ADR
energy reserve dying mid-drain — is expressed as an ``adr_budget``
constraint the injector honours while *building* the image (see
:meth:`repro.persist.journal.PersistJournal.reconstruct`).
"""

from __future__ import annotations

import abc
import random
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

from ..config import CACHE_LINE_SIZE, COUNTERS_PER_LINE
from ..errors import FaultInjectionError
from ..utils.bitops import align_down

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (crash -> faults)
    from ..crash.injector import CrashImage

#: Data addresses covered by one 64 B counter line.
COUNTER_GROUP_BYTES = CACHE_LINE_SIZE * COUNTERS_PER_LINE


@dataclass(frozen=True)
class FaultEvent:
    """One concrete mutation a fault model performed on a crash image."""

    model: str
    kind: str
    address: int
    detail: str = ""

    def as_dict(self) -> Dict[str, object]:
        return {
            "model": self.model,
            "kind": self.kind,
            "address": self.address,
            "detail": self.detail,
        }


class FaultModel(abc.ABC):
    """A reproducible corruption applied to a crash image."""

    #: Registry name; concrete models override.
    name: str = "fault"

    #: ADR drain budget this model imposes while the image is built
    #: (``None`` = the paper's unlimited-ADR assumption).
    adr_budget: Optional[int] = None

    @abc.abstractmethod
    def apply(self, image: "CrashImage", rng: random.Random) -> List[FaultEvent]:
        """Mutate ``image`` in place; return every mutation performed.

        Models must tolerate images with nothing to corrupt (e.g. a
        crash before any write persisted) by returning an empty list.
        """

    def params(self) -> Dict[str, object]:
        """The model's configuration knobs (for journals and reports)."""
        return {}

    def spec(self) -> Dict[str, object]:
        """JSON-ready description: registry name plus parameters."""
        document: Dict[str, object] = {"model": self.name}
        document.update(self.params())
        return document

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        knobs = ", ".join("%s=%r" % kv for kv in sorted(self.params().items()))
        return "%s(%s)" % (type(self).__name__, knobs)


def derive_rng(seed: int, *scope: object) -> random.Random:
    """Deterministic RNG for one (seed, scope...) combination.

    Seeding with the repr of the full scope tuple keeps streams
    independent across crash points and models without relying on
    Python's randomized ``hash()``.
    """
    return random.Random(repr((int(seed),) + scope))


def touched_data_lines(image: "CrashImage") -> List[int]:
    """Sorted data-line addresses materialized in the image."""
    address_map = image.address_map
    return [
        line
        for line in image.device.touched_lines()
        if address_map.is_data_address(line)
    ]


def touched_counter_groups(image: "CrashImage") -> List[int]:
    """Sorted base data addresses of counter groups with written slots."""
    groups = {
        align_down(line, COUNTER_GROUP_BYTES)
        for line in image.counter_store.touched_lines()
    }
    return sorted(groups)


def apply_fault_models(
    image: "CrashImage",
    models: Sequence[FaultModel],
    seed: int,
    scope: Tuple[object, ...] = (),
) -> List[FaultEvent]:
    """Apply ``models`` in order with independent derived RNG streams."""
    events: List[FaultEvent] = []
    for index, model in enumerate(models):
        rng = derive_rng(seed, scope, index, model.name)
        events.extend(model.apply(image, rng))
    return events


def require(condition: bool, message: str) -> None:
    """Parameter validation helper for model constructors."""
    if not condition:
        raise FaultInjectionError(message)
