"""Name -> fault-model registry and the default campaign suite."""

from __future__ import annotations

from typing import Callable, Dict, List, Mapping, Optional

from ..errors import FaultInjectionError
from .base import FaultModel
from .models import (
    BitFlip,
    CounterCorruption,
    DroppedADRDrain,
    NoFault,
    TornCounterLineWrite,
    TornDataLineWrite,
)

_FACTORIES: Dict[str, Callable[..., FaultModel]] = {
    "none": NoFault,
    "torn-data": TornDataLineWrite,
    "torn-counter": TornCounterLineWrite,
    "bitflip-data": lambda **kw: BitFlip(region="data", **kw),
    "bitflip-counter": lambda **kw: BitFlip(region="counter", **kw),
    "counter-corruption": CounterCorruption,
    "dropped-adr": DroppedADRDrain,
}

#: The suite a campaign runs when none is specified: the clean-crash
#: control plus every fault model at its default severity.
DEFAULT_SUITE = (
    "none",
    "torn-data",
    "torn-counter",
    "bitflip-data",
    "bitflip-counter",
    "counter-corruption",
    "dropped-adr",
)


def list_fault_models() -> List[str]:
    """All registered model names, control first."""
    return list(DEFAULT_SUITE)


def make_fault_model(name: str, **params: object) -> FaultModel:
    """Instantiate a registered fault model by name."""
    factory = _FACTORIES.get(name)
    if factory is None:
        raise FaultInjectionError(
            "unknown fault model %r; available: %s"
            % (name, ", ".join(sorted(_FACTORIES)))
        )
    try:
        return factory(**params)
    except TypeError as exc:
        raise FaultInjectionError(
            "bad parameters for fault model %r: %s" % (name, exc)
        ) from None


def model_from_spec(spec: Mapping[str, object]) -> FaultModel:
    """Inverse of :meth:`FaultModel.spec`."""
    document = dict(spec)
    name = document.pop("model", None)
    if not isinstance(name, str):
        raise FaultInjectionError("fault spec needs a 'model' name: %r" % (spec,))
    document.pop("region", None)  # encoded in the bitflip-* names
    return make_fault_model(name, **document)


def default_fault_suite() -> List[FaultModel]:
    """One instance of every model in :data:`DEFAULT_SUITE`."""
    return [make_fault_model(name) for name in DEFAULT_SUITE]
