"""The concrete fault models.

Each model produces a post-crash state the clean power-cut injector
cannot: torn 64 B persists (SuperMem's torn security-metadata worry),
bit flips in data or counter regions (media errors), counter-line
corruption (the state Osiris-style recovery exists to fix), and an ADR
drain cut short by an exhausted energy reserve.

Stale content convention: the simulator's device reads unwritten lines
as zeroes, so "the old content of this word" is reconstructed as the
zero line when no earlier durable value is available — a torn tail
therefore reads as stale zeroes, and a torn counter slot reverts to the
previous counter value (one below the persisted one).
"""

from __future__ import annotations

import random
from typing import Dict, List

from ..config import CACHE_LINE_SIZE
from ..crypto.counters import COUNTER_LIMIT
from .base import (
    COUNTER_GROUP_BYTES,
    FaultEvent,
    FaultModel,
    require,
    touched_counter_groups,
    touched_data_lines,
)

#: Torn writes happen at the NVM row-buffer word granularity.
TEAR_GRANULARITY = 8


class NoFault(FaultModel):
    """The clean power-cut baseline: every campaign's control row."""

    name = "none"

    def apply(self, image, rng: random.Random) -> List[FaultEvent]:
        return []


class TornDataLineWrite(FaultModel):
    """A 64 B data-line persist torn partway through.

    The first ``tear`` bytes of the chosen line persisted; the tail
    reverts to stale (zero) content.  The counter ground truth is left
    untouched: the line still *decrypts* with its architectural counter,
    so the corruption is invisible to the Eq.-4 counter check and only
    a content-level oracle (checksums, integrity tags, the campaign
    validator) can catch it — precisely the silent-corruption vector.
    """

    name = "torn-data"

    def __init__(self, lines: int = 1) -> None:
        require(lines >= 1, "torn-data needs at least one line to tear")
        self.lines = lines

    def params(self) -> Dict[str, object]:
        return {"lines": self.lines}

    def apply(self, image, rng: random.Random) -> List[FaultEvent]:
        candidates = touched_data_lines(image)
        if not candidates:
            return []
        events: List[FaultEvent] = []
        chosen = rng.sample(candidates, min(self.lines, len(candidates)))
        for line in sorted(chosen):
            stored = image.device.read_line(line)
            tear = rng.randrange(
                TEAR_GRANULARITY, CACHE_LINE_SIZE, TEAR_GRANULARITY
            )
            torn = stored.payload[:tear] + bytes(CACHE_LINE_SIZE - tear)
            if torn == stored.payload:
                continue
            image.device.persist_line(line, torn, stored.encrypted_with)
            events.append(
                FaultEvent(
                    model=self.name,
                    kind="torn-line",
                    address=line,
                    detail="persisted first %d of %d bytes" % (tear, CACHE_LINE_SIZE),
                )
            )
        return events


class TornCounterLineWrite(FaultModel):
    """A counter-line persist torn partway through its eight slots.

    Slots past the tear point revert to their previous value (one write
    back).  Data lines covered by the reverted slots become
    undecryptable — the security-metadata crash state SuperMem guards
    against with its counter write-through.
    """

    name = "torn-counter"

    def __init__(self, groups: int = 1) -> None:
        require(groups >= 1, "torn-counter needs at least one group to tear")
        self.groups = groups

    def params(self) -> Dict[str, object]:
        return {"groups": self.groups}

    def apply(self, image, rng: random.Random) -> List[FaultEvent]:
        candidates = touched_counter_groups(image)
        if not candidates:
            return []
        events: List[FaultEvent] = []
        chosen = rng.sample(candidates, min(self.groups, len(candidates)))
        for group in sorted(chosen):
            slots = image.counter_store.read_counter_line(group)
            tear = rng.randrange(1, len(slots))
            stale = []
            for slot, value in enumerate(slots):
                stale.append(value - 1 if slot >= tear and value > 0 else value)
            if tuple(stale) == slots:
                continue
            image.counter_store.write_counter_line(group, tuple(stale))
            events.append(
                FaultEvent(
                    model=self.name,
                    kind="torn-counter-line",
                    address=group,
                    detail="slots %d..%d reverted one write" % (tear, len(slots) - 1),
                )
            )
        return events


class BitFlip(FaultModel):
    """Random bit flips in the data or counter region (media errors)."""

    name = "bitflip"

    def __init__(self, region: str = "data", flips: int = 1) -> None:
        require(region in ("data", "counter"), "bitflip region is 'data' or 'counter'")
        require(flips >= 1, "bitflip needs at least one flip")
        self.region = region
        self.flips = flips
        self.name = "bitflip-%s" % region

    def params(self) -> Dict[str, object]:
        return {"region": self.region, "flips": self.flips}

    def apply(self, image, rng: random.Random) -> List[FaultEvent]:
        if self.region == "data":
            return self._flip_data(image, rng)
        return self._flip_counters(image, rng)

    def _flip_data(self, image, rng: random.Random) -> List[FaultEvent]:
        candidates = touched_data_lines(image)
        if not candidates:
            return []
        events: List[FaultEvent] = []
        for _ in range(self.flips):
            line = rng.choice(candidates)
            stored = image.device.read_line(line)
            bit = rng.randrange(CACHE_LINE_SIZE * 8)
            flipped = bytearray(stored.payload)
            flipped[bit // 8] ^= 1 << (bit % 8)
            image.device.persist_line(line, bytes(flipped), stored.encrypted_with)
            events.append(
                FaultEvent(
                    model=self.name,
                    kind="bit-flip",
                    address=line,
                    detail="bit %d of the stored line" % bit,
                )
            )
        return events

    def _flip_counters(self, image, rng: random.Random) -> List[FaultEvent]:
        candidates = sorted(image.counter_store.touched_lines())
        if not candidates:
            return []
        events: List[FaultEvent] = []
        for _ in range(self.flips):
            line = rng.choice(candidates)
            value = image.counter_store.read(line)
            bit = rng.randrange(COUNTER_LIMIT.bit_length() - 1)
            image.counter_store.write(line, value ^ (1 << bit))
            events.append(
                FaultEvent(
                    model=self.name,
                    kind="bit-flip",
                    address=line,
                    detail="bit %d of the architectural counter" % bit,
                )
            )
        return events


class CounterCorruption(FaultModel):
    """Whole counter values replaced with garbage.

    Unlike :class:`BitFlip` (which may land within a counter-recovery
    search window) the corrupted value is displaced far beyond any
    bounded lag, modeling lost counter blocks that only detection —
    never search — can handle.
    """

    name = "counter-corruption"

    #: Displacement floor; far above any counter-recovery search lag.
    MIN_DISPLACEMENT = 1 << 16

    def __init__(self, lines: int = 1) -> None:
        require(lines >= 1, "counter-corruption needs at least one line")
        self.lines = lines

    def params(self) -> Dict[str, object]:
        return {"lines": self.lines}

    def apply(self, image, rng: random.Random) -> List[FaultEvent]:
        candidates = sorted(image.counter_store.touched_lines())
        if not candidates:
            return []
        events: List[FaultEvent] = []
        chosen = rng.sample(candidates, min(self.lines, len(candidates)))
        for line in sorted(chosen):
            value = image.counter_store.read(line)
            displaced = value + rng.randrange(
                self.MIN_DISPLACEMENT, self.MIN_DISPLACEMENT * 4
            )
            image.counter_store.write(line, displaced % COUNTER_LIMIT)
            events.append(
                FaultEvent(
                    model=self.name,
                    kind="counter-corruption",
                    address=line,
                    detail="counter %d replaced by %d" % (value, displaced),
                )
            )
        return events


class DroppedADRDrain(FaultModel):
    """ADR energy reserve exhausted after draining ``budget`` entries.

    The effect happens while the crash image is *built*: the injector
    passes ``adr_budget`` to the journal reconstruction, which stops
    draining ready-but-undrained write-queue entries once the budget is
    spent.  Because the budget is an energy property, it can split a
    counter-atomic pair — the exact torn-pair state ready bits exist to
    prevent, now reachable for testing.

    ``apply`` only reports how much drain work went unfunded; the
    mutation itself already happened during reconstruction.
    """

    name = "dropped-adr"

    def __init__(self, budget: int = 0) -> None:
        require(budget >= 0, "ADR budget cannot be negative")
        self.budget = budget
        self.adr_budget = budget

    def params(self) -> Dict[str, object]:
        return {"budget": self.budget}

    def apply(self, image, rng: random.Random) -> List[FaultEvent]:
        pending = image.adr_pending
        dropped = max(0, pending - self.budget)
        if dropped == 0:
            return []
        return [
            FaultEvent(
                model=self.name,
                kind="dropped-drain",
                address=0,
                detail="%d of %d ready entries lost (budget %d)"
                % (dropped, pending, self.budget),
            )
        ]
