"""Hash Table: random inserts into a persistent hash table (§6.2).

Open addressing with linear probing at bucket (cache line) granularity:
each 64 B bucket line holds four (key, value) pairs of 8 bytes each.  An
insert probes bucket lines (emitting LOADs for each probe), then writes
the pair into the first free slot inside one transaction.
"""

from __future__ import annotations

import random
from typing import Optional, Tuple

from ..config import CACHE_LINE_SIZE
from ..errors import WorkloadError
from .base import TxnRecorder, Workload, WorkloadParams, zipf_index

_PAIRS_PER_BUCKET = 4  # 4 * (8 B key + 8 B value) = 64 B
_EMPTY_KEY = 0


def _mix(key: int) -> int:
    """64-bit finalizer (xorshift-multiply) for bucket selection."""
    key &= (1 << 64) - 1
    key ^= key >> 33
    key = (key * 0xFF51AFD7ED558CCD) & ((1 << 64) - 1)
    key ^= key >> 33
    return key


class HashTableWorkload(Workload):
    """Inserts random values into a persistent hash table."""

    name = "hash"

    def __init__(self, params: WorkloadParams = None) -> None:  # type: ignore[assignment]
        super().__init__(params)
        buckets = max(8, self.params.footprint_bytes // CACHE_LINE_SIZE)
        # Keep the table at most ~half full so probes terminate fast.
        needed = (self.params.operations * 2) // _PAIRS_PER_BUCKET + 8
        self.num_buckets = max(buckets, needed)
        self.base = 0
        self._occupancy = 0

    def _bucket_address(self, bucket: int) -> int:
        return self.base + (bucket % self.num_buckets) * CACHE_LINE_SIZE

    def populate(self, recorder: TxnRecorder, rng: random.Random) -> None:
        arena = getattr(recorder.txns, "arena", None)
        if arena is None:
            raise WorkloadError("transaction mechanism lacks an arena")
        self.base = arena.heap.alloc(self.num_buckets * CACHE_LINE_SIZE)
        # Empty table: all-zero lines are already the initial NVM state,
        # so no populate transactions are needed.

    def _find_slot(
        self, recorder: TxnRecorder, key: int
    ) -> Optional[Tuple[int, int]]:
        """Probe for a free slot; returns (bucket address, pair index)."""
        start = _mix(key) % self.num_buckets
        for probe in range(self.num_buckets):
            bucket_address = self._bucket_address(start + probe)
            line = recorder.read_line(bucket_address)
            for pair in range(_PAIRS_PER_BUCKET):
                offset = pair * 16
                existing = int.from_bytes(line[offset : offset + 8], "little")
                if existing == _EMPTY_KEY or existing == key:
                    return (bucket_address, pair)
        return None

    def run_operations(self, recorder: TxnRecorder, rng: random.Random) -> int:
        operations = 0
        remaining = self.params.operations
        while remaining > 0:
            batch = min(self.params.ops_per_txn, remaining)
            recorder.begin()
            for _ in range(batch):
                if self.params.zipf_alpha > 0:
                    # Skewed keys: draw from a hot subspace so bucket
                    # (and counter-line) reuse mirrors real key mixes.
                    key = (
                        zipf_index(rng, 1 << 24, self.params.zipf_alpha) * 2 + 1
                    )
                else:
                    key = rng.getrandbits(48) | 1  # never the empty marker
                slot = self._find_slot(recorder, key)
                if slot is None:
                    raise WorkloadError("hash table full; grow footprint")
                bucket_address, pair = slot
                was_empty = (
                    recorder.model.read_u64(bucket_address + pair * 16) == _EMPTY_KEY
                )
                recorder.write_u64(bucket_address + pair * 16, key)
                recorder.write_u64(bucket_address + pair * 16 + 8, _mix(key) or 1)
                if was_empty:
                    self._occupancy += 1
                operations += 1
            recorder.commit()
            remaining -= batch
        return operations
