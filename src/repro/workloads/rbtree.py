"""Red-Black Tree: random inserts into a persistent RB-tree (§6.2).

A textbook red-black tree whose nodes are single cache lines::

    [ key u64 | value u64 | left u64 | right u64 | parent u64 | color u64 | pad ]

Insertion performs the standard BST descent (emitting LOADs per visited
node) followed by recolor/rotate fix-ups; every node whose fields
change is rewritten through the recorder inside the transaction.
Rotations touch several nodes per insert, which is why RB-Tree carries
one of the highest counter-atomic write fractions in the paper's
scalability discussion (§6.3.2).
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional

from ..config import CACHE_LINE_SIZE
from ..errors import WorkloadError
from .base import TxnRecorder, Workload, WorkloadParams

_RED = 0
_BLACK = 1

_KEY = 0
_VALUE = 8
_LEFT = 16
_RIGHT = 24
_PARENT = 32
_COLOR = 40


class _Node:
    __slots__ = ("address", "key", "value", "left", "right", "parent", "color")

    def __init__(self, address: int, key: int, value: int) -> None:
        self.address = address
        self.key = key
        self.value = value
        self.left: Optional["_Node"] = None
        self.right: Optional["_Node"] = None
        self.parent: Optional["_Node"] = None
        self.color = _RED


class RBTreeWorkload(Workload):
    """Inserts random keys into a persistent red-black tree."""

    name = "rbtree"

    def __init__(self, params: WorkloadParams = None) -> None:  # type: ignore[assignment]
        super().__init__(params)
        self.meta = 0  # line holding the root pointer
        self.root: Optional[_Node] = None
        self._arena = None
        self._dirty: List[_Node] = []

    # -- persistence helpers ---------------------------------------------------

    def _mark_dirty(self, node: Optional[_Node]) -> None:
        if node is not None and node not in self._dirty:
            self._dirty.append(node)

    def _flush_dirty(self, recorder: TxnRecorder) -> None:
        for node in self._dirty:
            address = node.address
            recorder.write_u64(address + _KEY, node.key)
            recorder.write_u64(address + _VALUE, node.value)
            recorder.write_u64(address + _LEFT, node.left.address if node.left else 0)
            recorder.write_u64(address + _RIGHT, node.right.address if node.right else 0)
            recorder.write_u64(address + _PARENT, node.parent.address if node.parent else 0)
            recorder.write_u64(address + _COLOR, node.color)
        self._dirty = []

    # -- workload interface -------------------------------------------------------

    def populate(self, recorder: TxnRecorder, rng: random.Random) -> None:
        arena = getattr(recorder.txns, "arena", None)
        if arena is None:
            raise WorkloadError("transaction mechanism lacks an arena")
        self._arena = arena
        self.meta = arena.heap.alloc_lines(1)
        recorder.begin()
        recorder.write_u64(self.meta, 0)
        recorder.commit()
        # Pre-grow the tree so measured inserts traverse a realistic
        # depth (footprint-driven, batched to keep the trace compact).
        prepopulate = self.params.footprint_bytes // (4 * CACHE_LINE_SIZE)
        inserted = 0
        while inserted < prepopulate:
            batch = min(8, prepopulate - inserted)
            recorder.begin()
            for _ in range(batch):
                key = rng.getrandbits(32) | 1
                self._insert(recorder, key, _mix_value(key))
                inserted += 1
            recorder.commit()

    def run_operations(self, recorder: TxnRecorder, rng: random.Random) -> int:
        operations = 0
        remaining = self.params.operations
        while remaining > 0:
            batch = min(self.params.ops_per_txn, remaining)
            recorder.begin()
            for _ in range(batch):
                key = rng.getrandbits(32) | 1
                self._insert(recorder, key, _mix_value(key))
                operations += 1
            recorder.commit()
            remaining -= batch
        return operations

    # -- red-black algorithm ------------------------------------------------------------

    def _insert(self, recorder: TxnRecorder, key: int, value: int) -> None:
        address = self._arena.heap.alloc_lines(1)
        node = _Node(address, key, value)
        # BST descent (LOAD per visited node).
        parent: Optional[_Node] = None
        cursor = self.root
        while cursor is not None:
            recorder.read_line(cursor.address)
            parent = cursor
            cursor = cursor.left if key < cursor.key else cursor.right
        node.parent = parent
        old_root = self.root
        if parent is None:
            self.root = node
        elif key < parent.key:
            parent.left = node
            self._mark_dirty(parent)
        else:
            parent.right = node
            self._mark_dirty(parent)
        self._mark_dirty(node)
        self._fixup(node)
        self._flush_dirty(recorder)
        if self.root is not old_root:
            recorder.write_u64(self.meta, self.root.address if self.root else 0)

    def _rotate_left(self, pivot: _Node) -> None:
        child = pivot.right
        assert child is not None
        pivot.right = child.left
        if child.left is not None:
            child.left.parent = pivot
            self._mark_dirty(child.left)
        child.parent = pivot.parent
        if pivot.parent is None:
            self.root = child
        elif pivot is pivot.parent.left:
            pivot.parent.left = child
            self._mark_dirty(pivot.parent)
        else:
            pivot.parent.right = child
            self._mark_dirty(pivot.parent)
        child.left = pivot
        pivot.parent = child
        self._mark_dirty(pivot)
        self._mark_dirty(child)

    def _rotate_right(self, pivot: _Node) -> None:
        child = pivot.left
        assert child is not None
        pivot.left = child.right
        if child.right is not None:
            child.right.parent = pivot
            self._mark_dirty(child.right)
        child.parent = pivot.parent
        if pivot.parent is None:
            self.root = child
        elif pivot is pivot.parent.right:
            pivot.parent.right = child
            self._mark_dirty(pivot.parent)
        else:
            pivot.parent.left = child
            self._mark_dirty(pivot.parent)
        child.right = pivot
        pivot.parent = child
        self._mark_dirty(pivot)
        self._mark_dirty(child)

    def _fixup(self, node: _Node) -> None:
        while node.parent is not None and node.parent.color == _RED:
            parent = node.parent
            grandparent = parent.parent
            if grandparent is None:
                break
            if parent is grandparent.left:
                uncle = grandparent.right
                if uncle is not None and uncle.color == _RED:
                    parent.color = _BLACK
                    uncle.color = _BLACK
                    grandparent.color = _RED
                    self._mark_dirty(parent)
                    self._mark_dirty(uncle)
                    self._mark_dirty(grandparent)
                    node = grandparent
                else:
                    if node is parent.right:
                        node = parent
                        self._rotate_left(node)
                        parent = node.parent
                        assert parent is not None
                    parent.color = _BLACK
                    grandparent.color = _RED
                    self._mark_dirty(parent)
                    self._mark_dirty(grandparent)
                    self._rotate_right(grandparent)
            else:
                uncle = grandparent.left
                if uncle is not None and uncle.color == _RED:
                    parent.color = _BLACK
                    uncle.color = _BLACK
                    grandparent.color = _RED
                    self._mark_dirty(parent)
                    self._mark_dirty(uncle)
                    self._mark_dirty(grandparent)
                    node = grandparent
                else:
                    if node is parent.left:
                        node = parent
                        self._rotate_right(node)
                        parent = node.parent
                        assert parent is not None
                    parent.color = _BLACK
                    grandparent.color = _RED
                    self._mark_dirty(parent)
                    self._mark_dirty(grandparent)
                    self._rotate_left(grandparent)
        if self.root is not None and self.root.color != _BLACK:
            self.root.color = _BLACK
            self._mark_dirty(self.root)

    # -- invariant helpers (model side) --------------------------------------------------

    def check_invariants(self) -> None:
        """Raise WorkloadError if red-black invariants are broken."""
        if self.root is None:
            return
        if self.root.color != _BLACK:
            raise WorkloadError("root is not black")

        def walk(node: Optional[_Node]) -> int:
            if node is None:
                return 1
            if node.color == _RED:
                for child in (node.left, node.right):
                    if child is not None and child.color == _RED:
                        raise WorkloadError("red node has a red child")
            left_black = walk(node.left)
            right_black = walk(node.right)
            if left_black != right_black:
                raise WorkloadError("black-height mismatch")
            return left_black + (1 if node.color == _BLACK else 0)

        walk(self.root)

    def inorder_keys(self) -> List[int]:
        result: List[int] = []

        def visit(node: Optional[_Node]) -> None:
            if node is None:
                return
            visit(node.left)
            result.append(node.key)
            visit(node.right)

        visit(self.root)
        return result


def _mix_value(key: int) -> int:
    key &= (1 << 64) - 1
    key ^= key >> 31
    key = (key * 0x9E3779B97F4A7C15) & ((1 << 64) - 1)
    return key or 1
