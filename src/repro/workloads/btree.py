"""B-Tree: random inserts into a persistent B-tree (paper §6.2).

A real B-tree of minimum degree ``t`` whose nodes are persistent
objects.  Node layout (two cache lines, 128 B)::

    line 0: [ nkeys u64 | is_leaf u64 | keys[6] u64 ]
    line 1: [ children[7] u64 | value_seed u64 ]

(maximum 6 keys / 7 children per node, i.e. minimum degree t = 3 with
a 2t-1 = 5 key split threshold kept one below the layout cap so a
split target always fits.)

Traversal emits LOADs line by line; structural writes (key shifts,
splits, new nodes) run inside the enclosing transaction, so a single
insert may touch several node lines along the root-to-leaf path —
exactly the write pattern that makes trees interesting in Figure 12.
"""

from __future__ import annotations

import random
from typing import List, Optional

from ..config import CACHE_LINE_SIZE
from ..errors import WorkloadError
from .base import TxnRecorder, Workload, WorkloadParams

_MAX_KEYS = 5  # split when a node reaches this many keys
_MAX_CHILDREN = _MAX_KEYS + 1
_NODE_BYTES = 2 * CACHE_LINE_SIZE

_NKEYS = 0
_ISLEAF = 8
_KEYS = 16  # 6 slots available, _MAX_KEYS used
_CHILDREN = CACHE_LINE_SIZE  # second line, 7 slots available


class _Node:
    """In-model mirror of one persistent B-tree node."""

    __slots__ = ("address", "keys", "children", "is_leaf")

    def __init__(self, address: int, is_leaf: bool) -> None:
        self.address = address
        self.keys: List[int] = []
        self.children: List[int] = []  # node addresses
        self.is_leaf = is_leaf


class BTreeWorkload(Workload):
    """Inserts random keys into a persistent B-tree."""

    name = "btree"

    def __init__(self, params: WorkloadParams = None) -> None:  # type: ignore[assignment]
        super().__init__(params)
        self.meta = 0  # line holding the root pointer
        self.root_address = 0
        self._nodes: dict = {}
        self._arena = None

    # -- persistence helpers ------------------------------------------------

    def _alloc_node(self, is_leaf: bool) -> _Node:
        address = self._arena.heap.alloc(_NODE_BYTES)
        node = _Node(address, is_leaf)
        self._nodes[address] = node
        return node

    def _flush_node(self, recorder: TxnRecorder, node: _Node) -> None:
        """Write the node's persistent image through the recorder."""
        recorder.write_u64(node.address + _NKEYS, len(node.keys))
        recorder.write_u64(node.address + _ISLEAF, 1 if node.is_leaf else 0)
        for slot in range(_MAX_KEYS + 1):
            key = node.keys[slot] if slot < len(node.keys) else 0
            recorder.write_u64(node.address + _KEYS + slot * 8, key)
        for slot in range(_MAX_CHILDREN + 1):
            child = node.children[slot] if slot < len(node.children) else 0
            recorder.write_u64(node.address + _CHILDREN + slot * 8, child)

    def _load_node(self, recorder: TxnRecorder, node: _Node) -> None:
        """Emit the LOADs a traversal of this node performs."""
        recorder.read_line(node.address)
        if not node.is_leaf:
            recorder.read_line(node.address + CACHE_LINE_SIZE)

    # -- workload interface ----------------------------------------------------

    def populate(self, recorder: TxnRecorder, rng: random.Random) -> None:
        arena = getattr(recorder.txns, "arena", None)
        if arena is None:
            raise WorkloadError("transaction mechanism lacks an arena")
        self._arena = arena
        self.meta = arena.heap.alloc_lines(1)
        recorder.begin()
        root = self._alloc_node(is_leaf=True)
        self._flush_node(recorder, root)
        self.root_address = root.address
        recorder.write_u64(self.meta, root.address)
        recorder.commit()
        # Pre-grow the tree so measured inserts traverse a realistic
        # depth (footprint-driven, batched to keep the trace compact).
        prepopulate = self.params.footprint_bytes // (2 * _NODE_BYTES)
        inserted = 0
        while inserted < prepopulate:
            batch = min(16, prepopulate - inserted)
            recorder.begin()
            for _ in range(batch):
                self._insert(recorder, rng.getrandbits(32) | 1)
                inserted += 1
            recorder.commit()

    def run_operations(self, recorder: TxnRecorder, rng: random.Random) -> int:
        operations = 0
        remaining = self.params.operations
        while remaining > 0:
            batch = min(self.params.ops_per_txn, remaining)
            recorder.begin()
            for _ in range(batch):
                key = rng.getrandbits(32) | 1
                self._insert(recorder, key)
                operations += 1
            recorder.commit()
            remaining -= batch
        return operations

    # -- B-tree algorithm ---------------------------------------------------------

    def _insert(self, recorder: TxnRecorder, key: int) -> None:
        root = self._nodes[self.root_address]
        if len(root.keys) >= _MAX_KEYS:
            new_root = self._alloc_node(is_leaf=False)
            new_root.children.append(root.address)
            self._split_child(recorder, new_root, 0)
            self._flush_node(recorder, new_root)
            self.root_address = new_root.address
            recorder.write_u64(self.meta, new_root.address)
            root = new_root
        self._insert_nonfull(recorder, root, key)

    def _split_child(self, recorder: TxnRecorder, parent: _Node, index: int) -> None:
        full = self._nodes[parent.children[index]]
        sibling = self._alloc_node(is_leaf=full.is_leaf)
        middle = len(full.keys) // 2
        median = full.keys[middle]
        sibling.keys = full.keys[middle + 1 :]
        full_keys = full.keys[:middle]
        if not full.is_leaf:
            sibling.children = full.children[middle + 1 :]
            full.children = full.children[: middle + 1]
        full.keys = full_keys
        parent.keys.insert(index, median)
        parent.children.insert(index + 1, sibling.address)
        self._flush_node(recorder, full)
        self._flush_node(recorder, sibling)
        self._flush_node(recorder, parent)

    def _insert_nonfull(self, recorder: TxnRecorder, node: _Node, key: int) -> None:
        self._load_node(recorder, node)
        if node.is_leaf:
            position = self._position(node, key)
            node.keys.insert(position, key)
            self._flush_node(recorder, node)
            return
        position = self._position(node, key)
        child = self._nodes[node.children[position]]
        if len(child.keys) >= _MAX_KEYS:
            self._split_child(recorder, node, position)
            if key > node.keys[position]:
                position += 1
            child = self._nodes[node.children[position]]
        self._insert_nonfull(recorder, child, key)

    @staticmethod
    def _position(node: _Node, key: int) -> int:
        position = 0
        while position < len(node.keys) and key > node.keys[position]:
            position += 1
        return position

    # -- verification helpers ---------------------------------------------------------

    def inorder_keys(self) -> List[int]:
        """All keys in sorted order (model-side invariant checking)."""
        result: List[int] = []

        def visit(address: int) -> None:
            node = self._nodes[address]
            if node.is_leaf:
                result.extend(node.keys)
                return
            for index, key in enumerate(node.keys):
                visit(node.children[index])
                result.append(key)
            visit(node.children[len(node.keys)])

        visit(self.root_address)
        return result
