"""The five evaluation workloads (paper Section 6.2).

Each workload manipulates a persistent data structure through the
transactional layer, generating a per-core trace plus the bookkeeping
(per-transaction pre/post images) that the crash checker uses to decide
whether a recovered state is consistent.

* Array Swap — swaps random items in a persistent array,
* Queue — random en/dequeues on a persistent circular queue,
* Hash Table — random inserts into a persistent hash table,
* B-Tree — random inserts into a persistent B-tree,
* Red-Black Tree — random inserts into a persistent red-black tree.
"""

from .base import (
    LineModel,
    PrefixValidator,
    TxnRecorder,
    Workload,
    WorkloadParams,
    WorkloadRun,
)
from .array_swap import ArraySwapWorkload
from .queue import QueueWorkload
from .hashtable import HashTableWorkload
from .mixed import MixedKVWorkload
from .btree import BTreeWorkload
from .rbtree import RBTreeWorkload
from .registry import WORKLOADS, get_workload, list_workloads

__all__ = [
    "LineModel",
    "PrefixValidator",
    "TxnRecorder",
    "Workload",
    "WorkloadParams",
    "WorkloadRun",
    "ArraySwapWorkload",
    "QueueWorkload",
    "HashTableWorkload",
    "MixedKVWorkload",
    "BTreeWorkload",
    "RBTreeWorkload",
    "WORKLOADS",
    "get_workload",
    "list_workloads",
]
