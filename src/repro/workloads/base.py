"""Workload infrastructure: line models, recording, crash validation.

A workload maintains a *plaintext model* of its persistent structure
(the authoritative intended memory contents), emits the corresponding
trace operations through a transaction mechanism, and records each
transaction's pre/post line images.  After a crash, the recorded
history lets the validator decide whether the recovered memory equals a
*consistent prefix* of the transaction sequence — the paper's
definition of crash consistency.
"""

from __future__ import annotations

import abc
import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..config import CACHE_LINE_SIZE
from ..crash.recovery import RecoveredMemory
from ..crash.session import RecoveryContext
from ..errors import DecryptionFailure, TransactionError, WorkloadError
from ..sim.trace import TraceBuilder
from ..txn.heap import CoreArena
from ..txn.manager import LineTransactions, apply_line_writes
from ..txn.checksum_undo import recover_checksummed_undo
from ..txn.redolog import recover_redo_log
from ..txn.undolog import UndoLogTransactions, recover_undo_log
from ..utils.bitops import align_down, bytes_to_u64, u64_to_bytes

_ZERO_LINE = bytes(CACHE_LINE_SIZE)


class LineModel:
    """Sparse plaintext model of persistent memory at line granularity."""

    def __init__(self) -> None:
        self._lines: Dict[int, bytearray] = {}

    def line(self, line_address: int) -> bytes:
        stored = self._lines.get(line_address)
        return bytes(stored) if stored is not None else _ZERO_LINE

    def _mutable_line(self, line_address: int) -> bytearray:
        stored = self._lines.get(line_address)
        if stored is None:
            stored = bytearray(CACHE_LINE_SIZE)
            self._lines[line_address] = stored
        return stored

    def read_u64(self, address: int) -> int:
        line = align_down(address, CACHE_LINE_SIZE)
        return bytes_to_u64(self.line(line), address - line)

    def write_u64(self, address: int, value: int) -> int:
        """Update the model; returns the affected line address."""
        line = align_down(address, CACHE_LINE_SIZE)
        stored = self._mutable_line(line)
        stored[address - line : address - line + 8] = u64_to_bytes(value)
        return line

    def write_bytes(self, address: int, data: bytes) -> List[int]:
        """Write bytes (may span lines); returns affected line addresses."""
        touched: List[int] = []
        offset = 0
        while offset < len(data):
            position = address + offset
            line = align_down(position, CACHE_LINE_SIZE)
            start = position - line
            take = min(len(data) - offset, CACHE_LINE_SIZE - start)
            stored = self._mutable_line(line)
            stored[start : start + take] = data[offset : offset + take]
            if not touched or touched[-1] != line:
                touched.append(line)
            offset += take
        return touched

    def touched_lines(self) -> List[int]:
        return sorted(self._lines)

    def snapshot(self) -> Dict[int, bytes]:
        return {address: bytes(data) for address, data in self._lines.items()}


@dataclass
class RecordedTxn:
    """Pre/post images of one committed transaction."""

    index: int
    writes: List[Tuple[int, bytes, bytes]]  # (line, old, new)


@dataclass
class WorkloadRun:
    """Everything one generated workload trace exposes to experiments."""

    name: str
    arena: CoreArena
    initial_image: Dict[int, bytes]
    history: List[RecordedTxn]
    final_model: LineModel
    mechanism: str
    operations: int

    def tracked_lines(self) -> Set[int]:
        lines: Set[int] = set(self.initial_image)
        for txn in self.history:
            for line, _old, _new in txn.writes:
                lines.add(line)
        return lines


class TxnRecorder:
    """Bridges a workload's model mutations into recorded transactions.

    Usage::

        recorder.begin()
        recorder.read_u64(addr)          # emits a LOAD, returns model value
        recorder.write_u64(addr, value)  # stages a model + memory update
        recorder.commit()                # emits the full txn protocol
    """

    def __init__(
        self,
        builder: TraceBuilder,
        txns: LineTransactions,
        model: LineModel,
    ) -> None:
        self.builder = builder
        self.txns = txns
        self.model = model
        self.history: List[RecordedTxn] = []
        self._staged: Optional[Dict[int, bytes]] = None  # line -> pre-image

    # -- reads ------------------------------------------------------------

    #: Non-memory work modeled per structure-level read (pointer
    #: chasing, comparisons); see the rationale in repro.txn.undolog.
    READ_COMPUTE_NS = 14.0

    def read_u64(self, address: int) -> int:
        """Model read that also emits the timing LOAD."""
        self.builder.compute(self.READ_COMPUTE_NS)
        self.builder.load(address, 8)
        return self.model.read_u64(address)

    def read_line(self, line_address: int) -> bytes:
        self.builder.compute(self.READ_COMPUTE_NS)
        self.builder.load(line_address, CACHE_LINE_SIZE)
        return self.model.line(line_address)

    # -- transactional writes -----------------------------------------------

    def begin(self) -> None:
        if self._staged is not None:
            raise TransactionError("recorder transaction already open")
        self._staged = {}

    def _stage_line(self, line_address: int) -> None:
        assert self._staged is not None
        if line_address not in self._staged:
            self._staged[line_address] = self.model.line(line_address)

    def write_u64(self, address: int, value: int) -> None:
        if self._staged is None:
            raise TransactionError("write outside a recorder transaction")
        line = align_down(address, CACHE_LINE_SIZE)
        self._stage_line(line)
        self.model.write_u64(address, value)

    def write_bytes(self, address: int, data: bytes) -> None:
        if self._staged is None:
            raise TransactionError("write outside a recorder transaction")
        first = align_down(address, CACHE_LINE_SIZE)
        last = align_down(address + len(data) - 1, CACHE_LINE_SIZE)
        for line in range(first, last + CACHE_LINE_SIZE, CACHE_LINE_SIZE):
            self._stage_line(line)
        self.model.write_bytes(address, data)

    def commit(self) -> RecordedTxn:
        if self._staged is None:
            raise TransactionError("no open recorder transaction")
        writes = [
            (line, old, self.model.line(line))
            for line, old in sorted(self._staged.items())
        ]
        # Drop no-op writes (value unchanged): they would still be
        # logged by a naive implementation, but the workloads only
        # stage lines they actually modify.
        writes = [(line, old, new) for line, old, new in writes if old != new]
        apply_line_writes(self.txns, writes)
        recorded = RecordedTxn(index=len(self.history), writes=writes)
        self.history.append(recorded)
        self._staged = None
        return recorded

    def abort(self) -> None:
        """Discard a staged transaction (model must be untouched)."""
        if self._staged:
            raise TransactionError("cannot abort after model mutations")
        self._staged = None


@dataclass
class ValidationVerdict:
    """Structured outcome of one post-crash validation.

    Separates what a real system could *observe* from what only the
    simulator's oracle knows: ``detected`` problems were reported
    through a detection channel (decryption failures, corrupt-record
    checks), while ``silent`` problems are states recovery accepted
    without complaint that nonetheless fail the prefix oracle — the
    dangerous bucket a fault campaign exists to find.
    """

    consistent: bool
    detected: List[str] = field(default_factory=list)
    silent: List[str] = field(default_factory=list)
    #: Largest history prefix the recovered state matches (None = none).
    matched_prefix: Optional[int] = None
    #: Smallest prefix commit durability requires at this crash time.
    required_prefix: int = 0

    @property
    def problems(self) -> List[str]:
        return self.detected + self.silent

    @property
    def durability_lost(self) -> bool:
        """Consistent-looking state that dropped an acknowledged commit."""
        return (
            self.matched_prefix is not None
            and self.matched_prefix < self.required_prefix
        )


class PrefixValidator:
    """Checks a recovered memory against the transaction history.

    Consistency criterion: after running the mechanism's recovery
    procedure, every tracked line must equal its value in the state
    reached by applying some prefix ``txns[0..j]`` to the initial
    image.  Additionally, any transaction whose commit completed before
    the crash (its ``txn_end`` trace time is known) must be included in
    that prefix — durability of acknowledged commits.
    """

    def __init__(
        self,
        run: WorkloadRun,
        txn_end_times: Optional[Sequence[float]] = None,
    ) -> None:
        self.run = run
        self.txn_end_times = list(txn_end_times) if txn_end_times is not None else None
        self._prefix_states = self._build_prefix_states()

    def _build_prefix_states(self) -> List[Dict[int, bytes]]:
        states: List[Dict[int, bytes]] = []
        current = dict(self.run.initial_image)
        states.append(dict(current))
        for txn in self.run.history:
            for line, _old, new in txn.writes:
                current[line] = new
            states.append(dict(current))
        return states

    def _min_required_prefix(self, crash_ns: float) -> int:
        if self.txn_end_times is None:
            return 0
        required = 0
        for index, end_ns in enumerate(self.txn_end_times):
            if end_ns <= crash_ns:
                required = index + 1
        return required

    def __call__(self, recovered: RecoveredMemory) -> List[str]:
        return self.classify(recovered).problems

    def classify(
        self,
        recovered: RecoveredMemory,
        context: Optional[RecoveryContext] = None,
    ) -> ValidationVerdict:
        """Full verdict: detected vs silent problems, prefix bookkeeping.

        Exceptions other than the mechanism's own detection channels
        (:class:`DecryptionFailure`, :class:`TransactionError`)
        propagate to the caller — a recovery procedure that crashes on
        a corrupt image is itself a finding, not a verdict.  That
        includes :class:`~repro.errors.NestedCrash` from an armed
        ``context``: an injected mid-recovery power failure is the
        session's to handle, never a verdict.
        """
        run = self.run
        minimum = self._min_required_prefix(recovered.image.crash_ns)
        verdict = ValidationVerdict(consistent=False, required_prefix=minimum)
        try:
            if run.mechanism == "undo":
                recover_undo_log(recovered, run.arena, context=context)
            elif run.mechanism == "redo":
                recover_redo_log(recovered, run.arena, context=context)
            elif run.mechanism == "checksum-undo":
                recover_checksummed_undo(recovered, run.arena, context=context)
            else:
                raise WorkloadError("unknown mechanism %r" % run.mechanism)
        except DecryptionFailure as failure:
            verdict.detected.append("recovery hit undecryptable line: %s" % failure)
            return verdict
        except TransactionError as failure:
            verdict.detected.append("recovery failed: %s" % failure)
            return verdict

        tracked = sorted(run.tracked_lines())
        recovered_values = {}
        for line in tracked:
            try:
                recovered_values[line] = recovered.read(line, CACHE_LINE_SIZE)
            except DecryptionFailure:
                verdict.detected.append(
                    "tracked line 0x%x undecryptable after recovery" % line
                )
        if verdict.detected:
            return verdict

        for j in range(len(self._prefix_states) - 1, -1, -1):
            state = self._prefix_states[j]
            if all(
                recovered_values[line] == state.get(line, _ZERO_LINE)
                for line in tracked
            ):
                verdict.matched_prefix = j
                break
        if verdict.matched_prefix is not None and verdict.matched_prefix >= minimum:
            verdict.consistent = True
            return verdict
        if verdict.matched_prefix is not None:
            verdict.silent.append(
                "recovered state matches no transaction prefix >= %d (crash at "
                "%.1f ns); best match is prefix %d — an acknowledged commit "
                "was lost" % (minimum, recovered.image.crash_ns, verdict.matched_prefix)
            )
        else:
            verdict.silent.append(
                "recovered state matches no transaction prefix >= %d (crash at %.1f ns)"
                % (minimum, recovered.image.crash_ns)
            )
        return verdict


@dataclass(frozen=True)
class WorkloadParams:
    """Common workload knobs (paper Section 6.2 defaults)."""

    operations: int = 50
    seed: int = 42
    #: Approximate structure footprint in bytes (Figure 15 sweeps this).
    footprint_bytes: int = 64 * 1024
    #: Batch size: operations grouped into one transaction (Figure 16
    #: grows transactions by batching more lines per commit).
    ops_per_txn: int = 1
    #: Value payload size in bytes for item-bearing structures.
    value_bytes: int = 8
    #: Access-skew exponent for index-choosing workloads (array, queue
    #: slots, hash keys): 0 = uniform random; larger values concentrate
    #: accesses on a hot subset, as real key distributions do.  The
    #: Figure 15 sweeps use a mild skew so the counter cache sees
    #: realistic reuse.
    zipf_alpha: float = 0.0

    def __post_init__(self) -> None:
        if self.operations <= 0:
            raise WorkloadError("workloads need at least one operation")
        if self.ops_per_txn <= 0:
            raise WorkloadError("ops_per_txn must be positive")
        if self.footprint_bytes < 4 * CACHE_LINE_SIZE:
            raise WorkloadError("footprint too small")
        if self.zipf_alpha < 0:
            raise WorkloadError("zipf_alpha cannot be negative")


def zipf_index(rng: random.Random, population: int, alpha: float) -> int:
    """Sample an index in [0, population) with Zipf-like skew.

    ``alpha = 0`` degenerates to uniform.  Uses the inverse-power
    transform ``floor(population * u**(1/(1-alpha')))`` shape, which is
    cheap and close enough for cache-behaviour studies.
    """
    if population <= 1:
        return 0
    if alpha <= 0:
        return rng.randrange(population)
    # Map alpha in (0, inf) to an exponent > 1 for the inverse transform;
    # the factor 2 makes alpha ~1-2 produce the strong head
    # concentration real key-popularity distributions show.
    exponent = 1.0 + 2.0 * alpha
    u = rng.random()
    index = int(population * (u ** exponent))
    return min(index, population - 1)


class Workload(abc.ABC):
    """Base class: generate a trace + history for one core."""

    name: str = "workload"

    def __init__(self, params: Optional[WorkloadParams] = None) -> None:
        self.params = params or WorkloadParams()

    @abc.abstractmethod
    def populate(self, recorder: TxnRecorder, rng: random.Random) -> None:
        """Build the initial structure (inside transactions)."""

    @abc.abstractmethod
    def run_operations(self, recorder: TxnRecorder, rng: random.Random) -> int:
        """Perform the measured operations; returns the count done."""

    def generate(
        self,
        builder: TraceBuilder,
        txns: LineTransactions,
        arena: CoreArena,
        mechanism: str = "undo",
    ) -> WorkloadRun:
        """Produce the full trace and bookkeeping for one core."""
        rng = random.Random(self.params.seed + arena.core_id * 7919)
        model = LineModel()
        recorder = TxnRecorder(builder, txns, model)
        self.populate(recorder, rng)
        operations = self.run_operations(recorder, rng)
        # Populate transactions stay in the history: a crash can land
        # inside them too, and the prefix check covers the whole run
        # starting from all-zero memory.
        return WorkloadRun(
            name=self.name,
            arena=arena,
            initial_image={},
            history=recorder.history,
            final_model=model,
            mechanism=mechanism,
            operations=operations,
        )
