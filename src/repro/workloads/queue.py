"""Queue: random en/dequeues on a persistent circular queue (§6.2).

Layout::

    meta line : [ head u64 | tail u64 | count u64 | capacity u64 ]
    slots     : one 8-byte item per slot, eight per line

An enqueue writes the slot line and the meta line; a dequeue writes
only the meta line.  The meta line is the structure's recoverability
pivot, which is why Queue shows a comparatively high fraction of
counter-atomic traffic in the paper's scalability discussion (§6.3.2).
"""

from __future__ import annotations

import random

from ..config import CACHE_LINE_SIZE
from ..errors import WorkloadError
from .base import TxnRecorder, Workload, WorkloadParams

_ITEM_BYTES = 8


class QueueWorkload(Workload):
    """Randomly enqueues/dequeues items on a persistent queue."""

    name = "queue"

    def __init__(self, params: WorkloadParams = None) -> None:  # type: ignore[assignment]
        super().__init__(params)
        self.capacity = max(16, self.params.footprint_bytes // _ITEM_BYTES)
        self.meta = 0
        self.slots = 0
        self._head = 0
        self._tail = 0
        self._count = 0
        self._next_value = 1

    def _slot_address(self, index: int) -> int:
        return self.slots + (index % self.capacity) * _ITEM_BYTES

    def populate(self, recorder: TxnRecorder, rng: random.Random) -> None:
        arena = getattr(recorder.txns, "arena", None)
        if arena is None:
            raise WorkloadError("transaction mechanism lacks an arena")
        self.meta = arena.heap.alloc_lines(1)
        self.slots = arena.heap.alloc(self.capacity * _ITEM_BYTES)
        recorder.begin()
        recorder.write_u64(self.meta + 0, 0)  # head
        recorder.write_u64(self.meta + 8, 0)  # tail
        recorder.write_u64(self.meta + 16, 0)  # count
        recorder.write_u64(self.meta + 24, self.capacity)
        recorder.commit()
        # Half-fill so dequeues have work from the start.
        prefill = self.capacity // 2
        index = 0
        while index < prefill:
            recorder.begin()
            for _ in range(min(32, prefill - index)):
                self._enqueue_inside(recorder)
                index += 1
            recorder.commit()

    def _enqueue_inside(self, recorder: TxnRecorder) -> None:
        recorder.write_u64(self._slot_address(self._tail), self._next_value)
        self._next_value += 1
        self._tail = (self._tail + 1) % self.capacity
        self._count += 1
        recorder.write_u64(self.meta + 8, self._tail)
        recorder.write_u64(self.meta + 16, self._count)

    def _dequeue_inside(self, recorder: TxnRecorder) -> None:
        recorder.read_u64(self._slot_address(self._head))
        self._head = (self._head + 1) % self.capacity
        self._count -= 1
        recorder.write_u64(self.meta + 0, self._head)
        recorder.write_u64(self.meta + 16, self._count)

    def run_operations(self, recorder: TxnRecorder, rng: random.Random) -> int:
        operations = 0
        remaining = self.params.operations
        while remaining > 0:
            batch = min(self.params.ops_per_txn, remaining)
            recorder.begin()
            for _ in range(batch):
                do_enqueue = rng.random() < 0.5
                if do_enqueue and self._count >= self.capacity:
                    do_enqueue = False
                if not do_enqueue and self._count == 0:
                    do_enqueue = True
                if do_enqueue:
                    self._enqueue_inside(recorder)
                else:
                    self._dequeue_inside(recorder)
                operations += 1
            recorder.commit()
            remaining -= batch
        return operations
