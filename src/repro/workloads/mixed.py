"""Mixed-operation key-value workload (beyond the paper's insert-only mix).

The paper's five microbenchmarks are write-dominated (§6.2 describes
inserts/swaps only).  Real persistent-memory applications interleave
lookups with updates, and the read/write mix changes which design costs
dominate: read-heavy mixes punish the co-located design's serialized
decryption, write-heavy mixes punish FCA's counter pairing.  This
workload makes the mix a parameter so experiments can sweep it.

Operations over an open-addressing table (same layout as
:mod:`repro.workloads.hashtable`):

* ``get``    — probe for a key inserted earlier (pure reads),
* ``put``    — insert or update a key (one transactional bucket write),
* ``delete`` — tombstone a key (one transactional bucket write).
"""

from __future__ import annotations

import random
from typing import List, Optional, Tuple

from ..config import CACHE_LINE_SIZE
from ..errors import WorkloadError
from .base import TxnRecorder, Workload, WorkloadParams, zipf_index

_PAIRS_PER_BUCKET = 4
_EMPTY_KEY = 0
_TOMBSTONE_KEY = (1 << 64) - 1


def _mix(key: int) -> int:
    key &= (1 << 64) - 1
    key ^= key >> 33
    key = (key * 0xFF51AFD7ED558CCD) & ((1 << 64) - 1)
    key ^= key >> 33
    return key


class MixedKVWorkload(Workload):
    """Configurable get/put/delete mix over a persistent hash table."""

    name = "mixed"

    def __init__(
        self,
        params: Optional[WorkloadParams] = None,
        get_fraction: float = 0.5,
        delete_fraction: float = 0.1,
    ) -> None:
        super().__init__(params)
        if not 0.0 <= get_fraction <= 1.0:
            raise WorkloadError("get fraction must be in [0, 1]")
        if not 0.0 <= delete_fraction <= 1.0 - get_fraction:
            raise WorkloadError("get + delete fractions must not exceed 1")
        self.get_fraction = get_fraction
        self.delete_fraction = delete_fraction
        buckets = max(16, self.params.footprint_bytes // CACHE_LINE_SIZE)
        needed = (self.params.operations * 2) // _PAIRS_PER_BUCKET + 8
        self.num_buckets = max(buckets, needed)
        self.base = 0
        self._live_keys: List[int] = []
        self.gets = 0
        self.puts = 0
        self.deletes = 0
        self.get_hits = 0

    # -- table mechanics -----------------------------------------------------

    def _bucket_address(self, bucket: int) -> int:
        return self.base + (bucket % self.num_buckets) * CACHE_LINE_SIZE

    def _probe(
        self, recorder: TxnRecorder, key: int, for_insert: bool
    ) -> Optional[Tuple[int, int]]:
        """Probe bucket lines; returns (bucket address, pair index).

        For inserts, tombstoned or empty slots are acceptable; for
        lookups, probing stops at the first truly empty slot.
        """
        start = _mix(key) % self.num_buckets
        first_free: Optional[Tuple[int, int]] = None
        for probe in range(self.num_buckets):
            bucket_address = self._bucket_address(start + probe)
            line = recorder.read_line(bucket_address)
            for pair in range(_PAIRS_PER_BUCKET):
                offset = pair * 16
                existing = int.from_bytes(line[offset : offset + 8], "little")
                if existing == key:
                    return (bucket_address, pair)
                if existing == _TOMBSTONE_KEY:
                    if first_free is None:
                        first_free = (bucket_address, pair)
                    continue
                if existing == _EMPTY_KEY:
                    if for_insert:
                        return first_free or (bucket_address, pair)
                    return None
        return first_free if for_insert else None

    # -- operations ---------------------------------------------------------------

    def _do_put(self, recorder: TxnRecorder, rng: random.Random) -> None:
        key = (rng.getrandbits(48) | 1) & (_TOMBSTONE_KEY - 1)
        slot = self._probe(recorder, key, for_insert=True)
        if slot is None:
            raise WorkloadError("mixed table full; grow footprint")
        bucket_address, pair = slot
        recorder.write_u64(bucket_address + pair * 16, key)
        recorder.write_u64(bucket_address + pair * 16 + 8, _mix(key) or 1)
        self._live_keys.append(key)
        self.puts += 1

    def _do_get(self, recorder: TxnRecorder, rng: random.Random) -> None:
        self.gets += 1
        if not self._live_keys:
            # Miss lookup on a random key.
            self._probe(recorder, rng.getrandbits(48) | 1, for_insert=False)
            return
        index = zipf_index(rng, len(self._live_keys), self.params.zipf_alpha)
        key = self._live_keys[index]
        slot = self._probe(recorder, key, for_insert=False)
        if slot is not None:
            self.get_hits += 1

    def _do_delete(self, recorder: TxnRecorder, rng: random.Random) -> None:
        if not self._live_keys:
            return
        index = rng.randrange(len(self._live_keys))
        key = self._live_keys.pop(index)
        slot = self._probe(recorder, key, for_insert=False)
        if slot is None:
            raise WorkloadError("live key %d vanished from the table" % key)
        bucket_address, pair = slot
        recorder.write_u64(bucket_address + pair * 16, _TOMBSTONE_KEY)
        recorder.write_u64(bucket_address + pair * 16 + 8, 0)
        self.deletes += 1

    # -- workload interface ------------------------------------------------------------

    def populate(self, recorder: TxnRecorder, rng: random.Random) -> None:
        arena = getattr(recorder.txns, "arena", None)
        if arena is None:
            raise WorkloadError("transaction mechanism lacks an arena")
        self.base = arena.heap.alloc(self.num_buckets * CACHE_LINE_SIZE)
        # Seed some keys so the first gets/deletes have targets.
        seed_count = max(4, self.params.operations // 4)
        inserted = 0
        while inserted < seed_count:
            recorder.begin()
            for _ in range(min(16, seed_count - inserted)):
                self._do_put(recorder, rng)
                inserted += 1
            recorder.commit()

    def run_operations(self, recorder: TxnRecorder, rng: random.Random) -> int:
        operations = 0
        remaining = self.params.operations
        while remaining > 0:
            batch = min(self.params.ops_per_txn, remaining)
            recorder.begin()
            for _ in range(batch):
                roll = rng.random()
                if roll < self.get_fraction:
                    self._do_get(recorder, rng)
                elif roll < self.get_fraction + self.delete_fraction:
                    self._do_delete(recorder, rng)
                else:
                    self._do_put(recorder, rng)
                operations += 1
            recorder.commit()
            remaining -= batch
        return operations
