"""Array Swap: swap random items in a persistent array (paper §6.2).

The array holds 8-byte items, eight per cache line.  Each operation
picks two random indices and swaps them inside one transaction (two
line updates when the items live in different lines, one otherwise).
With ``ops_per_txn > 1`` several swaps batch into one transaction —
the knob Figure 16 turns to grow transaction size.
"""

from __future__ import annotations

import random
from typing import List

from ..config import CACHE_LINE_SIZE
from ..errors import WorkloadError
from .base import TxnRecorder, Workload, WorkloadParams, zipf_index

_ITEM_BYTES = 8


class ArraySwapWorkload(Workload):
    """Swaps random items in a persistent array."""

    name = "array"

    def __init__(self, params: WorkloadParams = None) -> None:  # type: ignore[assignment]
        super().__init__(params)
        self.num_items = max(16, self.params.footprint_bytes // _ITEM_BYTES)
        self.base = 0  # assigned by populate via the arena heap

    def _item_address(self, index: int) -> int:
        return self.base + index * _ITEM_BYTES

    def populate(self, recorder: TxnRecorder, rng: random.Random) -> None:
        arena = getattr(recorder.txns, "arena", None)
        if arena is None:
            raise WorkloadError("transaction mechanism lacks an arena")
        self.base = arena.heap.alloc(self.num_items * _ITEM_BYTES)
        # Initialize in line-sized batches: identity permutation.
        items_per_line = CACHE_LINE_SIZE // _ITEM_BYTES
        index = 0
        while index < self.num_items:
            recorder.begin()
            for _ in range(min(64, (self.num_items - index + items_per_line - 1) // items_per_line)):
                for _ in range(items_per_line):
                    if index >= self.num_items:
                        break
                    recorder.write_u64(self._item_address(index), index + 1)
                    index += 1
                if index >= self.num_items:
                    break
            recorder.commit()

    def run_operations(self, recorder: TxnRecorder, rng: random.Random) -> int:
        operations = 0
        remaining = self.params.operations
        while remaining > 0:
            batch = min(self.params.ops_per_txn, remaining)
            recorder.begin()
            for _ in range(batch):
                first = zipf_index(rng, self.num_items, self.params.zipf_alpha)
                second = zipf_index(rng, self.num_items, self.params.zipf_alpha)
                left = recorder.read_u64(self._item_address(first))
                right = recorder.read_u64(self._item_address(second))
                recorder.write_u64(self._item_address(first), right)
                recorder.write_u64(self._item_address(second), left)
                operations += 1
            recorder.commit()
            remaining -= batch
        return operations
