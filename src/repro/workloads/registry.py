"""Workload registry: name -> class, in the paper's plot order."""

from __future__ import annotations

from typing import Dict, List, Optional, Type

from ..errors import WorkloadError
from .array_swap import ArraySwapWorkload
from .base import Workload, WorkloadParams
from .btree import BTreeWorkload
from .hashtable import HashTableWorkload
from .mixed import MixedKVWorkload
from .queue import QueueWorkload
from .rbtree import RBTreeWorkload

#: The five workloads in the order of the paper's figures.
WORKLOADS: Dict[str, Type[Workload]] = {
    ArraySwapWorkload.name: ArraySwapWorkload,
    QueueWorkload.name: QueueWorkload,
    HashTableWorkload.name: HashTableWorkload,
    BTreeWorkload.name: BTreeWorkload,
    RBTreeWorkload.name: RBTreeWorkload,
}

#: Extra workloads beyond the paper's five (not part of the figures).
EXTRA_WORKLOADS: Dict[str, Type[Workload]] = {
    MixedKVWorkload.name: MixedKVWorkload,
}


def list_workloads(include_extra: bool = False) -> List[str]:
    names = list(WORKLOADS)
    if include_extra:
        names.extend(EXTRA_WORKLOADS)
    return names


def get_workload(name: str, params: Optional[WorkloadParams] = None) -> Workload:
    """Instantiate a workload by evaluation name."""
    cls = WORKLOADS.get(name) or EXTRA_WORKLOADS.get(name)
    if cls is None:
        raise WorkloadError(
            "unknown workload %r; available: %s"
            % (name, ", ".join(list(WORKLOADS) + list(EXTRA_WORKLOADS)))
        )
    return cls(params)
