"""Crash-consistency sweeps: run, crash everywhere, verify recovery.

``sweep_crash_points`` is the workhorse behind the Table 1 / Figure 3 /
Figure 4 benches and the crash test suite: given a finished simulation
and a workload-level validator, it reconstructs the crash image at every
interesting instant, decrypts it, runs transaction recovery and asks the
validator whether the recovered state is consistent.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional

from ..sim.machine import SimulationResult
from .injector import CrashImage, CrashInjector
from .recovery import RecoveredMemory, RecoveryManager

#: A validator inspects a recovered memory and returns a list of
#: problem descriptions (empty = consistent).
Validator = Callable[[RecoveredMemory], List[str]]


@dataclass
class CrashOutcome:
    """Result of one injected crash."""

    crash_ns: float
    consistent: bool
    problems: List[str] = field(default_factory=list)
    undecryptable_lines: int = 0
    #: Non-strict reads that returned :class:`GarbageRead` data during
    #: recovery + validation — garbage a real system would consume.
    garbage_reads: int = 0


@dataclass
class CrashConsistencyReport:
    """Aggregate of a whole sweep."""

    design: str
    outcomes: List[CrashOutcome]

    @property
    def total(self) -> int:
        return len(self.outcomes)

    @property
    def consistent(self) -> int:
        return sum(1 for o in self.outcomes if o.consistent)

    @property
    def inconsistent(self) -> int:
        return self.total - self.consistent

    @property
    def all_consistent(self) -> bool:
        return self.inconsistent == 0

    @property
    def undecryptable_crashes(self) -> int:
        return sum(1 for o in self.outcomes if o.undecryptable_lines > 0)

    @property
    def garbage_reads(self) -> int:
        """Total garbage-tainted non-strict reads across the sweep."""
        return sum(o.garbage_reads for o in self.outcomes)

    def first_failure(self) -> Optional[CrashOutcome]:
        for outcome in self.outcomes:
            if not outcome.consistent:
                return outcome
        return None


def sweep_crash_points(
    result: SimulationResult,
    validator: Validator,
    max_points: Optional[int] = 200,
    include_midpoints: bool = True,
    adr: bool = True,
) -> CrashConsistencyReport:
    """Crash at every interesting instant and validate recovery.

    ``validator`` receives the decrypted post-crash memory and must
    return problem strings (empty list = consistent state).  The sweep
    covers both event instants (just-after semantics) and midpoints
    between events (in-flight pair states).  ``adr=False`` sweeps a
    machine whose failure drops the ADR drain entirely: only
    array-drained writes survive each crash.
    """
    injector = CrashInjector(result)
    per_kind = None if max_points is None else max(2, max_points // 2)
    times = injector.interesting_times(limit=per_kind)
    if include_midpoints:
        times = sorted(set(times) | set(injector.midpoint_times(limit=per_kind)))
    manager = RecoveryManager(result.config.encryption)
    encrypted = result.policy.encrypts
    outcomes: List[CrashOutcome] = []
    for crash_ns in times:
        image = injector.crash_at(crash_ns, adr=adr)
        recovered = manager.recover(image, encrypted=encrypted)
        problems = validator(recovered)
        outcomes.append(
            CrashOutcome(
                crash_ns=crash_ns,
                consistent=not problems,
                problems=problems,
                undecryptable_lines=len(recovered.garbage_lines),
                garbage_reads=recovered.garbage_reads,
            )
        )
    return CrashConsistencyReport(design=result.policy.name, outcomes=outcomes)
