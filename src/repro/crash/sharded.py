"""Multi-controller failures: crash a subset of shards mid-drain.

A power failure takes the whole machine down at one instant, but on a
sharded memory system (:class:`repro.mem.sharded.ShardedMemorySystem`)
the *ADR drain* that follows is per controller: each shard's reserve
flushes that shard's ready queue entries independently.  This module
models the failure mode the singleton stack cannot express — some
shards complete their drain while others die mid-drain — and the
recovery-side reconciliation it forces:

* :func:`shard_crash_image` builds the global crash image for a failure
  at ``crash_ns`` where ``failed_shards`` lost their ADR reserve
  (keeping only array-drained writes, optionally a partial
  ``adr_budget``) while the healthy shards drained normally.
* :func:`durable_commit_prefix` replays the cross-shard commit log
  (:class:`repro.persist.journal.CommitRecord`) against what each shard
  actually persisted, returning the longest prefix of commits whose
  touched-shard watermarks all survived — the linearizable acked
  prefix the machine may still claim after the failure.
* :func:`sweep_shard_failures` runs the whole loop: image, recovery,
  structural validation, and the reconciliation check that the
  recovered state never falls below the durable commit prefix (losing
  a commit the barrier proved durable would be silent corruption).

Uniform all-shard crashes need none of this: the coordinator's merged
journal makes the stock :class:`repro.crash.injector.CrashInjector`
sweep shards transparently.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Tuple

from ..crypto.counters import CounterStore
from ..crypto.integrity import IntegrityEngine
from ..errors import SimulationError
from ..nvm.device import NVMDevice
from ..persist.journal import CommitRecord, PersistJournal
from ..sim.machine import SimulationResult
from .injector import CrashImage, CrashInjector, uniform_sample


def _shard_journals(result: SimulationResult) -> List[PersistJournal]:
    controller = result.controller
    shard_journal = getattr(controller, "shard_journal", None)
    if shard_journal is None:
        raise SimulationError(
            "shard-subset crashes need a sharded memory system; "
            "run with config.shards >= 2"
        )
    return [shard_journal(s) for s in range(controller.shards)]


def shard_crash_image(
    result: SimulationResult,
    crash_ns: float,
    failed_shards: Iterable[int],
    adr_budget: Optional[int] = None,
) -> CrashImage:
    """Global crash image when ``failed_shards`` die mid-drain.

    Healthy shards reconstruct with the full ADR guarantee; failed
    shards keep only array-drained writes (plus at most ``adr_budget``
    ready entries if their reserve died partway).  Per-shard journals
    are already translated to the global address space, so the merged
    image feeds the stock recovery/validation stack unchanged.

    The integrity root (``+bmt`` designs) is computed over the
    *unbudgeted* ADR reconstruction of every shard, mirroring
    :meth:`CrashInjector._capture_integrity`: each shard's secure
    register acknowledged ready counters before power died, so counters
    its failed drain then dropped surface as a root mismatch.
    """
    controller = result.controller
    journals = _shard_journals(result)
    failed = frozenset(failed_shards)
    for shard in failed:
        if not 0 <= shard < len(journals):
            raise SimulationError("failed shard %d out of range" % shard)
    address_map = controller.address_map
    device = NVMDevice(address_map, track_wear=False)
    store = CounterStore(
        counter_region_base=address_map.counter_region_base,
        memory_size_bytes=address_map.memory_size_bytes,
    )
    adr_pending = 0
    covered: Dict[int, int] = {}
    for shard, journal in enumerate(journals):
        if shard in failed:
            data_lines, counters = journal.reconstruct(
                crash_ns, adr=adr_budget is not None, adr_budget=adr_budget
            )
        else:
            data_lines, counters = journal.reconstruct(crash_ns, adr=True)
            adr_pending += journal.adr_pending(crash_ns)
        for address, (payload, encrypted_with) in data_lines.items():
            device.persist_line(address, payload, encrypted_with)
        store_update = store.write
        for address, value in counters.items():
            store_update(address, value)
        if result.policy.integrity_tree:
            _, acked = journal.reconstruct(crash_ns, adr=True)
            covered.update(acked)
    device.line_writes = 0
    image = CrashImage(
        crash_ns=crash_ns,
        device=device,
        counter_store=store,
        design=result.policy.name,
        adr_pending=adr_pending,
    )
    if result.policy.integrity_tree:
        # Deferred import: repro.integrity.verifier imports this package.
        from ..integrity.tree import IntegrityTreeEngine

        tree = IntegrityTreeEngine(
            result.config.encryption,
            address_map,
            arity=result.config.integrity.arity,
        )
        image.secure_root = tree.root_over(covered)
        tag_engine = IntegrityEngine(result.config.encryption)
        tags: Dict[int, bytes] = {}
        for address in device.touched_lines():
            if not address_map.is_data_address(address):
                continue
            stored = device.read_line(address)
            tags[address] = tag_engine.tag(
                address, stored.encrypted_with, stored.payload
            )
        image.line_tags = tags
    return image


def _watermark_durable(
    journal: PersistJournal,
    watermark: float,
    crash_ns: float,
    adr: bool,
    adr_budget: Optional[int],
) -> bool:
    """Did everything this shard accepted up to ``watermark`` persist?

    Conservative: counts every record accepted by the watermark, even
    writes of unrelated in-flight transactions, so a ``True`` verdict
    is always a genuine durability guarantee.
    """
    if watermark > crash_ns:
        return False
    if adr and adr_budget is None:
        # Ticket acceptance == architecturally persistent under ADR.
        return True
    budget = adr_budget if adr else 0
    spent = 0
    for record in journal.records:
        if record.accept_ns > watermark:
            continue
        if record.drain_ns <= crash_ns:
            continue
        if budget is not None:
            if record.ready_ns > crash_ns:
                return False
            spent += 1
            if spent > budget:
                return False
        else:
            return False
    return True


def durable_commit_prefix(
    commits: Sequence[CommitRecord],
    journals: Sequence[PersistJournal],
    crash_ns: float,
    failed_shards: Iterable[int] = (),
    adr_budget: Optional[int] = None,
) -> List[CommitRecord]:
    """The longest acked prefix of the commit log that survived.

    A commit is durable when every shard it touched persisted up to the
    watermark the barrier recorded for it; the first commit that is not
    ends the prefix (later commits may have persisted by luck, but the
    linearizable contract only lets recovery claim the dense prefix).
    """
    failed = frozenset(failed_shards)
    prefix: List[CommitRecord] = []
    for commit in commits:
        if commit.commit_ns > crash_ns:
            break
        durable = True
        for shard, watermark in commit.shard_watermarks.items():
            adr = shard not in failed
            if not _watermark_durable(
                journals[shard], watermark, crash_ns, adr,
                adr_budget if not adr else None,
            ):
                durable = False
                break
        if not durable:
            break
        prefix.append(commit)
    return prefix


def required_prefix_for_core(prefix: Sequence[CommitRecord], core: int) -> int:
    """How many of ``core``'s transactions the durable prefix contains."""
    return sum(1 for commit in prefix if commit.core == core)


@dataclass
class ShardFailureOutcome:
    """One injected shard-subset failure, recovered and reconciled."""

    crash_ns: float
    failed_shards: Tuple[int, ...]
    #: Structural verdict of the workload validator.
    consistent: bool
    #: Inconsistent but caught by a detection channel (undecryptable
    #: line, failed recovery) — acceptable for a mid-drain ADR loss.
    detected: bool
    #: Commits the barrier may still claim after the failure.
    durable_commits: int
    total_commits: int
    #: Transaction prefix the recovered state actually matched.
    matched_prefix: Optional[int]
    problems: List[str] = field(default_factory=list)

    @property
    def reconciled(self) -> bool:
        """Recovery never fell below the durable commit prefix."""
        return not self.acked_commit_lost

    @property
    def acked_commit_lost(self) -> bool:
        """A commit the barrier proved durable is missing — corruption."""
        return (
            self.consistent
            and self.matched_prefix is not None
            and self.matched_prefix < self.durable_commits
        )

    @property
    def silent(self) -> bool:
        return not self.consistent and not self.detected


@dataclass
class ShardFailureReport:
    """Aggregate of one :func:`sweep_shard_failures` run."""

    design: str
    shards: int
    outcomes: List[ShardFailureOutcome]

    @property
    def total(self) -> int:
        return len(self.outcomes)

    @property
    def consistent(self) -> int:
        return sum(1 for o in self.outcomes if o.consistent)

    @property
    def detected(self) -> int:
        return sum(1 for o in self.outcomes if o.detected)

    @property
    def silent_failures(self) -> List[ShardFailureOutcome]:
        return [o for o in self.outcomes if o.silent]

    @property
    def acked_losses(self) -> List[ShardFailureOutcome]:
        return [o for o in self.outcomes if o.acked_commit_lost]

    @property
    def clean(self) -> bool:
        """No silent corruption and no durable commit lost."""
        return not self.silent_failures and not self.acked_losses


def sweep_shard_failures(
    result: SimulationResult,
    run,
    core: int = 0,
    subsets: Optional[Sequence[Iterable[int]]] = None,
    max_points: int = 24,
    adr_budget: Optional[int] = None,
) -> ShardFailureReport:
    """Crash every shard subset at sampled instants and reconcile.

    ``run`` is the workload's :class:`~repro.workloads.base.WorkloadRun`
    (``outcome.runs[core]``).  For each sampled crash instant and each
    failed subset the sweep rebuilds the image, runs transaction
    recovery, classifies the state structurally, and checks the
    cross-shard reconciliation: the matched transaction prefix must
    cover every commit :func:`durable_commit_prefix` still guarantees.
    Mid-drain ADR loss may cost *unacked* commits (they were never
    durable) and may surface as detected damage — what it must never
    produce is silent corruption or a lost durable commit.
    """
    # Deferred import: workloads.base imports the txn recovery stack.
    from ..workloads.base import PrefixValidator
    from .recovery import RecoveryManager

    controller = result.controller
    journals = _shard_journals(result)
    shards = controller.shards
    if subsets is None:
        subsets = [(s,) for s in range(shards)] + [tuple(range(shards))]
    commits = controller.journal.commits
    injector = CrashInjector(result)
    times = uniform_sample(injector.interesting_times(limit=max_points), max_points)
    manager = RecoveryManager(result.config.encryption)
    validator = PrefixValidator(run)
    encrypted = result.policy.encrypts
    outcomes: List[ShardFailureOutcome] = []
    for crash_ns in times:
        for subset in subsets:
            failed = tuple(sorted(set(subset)))
            image = shard_crash_image(
                result, crash_ns, failed, adr_budget=adr_budget
            )
            recovered = manager.recover(image, encrypted=encrypted)
            verdict = validator.classify(recovered)
            prefix = durable_commit_prefix(
                commits, journals, crash_ns, failed, adr_budget=adr_budget
            )
            outcomes.append(
                ShardFailureOutcome(
                    crash_ns=crash_ns,
                    failed_shards=failed,
                    consistent=verdict.consistent,
                    detected=bool(verdict.detected),
                    durable_commits=required_prefix_for_core(prefix, core),
                    total_commits=len(commits),
                    matched_prefix=verdict.matched_prefix,
                    problems=list(verdict.detected) + list(verdict.silent),
                )
            )
    return ShardFailureReport(
        design=result.policy.name, shards=shards, outcomes=outcomes
    )
