"""Osiris-style counter recovery (an extension of the paper).

The paper enforces counter-atomicity so that data and counter never go
out of sync.  The follow-on line of work makes the opposite trade:
allow them to go out of sync by a *bounded* amount and recover the lost
counters after a crash by search — for each undecryptable line, try
candidate counters near the stored one and accept the one whose
integrity tag verifies.  The bound comes from flushing the counter at
least every K updates, so the true counter is always within K of the
persisted one.

This module implements that recovery over the simulator's crash images,
given per-line integrity tags (:mod:`repro.crypto.integrity`).  It is
used by the extension bench to show (a) how many unsafe-design crash
states become recoverable with tags + search, and (b) why bounding the
counter lag matters.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional

from ..config import CACHE_LINE_SIZE, EncryptionConfig
from ..crypto.integrity import IntegrityEngine, TaggedLine
from ..crypto.otp import OTPCipher, make_block_cipher
from .injector import CrashImage

if TYPE_CHECKING:  # pragma: no cover - typing only (session imports us)
    from .session import RecoveryContext


@dataclass
class CounterRecoveryReport:
    """Outcome of one counter-recovery pass over a crash image."""

    lines_checked: int = 0
    already_consistent: int = 0
    recovered: int = 0
    unrecoverable: int = 0
    #: address -> recovered counter, for the lines the search fixed.
    recovered_counters: Dict[int, int] = field(default_factory=dict)
    #: Total candidate counters tried (the search cost).
    candidates_tried: int = 0

    @property
    def recovery_rate(self) -> float:
        broken = self.recovered + self.unrecoverable
        if broken == 0:
            return 1.0
        return self.recovered / broken


class CounterRecoverer:
    """Searches for lost counters using integrity tags."""

    def __init__(self, encryption: EncryptionConfig, max_lag: int = 64) -> None:
        if max_lag < 1:
            raise ValueError("counter search needs a positive lag bound")
        self.max_lag = max_lag
        self.integrity = IntegrityEngine(encryption)
        self.cipher = OTPCipher(make_block_cipher(encryption))

    def make_tag(self, address: int, counter: int, ciphertext: bytes) -> bytes:
        """Tag helper for producers of tagged lines."""
        return self.integrity.tag(address, counter, ciphertext)

    def recover_line(
        self, line: TaggedLine, stored_counter: int
    ) -> Optional[int]:
        """Find the true counter for one line, or None.

        Tries the architecturally stored counter first, then counters
        up to ``max_lag`` ahead of it (writes only ever advance the
        counter, so the persisted value can only lag).
        """
        for lag in range(0, self.max_lag + 1):
            candidate = stored_counter + lag
            if line.verify_with(self.integrity, candidate):
                return candidate
        return None

    def recover_image(
        self,
        image: CrashImage,
        tags: Optional[Dict[int, bytes]] = None,
        context: Optional["RecoveryContext"] = None,
    ) -> CounterRecoveryReport:
        """Run counter recovery over every tagged data line of an image.

        ``tags`` maps line address -> the integrity tag persisted with
        the line's current NVM ciphertext.  When omitted, tags are
        materialized from the image itself via :func:`collect_tags` —
        modeling a design whose tags ride in the ECC lanes and are
        therefore inherently atomic with each data write.

        Each line of the sweep is one restartable
        :meth:`~repro.crash.session.RecoveryContext.step`: recovered
        counters are written into ``image.counter_store`` (an 8-byte
        crash-atomic write) before the step completes, so a nested
        crash mid-sweep loses nothing — retrying the sweep finds every
        already-repaired line consistent and skips it.
        """
        if context is None:
            from .session import RecoveryContext

            context = RecoveryContext()
        context.enter_phase("counter-search")
        if tags is None:
            tags = collect_tags(image, self)
        report = CounterRecoveryReport()
        for address, tag in sorted(tags.items()):
            if not image.address_map.is_data_address(address):
                continue
            stored = image.device.read_line(address)
            line = TaggedLine(address=address, ciphertext=stored.payload, tag=tag)
            architectural = image.counter_store.read(address)
            report.lines_checked += 1
            if architectural == stored.encrypted_with:
                report.already_consistent += 1
                context.step()
                continue
            found = self.recover_line(line, architectural)
            report.candidates_tried += (
                (found - architectural + 1)
                if found is not None
                else self.max_lag + 1
            )
            if found is not None and found == stored.encrypted_with:
                report.recovered += 1
                report.recovered_counters[address] = found
                image.counter_store.write(address, found)
            else:
                report.unrecoverable += 1
            context.step()
        return report


def collect_tags(image: CrashImage, recoverer: CounterRecoverer) -> Dict[int, bytes]:
    """Tags for the data lines persisted in a crash image.

    Models a design that writes the tag together with each data line:
    tags ride in the ECC lanes, so they are inherently atomic with the
    data — the assumption the follow-on work makes.  The tag is
    computed over the ciphertext *as persisted* and the counter it was
    really encrypted with; recovery never reads that counter directly,
    it only observes which candidate makes the tag verify.
    """
    tags: Dict[int, bytes] = {}
    for address in image.device.touched_lines():
        if not image.address_map.is_data_address(address):
            continue
        stored = image.device.read_line(address)
        tags[address] = recoverer.make_tag(
            address, stored.encrypted_with, stored.payload
        )
    return tags
