"""Power-failure injection.

A crash at time T has these effects (paper Sections 2-5):

* All volatile state disappears: CPU caches, the counter cache, and any
  write-queue entry whose ready bit is still 0.
* The ADR logic drains every *ready* write-queue entry, so those writes
  persist even though they had not reached the NVM array.
* The NVM array keeps whatever had drained before T.

The persist journal encodes all three rules, so building a crash image
is a single reconstruction call.  The injector also enumerates the
interesting crash instants of a finished run — every boundary where the
durable state can change.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..config import CACHE_LINE_SIZE
from ..crypto.counters import CounterStore
from ..faults.base import FaultEvent, FaultModel, apply_fault_models
from ..nvm.address import AddressMap
from ..nvm.device import NVMDevice
from ..sim.machine import SimulationResult


@dataclass
class CrashImage:
    """The durable state visible after a failure at ``crash_ns``."""

    crash_ns: float
    device: NVMDevice
    counter_store: CounterStore
    design: str
    #: Entries that survived this crash only thanks to the ADR drain —
    #: the work an exhausted ADR reserve would have lost (fault models).
    adr_pending: int = 0

    @property
    def address_map(self) -> AddressMap:
        return self.device.address_map


class CrashInjector:
    """Builds crash images from a finished simulation."""

    def __init__(self, result: SimulationResult) -> None:
        self.result = result
        self._journal = result.controller.journal
        self._address_map = result.controller.address_map
        #: The ideal design's evaluation fiction: counters always
        #: persist, so its images are decryptable by construction.
        self._magic_counters = result.policy.magic_counter_persistence

    def crash_at(
        self,
        crash_ns: float,
        adr: bool = True,
        adr_budget: Optional[int] = None,
    ) -> CrashImage:
        """Reconstruct the durable state at ``crash_ns``.

        ``adr=False`` models a system without the ADR guarantee (only
        array-drained writes survive) — used by ablation benches.
        ``adr_budget`` limits how many ready-but-undrained entries the
        ADR reserve can fund (see ``PersistJournal.reconstruct``).
        """
        data_lines, counters = self._journal.reconstruct(
            crash_ns, adr=adr, adr_budget=adr_budget
        )
        device = NVMDevice(self._address_map, track_wear=False)
        for address, (payload, encrypted_with) in data_lines.items():
            device.persist_line(address, payload, encrypted_with)
        # Reconstruction inflates write counters; report reads instead.
        device.line_writes = 0
        store = CounterStore(
            counter_region_base=self._address_map.counter_region_base,
            memory_size_bytes=self._address_map.memory_size_bytes,
        )
        for address, value in counters.items():
            store.write(address, value)
        return CrashImage(
            crash_ns=crash_ns,
            device=device,
            counter_store=store,
            design=self.result.policy.name,
            adr_pending=self._journal.adr_pending(crash_ns) if adr else 0,
        )

    def crash_with_faults(
        self,
        crash_ns: float,
        faults: Sequence[FaultModel],
        seed: int,
        adr: bool = True,
    ) -> Tuple[CrashImage, List[FaultEvent]]:
        """Crash at ``crash_ns`` and apply ``faults`` to the image.

        Models that constrain the ADR drain (``adr_budget``) shape the
        reconstruction itself; the rest mutate the finished image with
        RNG streams derived from ``seed`` so the whole corrupted state
        is reproducible from (simulation, crash_ns, faults, seed).
        """
        budgets = [m.adr_budget for m in faults if m.adr_budget is not None]
        budget = min(budgets) if budgets else None
        image = self.crash_at(crash_ns, adr=adr, adr_budget=budget)
        events = apply_fault_models(image, faults, seed, scope=(crash_ns,))
        return image, events

    # -- crash-point enumeration ---------------------------------------------

    def interesting_times(self, limit: Optional[int] = None) -> List[float]:
        """Times just after each durability event (ready or drain).

        Crashing between two consecutive events is equivalent to
        crashing at the earlier one, so sweeping these covers every
        distinct durable state.  A small epsilon lands strictly after
        the event.
        """
        times = set()
        for record in self._journal.records:
            for stamp in (record.ready_ns, record.drain_ns):
                if stamp != float("inf"):
                    times.add(stamp)
            for amendment in record.amendments:
                times.add(amendment.effective_ns)
        ordered = uniform_sample(sorted(times), limit)
        epsilon = 1e-6
        return [t + epsilon for t in ordered]

    def midpoint_times(self, limit: Optional[int] = None) -> List[float]:
        """Times strictly *between* durability events.

        These catch in-flight states: e.g. a pair whose data entry is
        accepted but whose counter entry is not.
        """
        boundaries = sorted(
            {r.accept_ns for r in self._journal.records}
            | {r.ready_ns for r in self._journal.records if r.ready_ns != float("inf")}
            | {r.drain_ns for r in self._journal.records if r.drain_ns != float("inf")}
        )
        midpoints = [
            (a + b) / 2.0 for a, b in zip(boundaries, boundaries[1:]) if b > a
        ]
        return uniform_sample(midpoints, limit)


def uniform_sample(ordered: List[float], limit: Optional[int]) -> List[float]:
    """Up to ``limit`` elements, uniformly spread, keeping first and last.

    ``limit=1`` keeps just the first element (the old step formula
    divided by zero there); ``limit<=0`` keeps nothing.
    """
    if limit is None or len(ordered) <= limit:
        return ordered
    if limit <= 0:
        return []
    if limit == 1:
        return ordered[:1]
    step = (len(ordered) - 1) / (limit - 1)
    return [ordered[round(i * step)] for i in range(limit)]
