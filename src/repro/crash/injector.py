"""Power-failure injection.

A crash at time T has these effects (paper Sections 2-5):

* All volatile state disappears: CPU caches, the counter cache, and any
  write-queue entry whose ready bit is still 0.
* The ADR logic drains every *ready* write-queue entry, so those writes
  persist even though they had not reached the NVM array.
* The NVM array keeps whatever had drained before T.

The persist journal encodes all three rules, so building a crash image
is a single reconstruction call.  The injector also enumerates the
interesting crash instants of a finished run — every boundary where the
durable state can change.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from ..config import CACHE_LINE_SIZE, SystemConfig
from ..crypto.counters import CounterStore
from ..crypto.integrity import IntegrityEngine
from ..crypto.otp import OTPCipher, make_block_cipher
from ..faults.base import FaultEvent, FaultModel, apply_fault_models
from ..nvm.address import AddressMap
from ..nvm.device import NVMDevice
from ..sim.machine import SimulationResult


@dataclass
class CrashImage:
    """The durable state visible after a failure at ``crash_ns``."""

    crash_ns: float
    device: NVMDevice
    counter_store: CounterStore
    design: str
    #: Entries that survived this crash only thanks to the ADR drain —
    #: the work an exhausted ADR reserve would have lost (fault models).
    adr_pending: int = 0
    #: Bonsai-tree secure register at the crash (integrity designs).
    #: Captured over everything the controller *persisted* — including
    #: ready entries a budget-limited ADR reserve then drops, which is
    #: exactly how the tree detects a dropped drain.
    secure_root: Optional[int] = None
    #: ECC-lane MACs of the persisted data lines, captured before any
    #: fault model mutates the image (tags ride atomically with data).
    line_tags: Optional[Dict[int, bytes]] = None

    @property
    def address_map(self) -> AddressMap:
        return self.device.address_map


class CrashInjector:
    """Builds crash images from a finished simulation."""

    def __init__(self, result: SimulationResult) -> None:
        self.result = result
        self._journal = result.controller.journal
        self._address_map = result.controller.address_map
        #: The ideal design's evaluation fiction: counters always
        #: persist, so its images are decryptable by construction.
        self._magic_counters = result.policy.magic_counter_persistence
        self._integrity = result.policy.integrity_tree
        self._config = result.config
        self._tag_engine: Optional[IntegrityEngine] = None
        self._tree_engine = None

    def crash_at(
        self,
        crash_ns: float,
        adr: bool = True,
        adr_budget: Optional[int] = None,
    ) -> CrashImage:
        """Reconstruct the durable state at ``crash_ns``.

        ``adr=False`` models a system without the ADR guarantee (only
        array-drained writes survive) — used by ablation benches.
        ``adr_budget`` limits how many ready-but-undrained entries the
        ADR reserve can fund (see ``PersistJournal.reconstruct``).
        """
        data_lines, counters = self._journal.reconstruct(
            crash_ns, adr=adr, adr_budget=adr_budget
        )
        device = NVMDevice(self._address_map, track_wear=False)
        for address, (payload, encrypted_with) in data_lines.items():
            device.persist_line(address, payload, encrypted_with)
        # Reconstruction inflates write counters; report reads instead.
        device.line_writes = 0
        store = CounterStore(
            counter_region_base=self._address_map.counter_region_base,
            memory_size_bytes=self._address_map.memory_size_bytes,
        )
        for address, value in counters.items():
            store.write(address, value)
        image = CrashImage(
            crash_ns=crash_ns,
            device=device,
            counter_store=store,
            design=self.result.policy.name,
            adr_pending=self._journal.adr_pending(crash_ns) if adr else 0,
        )
        if self._integrity:
            self._capture_integrity(image, crash_ns, adr, adr_budget)
        return image

    def _capture_integrity(
        self, image: CrashImage, crash_ns: float, adr: bool, adr_budget: Optional[int]
    ) -> None:
        """Stamp the image with the secure root and the ECC-lane tags.

        The root is computed over the *unbudgeted* ADR reconstruction:
        the register is updated as the controller persists counters, so
        it covers ready entries even when a failing ADR reserve later
        drops them — the resulting root mismatch is the detection.
        Tags are captured from the (budgeted) image itself; fault
        models mutate the image only after this capture, so mutations
        surface as tag mismatches.
        """
        if self._tree_engine is None:
            # Deferred import: repro.integrity.verifier imports this
            # module, so a top-level import would cycle.
            from ..integrity.tree import IntegrityTreeEngine

            self._tree_engine = IntegrityTreeEngine(
                self._config.encryption,
                self._address_map,
                arity=self._config.integrity.arity,
            )
            self._tag_engine = IntegrityEngine(self._config.encryption)
        if adr and adr_budget is None:
            covered = image.counter_store.snapshot()
        else:
            _, covered = self._journal.reconstruct(crash_ns, adr=True, adr_budget=None)
        image.secure_root = self._tree_engine.root_over(covered)
        tags: Dict[int, bytes] = {}
        for address in image.device.touched_lines():
            if not self._address_map.is_data_address(address):
                continue
            stored = image.device.read_line(address)
            tags[address] = self._tag_engine.tag(
                address, stored.encrypted_with, stored.payload
            )
        image.line_tags = tags

    def crash_with_faults(
        self,
        crash_ns: float,
        faults: Sequence[FaultModel],
        seed: int,
        adr: bool = True,
    ) -> Tuple[CrashImage, List[FaultEvent]]:
        """Crash at ``crash_ns`` and apply ``faults`` to the image.

        Models that constrain the ADR drain (``adr_budget``) shape the
        reconstruction itself; the rest mutate the finished image with
        RNG streams derived from ``seed`` so the whole corrupted state
        is reproducible from (simulation, crash_ns, faults, seed).
        """
        budgets = [m.adr_budget for m in faults if m.adr_budget is not None]
        budget = min(budgets) if budgets else None
        image = self.crash_at(crash_ns, adr=adr, adr_budget=budget)
        events = apply_fault_models(image, faults, seed, scope=(crash_ns,))
        return image, events

    # -- crash-point enumeration ---------------------------------------------

    def interesting_times(self, limit: Optional[int] = None) -> List[float]:
        """Times just after each durability event (ready or drain).

        Crashing between two consecutive events is equivalent to
        crashing at the earlier one, so sweeping these covers every
        distinct durable state.  A small epsilon lands strictly after
        the event.
        """
        times = set()
        for record in self._journal.records:
            for stamp in (record.ready_ns, record.drain_ns):
                if stamp != float("inf"):
                    times.add(stamp)
            for amendment in record.amendments:
                times.add(amendment.effective_ns)
        ordered = uniform_sample(sorted(times), limit)
        epsilon = 1e-6
        return [t + epsilon for t in ordered]

    def midpoint_times(self, limit: Optional[int] = None) -> List[float]:
        """Times strictly *between* durability events.

        These catch in-flight states: e.g. a pair whose data entry is
        accepted but whose counter entry is not.
        """
        boundaries = sorted(
            {r.accept_ns for r in self._journal.records}
            | {r.ready_ns for r in self._journal.records if r.ready_ns != float("inf")}
            | {r.drain_ns for r in self._journal.records if r.drain_ns != float("inf")}
        )
        midpoints = [
            (a + b) / 2.0 for a, b in zip(boundaries, boundaries[1:]) if b > a
        ]
        return uniform_sample(midpoints, limit)


def nested_crash_image(
    image: CrashImage,
    persisted: Mapping[int, bytes],
    config: SystemConfig,
    encrypted: bool = True,
) -> CrashImage:
    """The durable state after a power failure *during* recovery.

    ``persisted`` maps line address -> plaintext for every recovery-side
    write that completed before the nested crash.  The controller
    persists recovery writes exactly like foreground writes — bump the
    line counter, re-encrypt under the new counter, refresh the ECC-lane
    tag, fold the counter into the integrity tree — so the second image
    is built the same way: base image plus the completed writes pushed
    through the full encrypt path.  Torn recovery writes arrive here
    already merged (new prefix + old tail) by the recovery context; the
    merge persists under a *consistent* counter, so it decrypts cleanly
    and only idempotent replay can fix it — detection machinery cannot.

    Counter mutations recovery made in place (Osiris search, tree
    repair) are carried over by snapshotting ``image.counter_store``,
    so a nested crash after a repaired counter keeps the repair.
    """
    address_map = image.address_map
    device = NVMDevice(address_map, track_wear=False)
    for address in image.device.touched_lines():
        stored = image.device.read_line(address)
        device.persist_line(address, stored.payload, stored.encrypted_with)
    device.line_writes = 0
    store = CounterStore(
        counter_region_base=address_map.counter_region_base,
        memory_size_bytes=address_map.memory_size_bytes,
    )
    for address, value in image.counter_store.snapshot().items():
        store.write(address, value)
    cipher = OTPCipher(make_block_cipher(config.encryption)) if encrypted else None
    tags: Optional[Dict[int, bytes]] = (
        dict(image.line_tags) if image.line_tags is not None else None
    )
    tag_engine = IntegrityEngine(config.encryption) if tags is not None else None
    for address in sorted(persisted):
        plaintext = persisted[address]
        if cipher is None:
            device.persist_line(address, plaintext, 0)
            if tags is not None and tag_engine is not None:
                tags[address] = tag_engine.tag(address, 0, plaintext)
            continue
        counter = store.read(address) + 1
        store.write(address, counter)
        ciphertext = cipher.encrypt(address, counter, plaintext)
        device.persist_line(address, ciphertext, counter)
        if tags is not None and tag_engine is not None:
            tags[address] = tag_engine.tag(address, counter, ciphertext)
    secure_root = image.secure_root
    if secure_root is not None:
        # Deferred import: repro.integrity.verifier imports this module.
        from ..integrity.tree import IntegrityTreeEngine

        tree_engine = IntegrityTreeEngine(
            config.encryption, address_map, arity=config.integrity.arity
        )
        secure_root = tree_engine.root_over(store.snapshot())
    return CrashImage(
        crash_ns=image.crash_ns,
        device=device,
        counter_store=store,
        design=image.design,
        adr_pending=image.adr_pending,
        secure_root=secure_root,
        line_tags=tags,
    )


def uniform_sample(ordered: List[float], limit: Optional[int]) -> List[float]:
    """Up to ``limit`` elements, uniformly spread, keeping first and last.

    ``limit=1`` keeps just the first element (the old step formula
    divided by zero there); ``limit<=0`` keeps nothing.
    """
    if limit is None or len(ordered) <= limit:
        return ordered
    if limit <= 0:
        return []
    if limit == 1:
        return ordered[:1]
    step = (len(ordered) - 1) / (limit - 1)
    return [ordered[round(i * step)] for i in range(limit)]
