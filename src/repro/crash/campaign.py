"""Resumable crash campaigns: workloads x designs x crash points x faults.

A *campaign* is the systematic version of the one-off crash sweep: for
every combination of workload, design, transaction mechanism and fault
model it reconstructs crash images across the run, corrupts them with
the fault model, runs real recovery, and classifies every outcome into
the triage taxonomy:

* ``recovered``          — recovery produced a consistent state;
* ``recovered-by-search``— plain recovery detected a bad state, but the
  Osiris-style counter search (``--with-counter-recovery``) repaired
  it to a provably consistent one;
* ``detected``           — the state was bad and recovery *said so*
  (decryption failure, corrupt-record check, checksum mismatch);
* ``detected-by-tree``   — recovery accepted a state the oracle proves
  wrong, but the integrity tree's post-crash walk (root register +
  ECC-lane tag sweep; ``+bmt`` designs) flagged it — would-be silent
  corruption converted into a detection;
* ``silent-corruption``  — recovery accepted a state the oracle proves
  wrong: the bucket that breaks real systems;
* ``recovery-crashed``   — the recovery procedure itself raised an
  unexpected exception on the corrupted image.

The ``--nested-crash`` axis adds two more buckets: an injected second
power failure *during* recovery after which the resumed recovery still
converged (``recovered-after-nested-crash``) or at least stayed loud
(``detected-after-nested-crash``).

Campaigns are deterministic (same seed, same spec -> same outcome
table) and resumable: every finished job is journaled to
``<dir>/journal.jsonl`` as it completes, and a rerun skips journaled
jobs whose key (spec + seed + code version) still matches.
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
import json
import logging
import os
import shutil
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Mapping, Optional, Sequence, Tuple

from ..config import KB
from ..errors import CampaignError, CampaignJournalError
from ..faults import make_fault_model
from ..faults.registry import DEFAULT_SUITE
from .injector import CrashInjector, uniform_sample

if TYPE_CHECKING:  # pragma: no cover - import cycle (bench -> txn -> crash)
    from ..bench.parallel import SweepExecutor

logger = logging.getLogger(__name__)

#: Cap on non-clean outcome examples kept per job for the triage report.
EXAMPLES_PER_JOB = 3


class Outcome(enum.Enum):
    """The campaign triage taxonomy."""

    RECOVERED = "recovered"
    RECOVERED_SEARCH = "recovered-by-search"
    #: An injected mid-recovery power failure, after which the resumed
    #: recovery still reached a provably consistent state.
    RECOVERED_NESTED = "recovered-after-nested-crash"
    DETECTED = "detected"
    DETECTED_TREE = "detected-by-tree"
    #: A nested crash after which the state stayed bad but every
    #: detection channel still fired — never silent.
    DETECTED_NESTED = "detected-after-nested-crash"
    SILENT = "silent-corruption"
    CRASHED = "recovery-crashed"


@dataclass(frozen=True)
class CampaignJob:
    """One independent campaign cell; picklable and hashable."""

    workload: str
    design: str
    mechanism: str
    fault: str
    fault_params: Tuple[Tuple[str, object], ...] = ()
    crash_points: int = 20
    seed: int = 42
    operations: int = 8
    footprint_bytes: int = 8 * KB
    #: Memory-controller shards the simulated machine runs
    #: (:mod:`repro.mem.sharded`).  Above 1 the job also sweeps
    #: shard-subset ADR failures and reconciles the cross-shard commit
    #: log (``shard_failures`` in the result document).
    shards: int = 1
    #: Retry detected failures with the Osiris-style counter search;
    #: part of the job's identity (it changes the outcome table).
    with_counter_recovery: bool = False
    #: Sweep the nested-crash axis: every crash point is additionally
    #: recovered under each schedule of the crash-point x recovery-step
    #: grid (:func:`repro.faults.recovery.nested_point_grid`).
    nested_crash: bool = False
    #: Recovery steps per phase the nested grid covers.
    nested_steps: int = 2
    #: Execution-only plumbing, deliberately NOT part of ``document()``
    #: (and therefore not of the job key): where this job checkpoints
    #: its simulation, how often, and where it beats its heartbeat.
    checkpoint_dir: Optional[str] = None
    checkpoint_every: Optional[int] = None
    heartbeat_path: Optional[str] = None

    def document(self) -> Dict[str, object]:
        return {
            "workload": self.workload,
            "design": self.design,
            "mechanism": self.mechanism,
            "fault": self.fault,
            "fault_params": dict(self.fault_params),
            "crash_points": self.crash_points,
            "seed": self.seed,
            "operations": self.operations,
            "footprint_bytes": self.footprint_bytes,
            "shards": self.shards,
            "with_counter_recovery": self.with_counter_recovery,
            "nested_crash": self.nested_crash,
            "nested_steps": self.nested_steps,
        }


def job_key(job: CampaignJob) -> str:
    """Content hash identifying one job's result.

    The code version is part of the key: resuming a campaign across a
    simulator change re-runs everything rather than mixing semantics.
    """
    from ..utils.versioning import code_version

    document = job.document()
    document["code"] = code_version()
    blob = json.dumps(document, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode()).hexdigest()[:24]


def _classify_session(result, nested_swept: bool) -> Tuple[Outcome, str]:
    """Map one :class:`SessionResult` into the triage taxonomy.

    When nested crashes actually fired, the nested buckets take over:
    they are the sweep's observable — did the *resumed* recovery still
    converge (``recovered-after-nested-crash``) or at least stay loud
    (``detected-after-nested-crash``)?  Silent and crashed keep their
    identity regardless: a nested crash never excuses either.
    """
    nested = nested_swept and result.nested_injected > 0
    if result.status == "consistent":
        if nested:
            return Outcome.RECOVERED_NESTED, result.detail
        if result.via_search:
            return Outcome.RECOVERED_SEARCH, result.detail
        return Outcome.RECOVERED, result.detail
    if result.status in ("detected", "detected-tree"):
        if nested:
            return Outcome.DETECTED_NESTED, result.detail
        if result.status == "detected-tree":
            return Outcome.DETECTED_TREE, result.detail
        return Outcome.DETECTED, result.detail
    if result.status == "silent":
        return Outcome.SILENT, result.detail
    return Outcome.CRASHED, result.detail


#: Outcomes that are successes — excluded from the triage examples.
_CLEAN_OUTCOMES = (Outcome.RECOVERED, Outcome.RECOVERED_SEARCH, Outcome.RECOVERED_NESTED)


def run_campaign_job(job: CampaignJob) -> Dict[str, object]:
    """Execute one campaign cell; the (picklable) worker entry point.

    Returns a JSON-ready result document: outcome tallies over every
    swept crash point, fault-event count, example failures, and the
    job's checkpoint/restore accounting.

    Every crash point is recovered through a
    :class:`~repro.crash.session.RecoverySession` (the bounded
    escalation ladder).  With ``job.nested_crash`` set, each crash
    point is additionally recovered under every schedule of the
    crash-point x recovery-step grid, injecting a second power failure
    mid-recovery and requiring the resumed recovery to converge.

    The simulation phase checkpoints to ``job.checkpoint_dir`` (when
    set) and resumes from the newest valid snapshot there, so a worker
    killed mid-simulation loses at most one checkpoint interval.  The
    heartbeat (when set) is beaten per simulated event and per triaged
    crash point, feeding the executor's stall watchdog.
    """
    from ..bench.resilience import Heartbeat, run_workload_resilient
    from ..config import fast_config
    from ..faults.recovery import RecoveryFaultPlan, nested_point_grid
    from ..workloads.base import WorkloadParams
    from .session import RecoverySession, error_digest

    params = WorkloadParams(
        operations=job.operations,
        seed=job.seed,
        footprint_bytes=job.footprint_bytes,
    )
    heartbeat = Heartbeat(job.heartbeat_path) if job.heartbeat_path else None
    outcome, resilience = run_workload_resilient(
        job.design,
        job.workload,
        config=fast_config(shards=job.shards),
        mechanism=job.mechanism,
        params=params,
        checkpoint_dir=job.checkpoint_dir,
        every_events=job.checkpoint_every,
        heartbeat=heartbeat,
    )
    config = outcome.result.config
    injector = CrashInjector(outcome.result)
    per_kind = max(2, job.crash_points // 2)
    times = sorted(
        set(injector.interesting_times(limit=per_kind))
        | set(injector.midpoint_times(limit=per_kind))
    )
    times = uniform_sample(times, job.crash_points)
    validator = outcome.validator(0)
    encrypted = outcome.result.policy.encrypts
    model = make_fault_model(job.fault, **dict(job.fault_params))
    recoverer = None
    if job.with_counter_recovery and encrypted:
        from .counter_recovery import CounterRecoverer

        recoverer = CounterRecoverer(config.encryption)
    tree_checked = outcome.result.policy.integrity_tree
    # The nested sweep: a no-injection baseline cell plus one cell per
    # fault-point schedule.  Phases a design cannot enter (no search,
    # no tree) are not swept — those points could never fire.
    schedules: List[Optional[Tuple]] = [None]
    if job.nested_crash:
        schedules.extend(
            nested_point_grid(
                job.nested_steps,
                counter_search=recoverer is not None,
                tree_repair=tree_checked and recoverer is not None,
            )
        )

    def classify(recovered, context):
        return validator.classify(recovered, context=context)

    tallies: Dict[str, int] = {o.value: 0 for o in Outcome}
    examples: List[Dict[str, object]] = []
    fault_events = 0
    nested_injected = 0
    cells = 0
    for crash_ns in times:
        if heartbeat is not None:
            heartbeat.beat()
        for schedule in schedules:
            image, events = injector.crash_with_faults(
                crash_ns, [model], seed=job.seed
            )
            fault_events += len(events)
            plan = (
                RecoveryFaultPlan(schedule, seed=job.seed)
                if schedule is not None
                else None
            )
            session = RecoverySession(
                config,
                encrypted=encrypted,
                plan=plan,
                recoverer=recoverer,
                tree_checked=tree_checked,
            )
            session_error = None
            try:
                result = session.run(image, classify)
            except Exception as exc:  # ladder non-convergence: a finding
                session_error = error_digest(exc)
                classified = Outcome.CRASHED
                detail = "%s: %s" % (session_error["type"], session_error["message"])
                ladder = None
            else:
                classified, detail = _classify_session(result, schedule is not None)
                session_error = result.error
                nested_injected += result.nested_injected
                ladder = result.ledger.as_dict()
            tallies[classified.value] += 1
            cells += 1
            if classified not in _CLEAN_OUTCOMES and len(examples) < EXAMPLES_PER_JOB:
                example: Dict[str, object] = {
                    "crash_ns": crash_ns,
                    "outcome": classified.value,
                    "detail": detail,
                    "fault_events": [event.as_dict() for event in events],
                }
                if schedule is not None:
                    example["nested_plan"] = [point.as_dict() for point in schedule]
                if ladder is not None:
                    example["ladder"] = ladder
                if session_error is not None:
                    # Triage for recovery-crashed cells: exception type,
                    # message and a short stack digest for grouping.
                    example["error"] = session_error
                examples.append(example)
    if heartbeat is not None:
        heartbeat.clear()
    document: Dict[str, object] = {
        "key": job_key(job),
        "job": job.document(),
        "points": cells,
        "crash_times": len(times),
        "nested_schedules": len(schedules) - 1,
        "nested_injected": nested_injected,
        "fault_events": fault_events,
        "outcomes": tallies,
        "examples": examples,
        "resilience": resilience,
    }
    if job.shards > 1:
        # Shard-subset ADR failures + cross-shard reconciliation
        # (docs/sharding.md).  Tearing an *uncommitted* transaction is
        # expected physics of a mid-drain reserve loss; losing a commit
        # the barrier proved durable is the contract violation
        # ``--strict`` fails on.
        from .sharded import sweep_shard_failures

        shard_report = sweep_shard_failures(
            outcome.result,
            outcome.runs[0],
            max_points=max(2, job.crash_points // 4),
        )
        document["shard_failures"] = {
            "points": shard_report.total,
            "consistent": shard_report.consistent,
            "detected": shard_report.detected,
            "torn_uncommitted": len(shard_report.silent_failures),
            "acked_commit_lost": len(shard_report.acked_losses),
        }
    return document


@dataclass
class CampaignSpec:
    """What a campaign sweeps.

    ``faults`` entries are fault specs: a registry name or a mapping
    like ``{"model": "dropped-adr", "budget": 2}``.
    """

    workloads: Sequence[str] = ("array",)
    designs: Sequence[str] = ("sca", "unsafe")
    mechanisms: Sequence[str] = ("undo",)
    faults: Sequence[object] = DEFAULT_SUITE
    crash_points: int = 20
    seed: int = 42
    operations: int = 8
    footprint_bytes: int = 8 * KB
    with_counter_recovery: bool = False
    #: Sweep the nested-crash axis: every crash point is additionally
    #: recovered under each schedule of the crash-point x recovery-step
    #: grid (a second power failure mid-recovery).
    nested_crash: bool = False
    #: How many recovery steps the nested grid covers per phase.
    nested_steps: int = 2
    #: Memory-controller shards every job's machine runs with; above 1
    #: each job also sweeps shard-subset ADR failures and reconciles
    #: the cross-shard commit log.
    shards: int = 1

    def _fault_fields(self) -> List[Tuple[str, Tuple[Tuple[str, object], ...]]]:
        normalized = []
        for entry in self.faults:
            if isinstance(entry, str):
                name, params = entry, {}
            elif isinstance(entry, Mapping):
                document = dict(entry)
                name = document.pop("model", None)
                params = document
                if not isinstance(name, str):
                    raise CampaignError("fault spec needs a 'model' name: %r" % entry)
            else:
                raise CampaignError("bad fault spec %r" % (entry,))
            normalized.append((name, tuple(sorted(params.items()))))
        return normalized

    def validate(self) -> None:
        """Fail fast on misconfiguration, before any worker runs."""
        from ..core.designs import get_design
        from ..errors import ConfigurationError, FaultInjectionError
        from ..txn.manager import TransactionMechanism
        from ..workloads.registry import list_workloads

        if self.crash_points < 1:
            raise CampaignError("a campaign needs at least one crash point")
        if self.nested_crash and self.nested_steps < 1:
            raise CampaignError("a nested-crash campaign needs nested_steps >= 1")
        if self.shards < 1:
            raise CampaignError("a campaign needs at least one shard")
        if not (self.workloads and self.designs and self.mechanisms and self.faults):
            raise CampaignError("empty campaign axis (workloads/designs/mechanisms/faults)")
        known_workloads = set(list_workloads(include_extra=True))
        for workload in self.workloads:
            if workload not in known_workloads:
                raise CampaignError(
                    "unknown workload %r; available: %s"
                    % (workload, ", ".join(sorted(known_workloads)))
                )
        for design in self.designs:
            try:
                get_design(design)
            except ConfigurationError as exc:
                raise CampaignError(str(exc)) from None
        for mechanism in self.mechanisms:
            try:
                TransactionMechanism(mechanism)
            except ValueError:
                raise CampaignError(
                    "unknown transaction mechanism %r" % mechanism
                ) from None
        for name, params in self._fault_fields():
            try:
                make_fault_model(name, **dict(params))
            except FaultInjectionError as exc:
                raise CampaignError(str(exc)) from None

    def jobs(self) -> List[CampaignJob]:
        """The full cross product, in deterministic order."""
        self.validate()
        jobs = []
        for workload in self.workloads:
            for design in self.designs:
                for mechanism in self.mechanisms:
                    for fault, fault_params in self._fault_fields():
                        jobs.append(
                            CampaignJob(
                                workload=workload,
                                design=design,
                                mechanism=mechanism,
                                fault=fault,
                                fault_params=fault_params,
                                crash_points=self.crash_points,
                                seed=self.seed,
                                operations=self.operations,
                                footprint_bytes=self.footprint_bytes,
                                with_counter_recovery=self.with_counter_recovery,
                                nested_crash=self.nested_crash,
                                nested_steps=self.nested_steps,
                                shards=self.shards,
                            )
                        )
        return jobs

    def as_dict(self) -> Dict[str, object]:
        return {
            "workloads": list(self.workloads),
            "designs": list(self.designs),
            "mechanisms": list(self.mechanisms),
            "faults": [
                {"model": name, **dict(params)} for name, params in self._fault_fields()
            ],
            "crash_points": self.crash_points,
            "seed": self.seed,
            "operations": self.operations,
            "footprint_bytes": self.footprint_bytes,
            "with_counter_recovery": self.with_counter_recovery,
            "nested_crash": self.nested_crash,
            "nested_steps": self.nested_steps,
            "shards": self.shards,
        }


@dataclass
class CampaignReport:
    """Aggregate of one campaign run, ready to render or serialize."""

    spec: Dict[str, object]
    results: List[Dict[str, object]]
    resumed_jobs: int = 0
    executor_stats: Dict[str, object] = field(default_factory=dict)
    resilience: Dict[str, int] = field(default_factory=dict)
    #: Torn trailing journal lines moved aside during resume.
    journal_quarantined: int = 0
    #: Older duplicate journal records dropped during resume (a retried
    #: job appends a second record; only the newest counts).
    journal_superseded: int = 0

    def total(self, outcome: Outcome) -> int:
        # .get: journal entries written before an outcome class existed
        # simply count zero for it.
        return sum(r["outcomes"].get(outcome.value, 0) for r in self.results)

    @property
    def points(self) -> int:
        return sum(r["points"] for r in self.results)

    @property
    def crashed(self) -> int:
        return self.total(Outcome.CRASHED)

    @property
    def silent(self) -> int:
        return self.total(Outcome.SILENT)

    def as_dict(self) -> Dict[str, object]:
        return {
            "spec": self.spec,
            "results": self.results,
            "resumed_jobs": self.resumed_jobs,
            "totals": {o.value: self.total(o) for o in Outcome},
            "points": self.points,
            "executor": dict(self.executor_stats),
            "resilience": dict(self.resilience),
            "journal_quarantined": self.journal_quarantined,
            "journal_superseded": self.journal_superseded,
        }

    def render(self) -> str:
        """The triage report: per-cell table, totals, failure examples."""
        lines: List[str] = []
        lines.append("crash campaign — %d job(s), %d crash point(s)" % (
            len(self.results), self.points))
        header = "%-10s %-13s %-13s %-18s %6s %6s %6s %6s %6s %6s %6s %6s %6s" % (
            "workload", "design", "mechanism", "fault",
            "points", "recov", "search", "nrecov", "detect", "tree", "ndet",
            "SILENT", "CRASH",
        )
        lines.append(header)
        lines.append("-" * len(header))
        for result in self.results:
            job = result["job"]
            outcomes = result["outcomes"]
            lines.append(
                "%-10s %-13s %-13s %-18s %6d %6d %6d %6d %6d %6d %6d %6d %6d"
                % (
                    job["workload"],
                    job["design"],
                    job["mechanism"],
                    job["fault"],
                    result["points"],
                    outcomes.get(Outcome.RECOVERED.value, 0),
                    outcomes.get(Outcome.RECOVERED_SEARCH.value, 0),
                    outcomes.get(Outcome.RECOVERED_NESTED.value, 0),
                    outcomes.get(Outcome.DETECTED.value, 0),
                    outcomes.get(Outcome.DETECTED_TREE.value, 0),
                    outcomes.get(Outcome.DETECTED_NESTED.value, 0),
                    outcomes.get(Outcome.SILENT.value, 0),
                    outcomes.get(Outcome.CRASHED.value, 0),
                )
            )
        lines.append("-" * len(header))
        lines.append(
            "totals: %d recovered, %d recovered-by-search, "
            "%d recovered-after-nested-crash, %d detected, %d detected-by-tree, "
            "%d detected-after-nested-crash, %d silent-corruption, "
            "%d recovery-crashed"
            % (
                self.total(Outcome.RECOVERED),
                self.total(Outcome.RECOVERED_SEARCH),
                self.total(Outcome.RECOVERED_NESTED),
                self.total(Outcome.DETECTED),
                self.total(Outcome.DETECTED_TREE),
                self.total(Outcome.DETECTED_NESTED),
                self.silent,
                self.crashed,
            )
        )
        if self.resumed_jobs:
            lines.append("resumed: %d job(s) restored from the journal" % self.resumed_jobs)
        if self.journal_quarantined:
            lines.append(
                "journal: %d torn line(s) quarantined; those jobs re-ran"
                % self.journal_quarantined
            )
        if self.journal_superseded:
            lines.append(
                "journal: %d superseded record(s) deduped (retried jobs count once)"
                % self.journal_superseded
            )
        if any(self.resilience.values()):
            lines.append(
                "checkpointing: %d snapshot(s) saved, %d run(s) restored, "
                "%d quarantined, %d invalidated"
                % (
                    self.resilience.get("saved", 0),
                    self.resilience.get("restored", 0),
                    self.resilience.get("quarantined", 0),
                    self.resilience.get("invalidated", 0),
                )
            )
        triage = [
            (result["job"], example)
            for result in self.results
            for example in result["examples"]
            if example["outcome"] in (Outcome.SILENT.value, Outcome.CRASHED.value)
        ]
        if triage:
            lines.append("")
            lines.append("triage (%d silent/crashed example(s)):" % len(triage))
            for job, example in triage[:20]:
                lines.append(
                    "  [%s] %s/%s/%s fault=%s crash@%.1fns: %s"
                    % (
                        example["outcome"],
                        job["workload"],
                        job["design"],
                        job["mechanism"],
                        job["fault"],
                        example["crash_ns"],
                        example["detail"],
                    )
                )
        return "\n".join(lines)


class JobJournal:
    """Append-only, crash-safe jsonl journal of finished job documents.

    Shared by every resumable runner (crash campaigns, the KV service
    scenarios): each record is one JSON object carrying at least a
    ``key`` plus whatever ``require`` fields the owner shape-checks.
    Records are fsynced line-by-line, deduped last-record-wins on load,
    and torn trailing lines (a mid-write kill) are quarantined to a
    side file instead of failing the resume.
    """

    def __init__(
        self,
        journal_dir: Optional[str],
        name: str = "journal.jsonl",
        require: Sequence[str] = ("key",),
    ) -> None:
        self.journal_dir = journal_dir
        self.path = (
            os.path.join(journal_dir, name) if journal_dir is not None else None
        )
        self.require = tuple(require)
        #: Torn lines moved aside by the last :meth:`load`.
        self.quarantined = 0
        #: Older duplicate records dropped by the last :meth:`load`.
        self.superseded = 0

    def load(self) -> Dict[str, Dict[str, object]]:
        if self.path is None or not os.path.exists(self.path):
            return {}
        completed: Dict[str, Dict[str, object]] = {}
        # Dedupe by job key, last record wins.  A retried job (e.g. a
        # worker killed after journaling, a ``retry_crashed`` re-run, or
        # an at-least-once workqueue delivery) appends a *second* record
        # for the same key; keeping both would double-count its points
        # in any journal-derived tally, so older records are superseded
        # and dropped from the rewritten journal.
        line_by_key: Dict[str, str] = {}
        order: List[str] = []
        torn_lines: List[str] = []
        superseded = 0
        try:
            with open(self.path, "r", encoding="utf-8") as stream:
                for raw in stream:
                    line = raw.strip()
                    if not line:
                        continue
                    try:
                        document = json.loads(line)
                        key = document["key"]
                        for required in self.require:
                            document[required]  # shape check
                    except (ValueError, KeyError, TypeError):
                        # A line torn by a mid-write kill (typically the
                        # trailing one): quarantine it and re-run that
                        # job rather than failing the whole resume.
                        torn_lines.append(line)
                        continue
                    if key in completed:
                        superseded += 1
                    else:
                        order.append(key)
                    completed[key] = document
                    line_by_key[key] = line
        except OSError as exc:
            raise CampaignJournalError(
                "cannot read job journal %s: %s" % (self.path, exc)
            ) from None
        good_lines = [line_by_key[key] for key in order]
        self.superseded += superseded
        if torn_lines:
            self.quarantined += len(torn_lines)
            self._quarantine_lines(good_lines, torn_lines)
        elif superseded:
            self._rewrite(good_lines)
        return completed

    def _rewrite(self, good_lines: List[str]) -> None:
        """Atomically rewrite the journal with only the surviving lines."""
        path = self.path
        if path is None:
            return
        try:
            tmp_path = "%s.tmp.%d" % (path, os.getpid())
            with open(tmp_path, "w", encoding="utf-8") as stream:
                for line in good_lines:
                    stream.write(line + "\n")
                stream.flush()
                os.fsync(stream.fileno())
            os.replace(tmp_path, path)
        except OSError as exc:
            # Best-effort: a read-only journal degrades to in-memory
            # deduplication, never to a failed resume.
            logger.warning(
                "job journal %s: could not rewrite deduped journal (%s)",
                path,
                exc,
            )

    def _quarantine_lines(
        self, good_lines: List[str], torn_lines: List[str]
    ) -> None:
        """Move torn records to a side file; rewrite the journal clean.

        Both writes are best-effort: a read-only journal directory
        degrades to in-memory skipping (the historical behaviour), it
        never turns a recoverable resume into a hard failure.
        """
        path = self.path
        if path is None:
            return
        quarantine_path = path + ".quarantine"
        try:
            with open(quarantine_path, "a", encoding="utf-8") as stream:
                for line in torn_lines:
                    stream.write(line + "\n")
                stream.flush()
                os.fsync(stream.fileno())
            tmp_path = "%s.tmp.%d" % (path, os.getpid())
            with open(tmp_path, "w", encoding="utf-8") as stream:
                for line in good_lines:
                    stream.write(line + "\n")
                stream.flush()
                os.fsync(stream.fileno())
            os.replace(tmp_path, path)
        except OSError as exc:
            logger.warning(
                "job journal %s: could not quarantine %d torn line(s) (%s); "
                "they will be skipped in memory instead",
                path,
                len(torn_lines),
                exc,
            )
            return
        logger.warning(
            "job journal %s: quarantined %d torn line(s) to %s",
            path,
            len(torn_lines),
            quarantine_path,
        )

    def append(self, result: Dict[str, object]) -> None:
        if self.path is None:
            return
        assert self.journal_dir is not None
        os.makedirs(self.journal_dir, exist_ok=True)
        try:
            with open(self.path, "a", encoding="utf-8") as stream:
                stream.write(json.dumps(result, sort_keys=True) + "\n")
                # flush+fsync per record: a power cut or SIGKILL can
                # tear at most the line being written, and that line is
                # quarantined (not fatal) on the next resume.
                stream.flush()
                os.fsync(stream.fileno())
        except OSError as exc:
            raise CampaignJournalError(
                "cannot append to job journal %s: %s" % (self.path, exc)
            ) from None


class CampaignRunner:
    """Plans, executes, journals and resumes a campaign.

    With ``checkpoint_dir`` set, every pending job checkpoints its
    simulation under ``<checkpoint_dir>/<job_key>`` and resumes from
    there after a kill; finished jobs' checkpoint state is deleted as
    soon as their result is journaled (the journal is the durable
    record, the snapshots are only scaffolding).
    """

    JOURNAL_NAME = "journal.jsonl"

    def __init__(
        self,
        spec: CampaignSpec,
        executor: Optional[SweepExecutor] = None,
        journal_dir: Optional[str] = None,
        checkpoint_dir: Optional[str] = None,
        checkpoint_every: Optional[int] = None,
        retry_crashed: bool = False,
    ) -> None:
        from ..bench.parallel import SweepExecutor

        self.spec = spec
        self.executor = executor if executor is not None else SweepExecutor()
        self.journal = JobJournal(
            journal_dir, name=self.JOURNAL_NAME, require=("key", "outcomes")
        )
        self.journal_dir = journal_dir
        self.journal_path = self.journal.path
        self.checkpoint_dir = checkpoint_dir
        self.checkpoint_every = checkpoint_every
        #: Re-run journaled jobs whose record shows recovery-crashed
        #: cells instead of resuming them (their retry record supersedes
        #: the old one in the journal).
        self.retry_crashed = retry_crashed

    @property
    def journal_quarantined(self) -> int:
        return self.journal.quarantined

    @property
    def journal_superseded(self) -> int:
        return self.journal.superseded

    # -- execution --------------------------------------------------------

    def _prepare_job(self, job: CampaignJob, key: str) -> CampaignJob:
        """Attach per-job checkpoint/heartbeat plumbing (key-neutral)."""
        if self.checkpoint_dir is None:
            return job
        job_dir = os.path.join(self.checkpoint_dir, key)
        return dataclasses.replace(
            job,
            checkpoint_dir=job_dir,
            checkpoint_every=self.checkpoint_every,
            heartbeat_path=os.path.join(job_dir, "heartbeat.json"),
        )

    def _cleanup_job_state(self, key: str) -> None:
        """Drop a journaled job's checkpoint scaffolding."""
        if self.checkpoint_dir is None:
            return
        shutil.rmtree(os.path.join(self.checkpoint_dir, key), ignore_errors=True)

    def run(self) -> CampaignReport:
        """Run (or resume) the campaign and return the triage report."""
        jobs = self.spec.jobs()
        completed = self.journal.load()
        if self.retry_crashed:
            # Treat journaled jobs with recovery-crashed cells as
            # pending again; their fresh record supersedes the old one
            # at the next resume (last-record-wins dedupe above).
            retried = [
                key
                for key, record in completed.items()
                if record["outcomes"].get(Outcome.CRASHED.value, 0)
            ]
            for key in retried:
                del completed[key]
            if retried:
                logger.info(
                    "campaign retry: re-running %d job(s) with crashed cells",
                    len(retried),
                )
        keys = [job_key(job) for job in jobs]
        results: List[Optional[Dict[str, object]]] = [
            completed.get(key) for key in keys
        ]
        pending = [index for index, result in enumerate(results) if result is None]
        resumed = len(jobs) - len(pending)
        if resumed:
            logger.info("campaign resume: %d/%d job(s) journaled", resumed, len(jobs))
        for index, result in enumerate(results):
            if result is not None:
                self._cleanup_job_state(keys[index])
        if pending:
            prepared = [self._prepare_job(jobs[index], keys[index]) for index in pending]

            def _journal_and_cleanup(_index: int, value: Dict[str, object]) -> None:
                self.journal.append(value)
                self._cleanup_job_state(value["key"])

            fresh = self.executor.map(
                run_campaign_job,
                prepared,
                on_result=_journal_and_cleanup,
                heartbeats=[job.heartbeat_path for job in prepared],
                # The job key doubles as the workqueue backend's
                # idempotent-publication key, giving distributed runs
                # the same exactly-once resume the journal gives local
                # ones.
                job_ids=[keys[index] for index in pending],
            )
            for index, value in zip(pending, fresh):
                results[index] = value
        resilience: Dict[str, int] = {
            "saved": 0, "restored": 0, "quarantined": 0, "invalidated": 0,
        }
        for result in results:
            job_resilience = result.get("resilience") or {}
            for counter in resilience:
                resilience[counter] += int(job_resilience.get(counter, 0))
        return CampaignReport(
            spec=self.spec.as_dict(),
            results=results,  # type: ignore[arg-type]
            resumed_jobs=resumed,
            executor_stats=self.executor.stats(),
            resilience=resilience,
            journal_quarantined=self.journal_quarantined,
            journal_superseded=self.journal_superseded,
        )
