"""Post-crash memory recovery.

After a reboot, the memory controller decrypts each line with the
counter found in the architectural counter region — exactly what a real
controller would do.  The simulator additionally knows the counter each
line was *actually* encrypted with, so it can report (rather than
silently return garbage for) every line where the two disagree.

:class:`RecoveredMemory` is the byte-level view that transaction-level
recovery (:mod:`repro.txn`) runs on.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from ..config import CACHE_LINE_SIZE, EncryptionConfig
from ..core.invariants import AtomicityViolation, check_counter_atomicity
from ..crypto.otp import OTPCipher, make_block_cipher
from ..errors import DecryptionFailure
from ..utils.bitops import align_down, bytes_to_u64, u64_to_bytes
from .injector import CrashImage

_ZERO_LINE = bytes(CACHE_LINE_SIZE)


class GarbageRead(bytes):
    """Bytes from a non-strict read that touched undecryptable lines.

    A real controller cannot tell garbage from data: the read succeeds
    and returns whatever the wrong pad produced.  The simulator returns
    this ``bytes`` subtype instead of silently zero-filling or handing
    back anonymous bytes, so callers — and the crash checker's
    accounting — can distinguish decrypted garbage from a legitimately
    zero untouched line without any behavioural change for code that
    just wanted the bytes.
    """

    __slots__ = ()


@dataclass
class RecoveredMemory:
    """Decrypted post-crash memory with undecryptable-line tracking."""

    image: CrashImage
    plaintext_lines: Dict[int, bytes]
    garbage_lines: Set[int]
    #: How many non-strict reads returned :class:`GarbageRead` data.
    garbage_reads: int = 0

    def read(self, address: int, length: int, strict: bool = True) -> bytes:
        """Read recovered plaintext bytes.

        ``strict=True`` raises :class:`DecryptionFailure` when the read
        touches a line whose counter was out of sync — recovery code
        that *depends* on such a line is broken.  ``strict=False``
        returns the garbage as a :class:`GarbageRead` (a ``bytes``
        subtype), mirroring real hardware while keeping the taint
        visible to callers that care.
        """
        result = bytearray()
        offset = address
        remaining = length
        garbage_hit = False
        while remaining > 0:
            line = align_down(offset, CACHE_LINE_SIZE)
            if line in self.garbage_lines:
                if strict:
                    raise DecryptionFailure(line)
                garbage_hit = True
            payload = self.plaintext_lines.get(line, _ZERO_LINE)
            start = offset - line
            take = min(remaining, CACHE_LINE_SIZE - start)
            result.extend(payload[start : start + take])
            offset += take
            remaining -= take
        if garbage_hit:
            self.garbage_reads += 1
            return GarbageRead(result)
        return bytes(result)

    def read_u64(self, address: int, strict: bool = True) -> int:
        return bytes_to_u64(self.read(address, 8, strict=strict))

    def is_garbage(self, address: int) -> bool:
        return align_down(address, CACHE_LINE_SIZE) in self.garbage_lines

    def fingerprint(self) -> str:
        """Content hash of the recovered state.

        Covers the plaintext lines and the garbage set — everything
        recovery and validation observe — so two recoveries are
        bit-identical iff their fingerprints match.  Used by the
        nested-crash determinism and resume-equivalence properties.
        """
        digest = hashlib.sha256()
        for address in sorted(self.plaintext_lines):
            digest.update(u64_to_bytes(address))
            digest.update(self.plaintext_lines[address])
        digest.update(b"|garbage|")
        for address in sorted(self.garbage_lines):
            digest.update(u64_to_bytes(address))
        return digest.hexdigest()


class RecoveryManager:
    """Decrypts crash images the way a rebooted controller would."""

    def __init__(self, encryption: EncryptionConfig) -> None:
        self.encryption = encryption
        self._cipher = OTPCipher(make_block_cipher(encryption))

    def recover(self, image: CrashImage, encrypted: bool = True) -> RecoveredMemory:
        """Decrypt every touched data line of ``image``.

        For unencrypted designs pass ``encrypted=False``: payloads are
        stored in the clear and counters are irrelevant.
        """
        plaintext: Dict[int, bytes] = {}
        garbage: Set[int] = set()
        address_map = image.address_map
        for line in image.device.touched_lines():
            if not address_map.is_data_address(line):
                continue
            stored = image.device.read_line(line)
            if not encrypted:
                plaintext[line] = stored.payload
                continue
            architectural = image.counter_store.read(line)
            decrypted = self._cipher.decrypt(line, architectural, stored.payload)
            plaintext[line] = decrypted
            if architectural != stored.encrypted_with:
                # Eq. 4: wrong pad -> garbage plaintext.
                garbage.add(line)
        return RecoveredMemory(
            image=image, plaintext_lines=plaintext, garbage_lines=garbage
        )

    def violations(self, image: CrashImage) -> List[AtomicityViolation]:
        """All counter-atomicity violations in the image."""
        return check_counter_atomicity(image.device, image.counter_store)
