"""Crash injection, post-crash recovery and consistency checking.

The injector reconstructs the exact NVM image at any failure instant
from the persist journal (honouring ADR and ready bits); the recovery
module decrypts that image the way the memory controller would after a
reboot; the checker validates decryptability (Eq. 4) and hands the
recovered bytes to transaction-level recovery.
"""

from .injector import CrashImage, CrashInjector, nested_crash_image
from .recovery import GarbageRead, RecoveredMemory, RecoveryManager
from .checker import CrashConsistencyReport, sweep_crash_points
from .counter_recovery import CounterRecoverer, CounterRecoveryReport, collect_tags
from .session import (
    RecoveryContext,
    RecoveryLedger,
    RecoverySession,
    SessionResult,
    error_digest,
)
from .campaign import (
    CampaignJob,
    CampaignReport,
    CampaignRunner,
    CampaignSpec,
    Outcome,
    job_key,
    run_campaign_job,
)

__all__ = [
    "CrashImage",
    "CrashInjector",
    "nested_crash_image",
    "GarbageRead",
    "RecoveredMemory",
    "RecoveryManager",
    "CrashConsistencyReport",
    "sweep_crash_points",
    "CounterRecoverer",
    "CounterRecoveryReport",
    "collect_tags",
    "RecoveryContext",
    "RecoveryLedger",
    "RecoverySession",
    "SessionResult",
    "error_digest",
    "CampaignJob",
    "CampaignReport",
    "CampaignRunner",
    "CampaignSpec",
    "Outcome",
    "job_key",
    "run_campaign_job",
]
