"""Idempotent, resumable recovery sessions with nested-crash injection.

A second power failure *during* recovery leaves a partially-recovered
durable state — the hard case Phoenix (arxiv 1911.01922) and the
fast-recovery line of work design for.  This module makes every
recovery path in the simulator survive that case:

* :class:`RecoveryContext` is threaded through the recovery procedures
  (txn replay, Osiris counter search, Phoenix tree repair).  They call
  :meth:`~RecoveryContext.step` after every restartable unit of work
  and :meth:`~RecoveryContext.write_line` for every recovery-side line
  write; an armed :class:`~repro.faults.recovery.RecoveryFaultPlan`
  turns either hook into a :class:`~repro.errors.NestedCrash`.  With no
  plan the hooks are pure accounting.
* :class:`RecoverySession` owns the retry loop: on a nested crash it
  materializes the durable state the next boot would see
  (:func:`~repro.crash.injector.nested_crash_image` — base image plus
  the completed recovery writes, re-encrypted) and re-runs recovery on
  it.  Because every recovery procedure is idempotent — replaying a
  log entry or re-searching a counter rewrites state it already holds —
  and every fault point is one-shot, the loop always terminates.
* The session then walks the bounded **escalation ladder**: re-run
  recovery, then Osiris counter search, then Phoenix tree repair, then
  declare the state detected (or crashed).  Each rung's attempts are
  accounted in a :class:`RecoveryLedger`, whose path is deterministic
  for a given (seed, image, plan) — the determinism property the
  nested-crash test suite checks.
"""

from __future__ import annotations

import hashlib
import os
import traceback
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, List, Optional, TYPE_CHECKING

from ..config import CACHE_LINE_SIZE, SystemConfig
from ..errors import NestedCrash, RecoveryError
from ..faults.recovery import RECOVERY_PHASES, RecoveryFaultPlan
from .injector import CrashImage, nested_crash_image
from .recovery import RecoveredMemory, RecoveryManager

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .counter_recovery import CounterRecoverer

_ZERO_LINE = bytes(CACHE_LINE_SIZE)

#: A classifier runs mechanism recovery over the decrypted memory and
#: returns a verdict with ``consistent`` / ``detected`` / ``silent``
#: fields (:class:`repro.workloads.base.ValidationVerdict`); the
#: context must be threaded into the recovery procedures it calls.
Classifier = Callable[[RecoveredMemory, "RecoveryContext"], Any]

#: Margin on the per-rung retry bound: every retry past the first needs
#: at least one freshly fired (one-shot) fault point, so a converging
#: recovery uses at most ``len(plan.points) + 1`` attempts; the margin
#: turns an off-by-one in a recovery procedure into a loud error
#: instead of an infinite loop.
_EXTRA_ATTEMPTS = 1


class RecoveryContext:
    """Step and write bookkeeping for one recovery *attempt*.

    The context makes a recovery procedure restartable: the procedure
    reports each completed step and routes each recovery-side line
    write through :meth:`write_line`, which persists write-through (the
    controller flushes recovery writes immediately — there is no cache
    to lose).  When a fault plan is armed, the scheduled point fires at
    the matching hook as a :class:`NestedCrash`; :attr:`persisted` then
    holds exactly the writes that completed before the failure, which
    is what the next boot's durable state must contain.
    """

    def __init__(self, plan: Optional[RecoveryFaultPlan] = None) -> None:
        self.plan = plan
        #: line address -> plaintext of every completed recovery write.
        self.persisted: Dict[int, bytes] = {}
        #: per-phase completed-step counters.
        self.steps: Dict[str, int] = {}
        #: per-phase line-write counters (torn-write step indexing).
        self.writes: Dict[str, int] = {}
        self._phase: str = RECOVERY_PHASES[0]

    @property
    def phase(self) -> str:
        return self._phase

    def enter_phase(self, phase: str) -> None:
        if phase not in RECOVERY_PHASES:
            raise RecoveryError("unknown recovery phase %r" % phase)
        self._phase = phase
        self.steps.setdefault(phase, 0)
        self.writes.setdefault(phase, 0)

    def write_line(
        self, recovered: RecoveredMemory, address: int, payload: bytes
    ) -> None:
        """One recovery-side line write, persisted write-through.

        An armed ``torn-write`` point tears the write at a seeded
        boundary: the head of the new content persists, the tail keeps
        the pre-write bytes.  The merge persists under a *consistent*
        counter (the controller re-encrypts whatever is in the row
        buffer), so it decrypts cleanly on the next boot — only
        idempotent replay can repair it, no detection channel fires.
        """
        phase = self._phase
        index = self.writes.get(phase, 0)
        self.writes[phase] = index + 1
        if self.plan is not None:
            point = self.plan.tear_write(phase, index)
            if point is not None:
                tear = self.plan.tear_length(point)
                old = recovered.plaintext_lines.get(address, _ZERO_LINE)
                torn = payload[:tear] + old[tear:]
                recovered.plaintext_lines[address] = torn
                recovered.garbage_lines.discard(address)
                self.persisted[address] = torn
                raise NestedCrash(phase, index, "torn-write")
        recovered.plaintext_lines[address] = payload
        recovered.garbage_lines.discard(address)
        self.persisted[address] = payload

    def step(self) -> None:
        """Mark one restartable recovery step complete.

        Everything the procedure persisted so far is durable; an armed
        ``crash`` point for this (phase, step) fails the machine here.
        """
        phase = self._phase
        index = self.steps.get(phase, 0)
        self.steps[phase] = index + 1
        if self.plan is not None and self.plan.crash_after(phase, index) is not None:
            raise NestedCrash(phase, index, "crash")


@dataclass
class RecoveryLedger:
    """Per-rung retry accounting and the escalation path taken.

    ``path`` is the deterministic trace of the whole session — rung
    attempts in order, interleaved with the nested crashes that forced
    retries — so two runs of the same (seed, image, plan) can be
    compared event-for-event, not just by their final outcome.
    """

    attempts: Dict[str, int] = field(default_factory=dict)
    nested: List[Dict[str, object]] = field(default_factory=list)
    path: List[str] = field(default_factory=list)

    def attempt(self, rung: str) -> int:
        count = self.attempts.get(rung, 0) + 1
        self.attempts[rung] = count
        self.path.append("%s#%d" % (rung, count))
        return count

    def record_nested(self, crash: NestedCrash) -> None:
        self.nested.append(
            {"phase": crash.phase, "step": crash.step, "kind": crash.kind}
        )
        self.path.append("nested:%s/%d/%s" % (crash.phase, crash.step, crash.kind))

    def note(self, event: str) -> None:
        self.path.append(event)

    @property
    def nested_crashes(self) -> int:
        return len(self.nested)

    def as_dict(self) -> Dict[str, object]:
        return {
            "attempts": dict(self.attempts),
            "nested_crashes": list(self.nested),
            "path": list(self.path),
        }


def error_digest(exc: BaseException) -> Dict[str, object]:
    """Triage record for a recovery-crash: type, message, trace digest.

    The digest hashes the exception type and the trailing stack frames
    (file:line:function) but *not* the message, so examples that differ
    only in addresses or counters group under one digest.
    """
    frames = traceback.extract_tb(exc.__traceback__)
    trace = [
        "%s:%d:%s" % (os.path.basename(f.filename or "?"), f.lineno or 0, f.name)
        for f in frames[-4:]
    ]
    blob = "|".join([type(exc).__name__] + trace)
    return {
        "type": type(exc).__name__,
        "message": str(exc),
        "digest": hashlib.sha256(blob.encode()).hexdigest()[:12],
        "trace": trace,
    }


@dataclass
class SessionResult:
    """What one recovery session concluded about one crash image."""

    #: consistent | detected | detected-tree | silent | crashed
    status: str
    detail: str = ""
    #: Consistency was reached only through counter search / tree repair.
    via_search: bool = False
    #: Nested crashes injected (and survived or not) during the session.
    nested_injected: int = 0
    recovered: Optional[RecoveredMemory] = None
    verdict: Optional[Any] = None
    ledger: RecoveryLedger = field(default_factory=RecoveryLedger)
    #: Exception triage for ``crashed`` status (:func:`error_digest`).
    error: Optional[Dict[str, object]] = None
    #: The final durable state (advanced past nested crashes).
    image: Optional[CrashImage] = None


class RecoverySession:
    """Runs the bounded escalation ladder over one crash image.

    The ladder, in order; every rung is idempotent, so a nested crash
    inside any rung is handled by materializing the nested image (or
    reusing the in-place-mutated one) and retrying the rung:

    1. **txn replay** — decrypt + mechanism recovery (the classifier);
    2. **counter search** — Osiris: for detected or crashed states,
       search each tagged line's counter neighborhood, then replay;
    3. **tree verify** — for accepted-but-wrong (silent) states on
       ``+bmt`` designs, the root walk + tag sweep converts silent
       corruption into a detection;
    4. **tree repair** — Phoenix: tree-guided counter search + root
       reseal, then replay;
    5. **declare** — whatever status survived the ladder stands; a
       detected-but-unrepairable state stays detected, a recovery
       procedure that keeps crashing stays crashed.
    """

    def __init__(
        self,
        config: SystemConfig,
        encrypted: bool = True,
        plan: Optional[RecoveryFaultPlan] = None,
        recoverer: Optional["CounterRecoverer"] = None,
        tree_checked: bool = False,
    ) -> None:
        self.config = config
        self.encrypted = encrypted
        self.plan = plan
        self.recoverer = recoverer
        self.tree_checked = tree_checked
        self.manager = RecoveryManager(config.encryption)

    @property
    def _attempt_bound(self) -> int:
        points = len(self.plan.points) if self.plan is not None else 0
        return points + 1 + _EXTRA_ATTEMPTS

    # -- rungs -------------------------------------------------------------

    def _replay_rung(
        self, image: CrashImage, classify: Classifier, ledger: RecoveryLedger
    ):
        """Decrypt + txn replay, retried across nested crashes.

        Returns ``(working_image, recovered, verdict, error)`` where
        exactly one of ``verdict`` / ``error`` is set.  Each retry runs
        on the durable state the failed attempt left behind — the
        resume path, not a rollback.
        """
        working = image
        attempts = 0
        bound = self._attempt_bound
        while True:
            attempts += 1
            if attempts > bound:
                raise RecoveryError(
                    "txn replay did not converge within %d attempts — a "
                    "recovery step is not idempotent or a fault point "
                    "re-fired" % bound
                )
            ledger.attempt("txn-replay")
            context = RecoveryContext(self.plan)
            recovered = self.manager.recover(working, encrypted=self.encrypted)
            try:
                verdict = classify(recovered, context)
            except NestedCrash as crash:
                ledger.record_nested(crash)
                working = nested_crash_image(
                    working, context.persisted, self.config, encrypted=self.encrypted
                )
                continue
            except Exception as exc:
                return working, recovered, None, error_digest(exc)
            return working, recovered, verdict, None

    def _search_rung(self, image: CrashImage, ledger: RecoveryLedger) -> bool:
        """Osiris counter search, retried across nested crashes.

        Counter writes land in ``image.counter_store`` write-through,
        so the partially-searched image *is* the resume point: retrying
        the call skips every already-repaired (now consistent) line.
        """
        assert self.recoverer is not None
        attempts = 0
        bound = self._attempt_bound
        while True:
            attempts += 1
            if attempts > bound:
                raise RecoveryError(
                    "counter search did not converge within %d attempts" % bound
                )
            ledger.attempt("counter-search")
            context = RecoveryContext(self.plan)
            context.enter_phase("counter-search")
            try:
                self.recoverer.recover_image(image, context=context)
            except NestedCrash as crash:
                ledger.record_nested(crash)
                continue
            except Exception:
                ledger.note("counter-search-crashed")
                return False
            return True

    def _repair_rung(self, image: CrashImage, ledger: RecoveryLedger):
        """Phoenix tree repair, retried across nested crashes.

        Returns the post-repair verification report, or None when the
        repair itself failed (which must not mask the detection).
        """
        from ..integrity.verifier import repair_image  # deferred: import cycle

        attempts = 0
        bound = self._attempt_bound
        while True:
            attempts += 1
            if attempts > bound:
                raise RecoveryError(
                    "tree repair did not converge within %d attempts" % bound
                )
            ledger.attempt("tree-repair")
            context = RecoveryContext(self.plan)
            context.enter_phase("tree-repair")
            try:
                _search, after = repair_image(image, self.config, context=context)
            except NestedCrash as crash:
                ledger.record_nested(crash)
                continue
            except Exception:
                ledger.note("tree-repair-crashed")
                return None
            return after

    # -- the ladder --------------------------------------------------------

    def run(self, image: CrashImage, classify: Classifier) -> SessionResult:
        """Execute the full escalation ladder for one crash image."""
        ledger = RecoveryLedger()
        result = SessionResult(status="crashed", ledger=ledger)

        working, recovered, verdict, error = self._replay_rung(
            image, classify, ledger
        )
        result.recovered, result.verdict, result.error = recovered, verdict, error
        if error is not None:
            result.status = "crashed"
            result.detail = "%s: %s" % (error["type"], error["message"])
        elif verdict.consistent:
            result.status, result.detail = "consistent", ""
        elif verdict.detected:
            result.status, result.detail = "detected", verdict.detected[0]
        else:
            result.status, result.detail = "silent", verdict.silent[0]

        # Rung 2: Osiris counter search over the same durable state.  A
        # repaired-then-consistent state is adopted; anything else keeps
        # the original classification (a failed search must not mask a
        # detection, nor may it upgrade crashed to silent).
        if result.status in ("detected", "crashed") and self.recoverer is not None:
            if self._search_rung(working, ledger):
                working, recovered, verdict, error = self._replay_rung(
                    working, classify, ledger
                )
                if error is None and verdict.consistent:
                    result.status = "consistent"
                    result.detail = "consistent after counter search"
                    result.via_search = True
                    result.recovered, result.verdict = recovered, verdict
                    result.error = None

        # Rung 3: the integrity tree converts accepted-but-wrong states
        # into detections (root walk + ECC-lane tag sweep on first
        # fetch after restart).
        if result.status == "silent" and self.tree_checked:
            from ..integrity.verifier import verify_image  # deferred

            try:
                report = verify_image(working, self.config)
            except Exception:
                report = None
            if report is not None and not report.clean:
                result.status = "detected-tree"
                result.detail = report.describe()

        # Rung 4: Phoenix tree-guided repair + root reseal.
        if (
            result.status in ("detected", "detected-tree", "crashed")
            and self.tree_checked
            and self.recoverer is not None
        ):
            after = self._repair_rung(working, ledger)
            if after is not None and after.clean:
                working, recovered, verdict, error = self._replay_rung(
                    working, classify, ledger
                )
                if error is None and verdict.consistent:
                    result.status = "consistent"
                    result.detail = "consistent after tree-guided counter search"
                    result.via_search = True
                    result.recovered, result.verdict = recovered, verdict
                    result.error = None

        # Rung 5: declare.  The surviving status stands.
        result.nested_injected = ledger.nested_crashes
        result.image = working
        return result


def run_sharded_session(
    session: RecoverySession,
    result: Any,
    crash_ns: float,
    failed_shards: Iterable[int],
    classify: Classifier,
    core: int = 0,
    adr_budget: Optional[int] = None,
) -> SessionResult:
    """The escalation ladder over a shard-subset failure, reconciled.

    Builds the mixed crash image (healthy shards fully drained, the
    ``failed_shards`` stripped to their budget), runs the full ladder —
    per-shard damage surfaces through the merged journal, so txn
    replay / counter search / tree repair need no shard awareness —
    then applies the **cross-shard reconciliation step**: a
    ``consistent`` verdict whose matched transaction prefix falls below
    the durable commit prefix the barrier proved
    (:func:`~repro.crash.sharded.durable_commit_prefix`) is downgraded
    to ``silent``, because recovery silently discarded a commit the
    machine acknowledged as durable.  ``result`` is the
    :class:`~repro.sim.machine.SimulationResult` of a sharded run.
    """
    # Deferred import: repro.crash.sharded imports the machine module.
    from .sharded import (
        _shard_journals,
        durable_commit_prefix,
        required_prefix_for_core,
        shard_crash_image,
    )

    failed = tuple(sorted(set(failed_shards)))
    image = shard_crash_image(result, crash_ns, failed, adr_budget=adr_budget)
    outcome = session.run(image, classify)
    prefix = durable_commit_prefix(
        result.controller.journal.commits,
        _shard_journals(result),
        crash_ns,
        failed,
        adr_budget=adr_budget,
    )
    required = required_prefix_for_core(prefix, core)
    outcome.ledger.note("reconcile:durable=%d" % required)
    matched = getattr(outcome.verdict, "matched_prefix", None)
    if outcome.status == "consistent" and matched is not None and matched < required:
        outcome.status = "silent"
        outcome.detail = "recovered prefix %d below durable commit prefix %d" % (
            matched,
            required,
        )
    return outcome
