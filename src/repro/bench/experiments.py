"""One experiment class per paper artifact (Figures 12-17, Tables 1-2).

Every experiment exposes ``run(scale, executor=None)`` returning an
:class:`repro.bench.report.ExperimentResult` whose series mirror the
paper's plotted series.  ``scale`` trades fidelity for wall-clock time:

* ``"quick"``  — small footprints/op counts (CI and pytest-benchmark),
* ``"full"``   — larger runs closer to the paper's working sets.

Each sweep-style experiment decomposes into independent
:class:`~repro.bench.parallel.SweepJob` design points and hands them to
a :class:`~repro.bench.parallel.SweepExecutor`, which may run them in a
process pool (``--workers N``) and/or serve them from the on-disk
result cache.  ``executor=None`` means serial, uncached, in-process —
bit-identical to the pre-engine behaviour.  Experiments that inspect
live simulation state (Table 1's crash sweeps) always run in-process.

Absolute numbers differ from the gem5 testbed; the *shape* claims the
paper makes are re-checked programmatically and reported per experiment
(see ``ExperimentResult.claims``).
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Type

from ..config import KB, MB, SystemConfig, bench_config
from ..core.atomicity import TABLE1, required_counter_atomic_fraction
from ..crash.checker import sweep_crash_points
from ..errors import ConfigurationError
from ..workloads.base import WorkloadParams
from ..workloads.registry import list_workloads
from .harness import run_workload, run_workload_multicore
from .parallel import SweepExecutor, SweepJob
from .report import ExperimentResult, Series

#: Designs shown in Figures 12 and 14, in plot order.
FIG12_DESIGNS = ("sca", "fca", "co-located", "co-located-cc")
#: Designs shown in Figure 13, in plot order.
FIG13_DESIGNS = ("no-encryption", "ideal", "sca", "fca", "co-located", "co-located-cc")

_SCALES = ("quick", "full")


def _check_scale(scale: str) -> None:
    if scale not in _SCALES:
        raise ConfigurationError("scale must be one of %s" % (_SCALES,))


def _quick_params(scale: str, operations_quick: int = 40, operations_full: int = 200) -> WorkloadParams:
    if scale == "quick":
        return WorkloadParams(operations=operations_quick, footprint_bytes=64 * KB)
    return WorkloadParams(operations=operations_full, footprint_bytes=256 * KB)


class Experiment:
    """Base class for paper artifacts."""

    name: str = "experiment"
    title: str = ""

    def run(
        self, scale: str = "quick", executor: Optional[SweepExecutor] = None
    ) -> ExperimentResult:
        raise NotImplementedError

    @staticmethod
    def _executor(executor: Optional[SweepExecutor]) -> SweepExecutor:
        """Default: serial, uncached, in-process execution."""
        return executor if executor is not None else SweepExecutor()


class Fig12SingleCore(Experiment):
    """Figure 12: single-core runtime normalized to no-encryption.

    Paper claims re-checked here: SCA beats FCA on average; plain
    co-located is by far the slowest; co-located + counter cache is
    close to SCA.
    """

    name = "fig12"
    title = "Figure 12 — normalized runtime, single core (lower is better)"

    def run(
        self, scale: str = "quick", executor: Optional[SweepExecutor] = None
    ) -> ExperimentResult:
        _check_scale(scale)
        executor = self._executor(executor)
        params = _quick_params(scale)
        # Timing-only mode: the runtime comparison only needs addresses,
        # and no crash is ever injected, so skip crash bookkeeping too.
        config = bench_config().scaled(functional=False).with_controller(
            crash_bookkeeping=False
        )
        workloads = list_workloads()
        designs = ("no-encryption",) + FIG12_DESIGNS
        jobs = [
            SweepJob(design, workload, config=config, params=params)
            for workload in workloads
            for design in designs
        ]
        stats = executor.map_stats(jobs)
        by_point = {(job.workload, job.design): s for job, s in zip(jobs, stats)}
        series = [Series(design) for design in FIG12_DESIGNS]
        for workload in workloads:
            baseline_ns = by_point[(workload, "no-encryption")].runtime_ns
            for design_series in series:
                design_series.add(
                    workload,
                    by_point[(workload, design_series.name)].runtime_ns / baseline_ns,
                )
        for design_series in series:
            design_series.add(
                "average", statistics.fmean(design_series.points[w] for w in workloads)
            )
        by_name = {s.name: s for s in series}
        claims = {
            "SCA not slower than FCA on average": by_name["sca"].points["average"]
            <= by_name["fca"].points["average"] + 1e-6,
            "co-located (no C$) slowest on average": by_name["co-located"].points["average"]
            == max(s.points["average"] for s in series),
            "co-located w/ C$ within 15% of SCA": abs(
                by_name["co-located-cc"].points["average"]
                - by_name["sca"].points["average"]
            )
            / by_name["sca"].points["average"]
            < 0.15,
        }
        return ExperimentResult(
            experiment=self.name, title=self.title, series=series, claims=claims
        )


class Fig13MultiCore(Experiment):
    """Figure 13: throughput vs cores, normalized to 1-core no-encryption.

    Claims: SCA's advantage over FCA grows with core count; SCA stays
    close to ideal.

    The sharding extension rides along: at the highest core count the
    sweep re-runs SCA and FCA on machines with 2, 4, ... memory
    controllers (:mod:`repro.mem.sharded`), checking that SCA's
    advantage survives when controller bandwidth scales out — FCA's
    counter-write serialization is per controller, so sharding narrows
    but must not erase the gap.
    """

    name = "fig13"
    title = "Figure 13 — normalized throughput vs cores (higher is better)"

    def __init__(
        self,
        core_counts: Optional[Sequence[int]] = None,
        workloads: Optional[Sequence[str]] = None,
        shard_counts: Optional[Sequence[int]] = None,
    ) -> None:
        self.core_counts = tuple(core_counts) if core_counts is not None else None
        self.workloads = list(workloads) if workloads is not None else None
        self.shard_counts = tuple(shard_counts) if shard_counts is not None else None

    def _cores_for(self, scale: str) -> Tuple[int, ...]:
        if self.core_counts is not None:
            return self.core_counts
        return (1, 2, 4) if scale == "quick" else (1, 2, 4, 8)

    def _shards_for(self, scale: str) -> Tuple[int, ...]:
        if self.shard_counts is not None:
            return self.shard_counts
        return (1, 2) if scale == "quick" else (1, 2, 4)

    def run(
        self, scale: str = "quick", executor: Optional[SweepExecutor] = None
    ) -> ExperimentResult:
        _check_scale(scale)
        executor = self._executor(executor)
        core_counts = self._cores_for(scale)
        params = _quick_params(scale, operations_quick=30, operations_full=150)
        workloads = self.workloads if self.workloads is not None else list_workloads()
        # Deduplicated job map: the 1-core no-encryption baseline is the
        # same design point the FIG13_DESIGNS sweep visits when 1 is in
        # ``core_counts``.
        job_map: Dict[Tuple[str, str, int], SweepJob] = {}
        for workload in workloads:
            job_map[(workload, "no-encryption", 1)] = SweepJob(
                "no-encryption", workload, config=bench_config(1), params=params
            )
            for design in FIG13_DESIGNS:
                for cores in core_counts:
                    job_map[(workload, design, cores)] = SweepJob(
                        design, workload, config=bench_config(cores), params=params
                    )
        shard_counts = self._shards_for(scale)
        max_cores = max(core_counts)
        shard_map: Dict[Tuple[str, str, int], SweepJob] = {}
        for workload in workloads:
            for design in ("sca", "fca"):
                for shards in shard_counts:
                    if shards == 1:
                        continue  # the core sweep already covers x1
                    shard_map[(workload, design, shards)] = SweepJob(
                        design,
                        workload,
                        config=bench_config(max_cores, shards=shards),
                        params=params,
                    )
        keys = list(job_map)
        shard_keys = list(shard_map)
        stats = executor.map_stats(
            [job_map[key] for key in keys] + [shard_map[key] for key in shard_keys]
        )
        lookup = dict(zip(keys, stats[: len(keys)]))
        shard_lookup = dict(zip(shard_keys, stats[len(keys):]))
        series: List[Series] = []
        sca_over_fca: Dict[int, List[float]] = {c: [] for c in core_counts}
        sca_vs_ideal: List[float] = []
        for workload in workloads:
            base_tput = lookup[(workload, "no-encryption", 1)].throughput_txn_per_s
            per_design: Dict[str, Dict[int, float]] = {}
            for design in FIG13_DESIGNS:
                design_series = Series("%s/%s" % (workload, design))
                per_design[design] = {}
                for cores in core_counts:
                    normalized = (
                        lookup[(workload, design, cores)].throughput_txn_per_s / base_tput
                    )
                    design_series.add("%dc" % cores, normalized)
                    per_design[design][cores] = normalized
                series.append(design_series)
            for cores in core_counts:
                sca_over_fca[cores].append(
                    per_design["sca"][cores] / per_design["fca"][cores]
                )
                if cores == max(core_counts):
                    sca_vs_ideal.append(
                        per_design["sca"][cores] / per_design["ideal"][cores]
                    )
        shard_norm: Dict[Tuple[str, int], List[float]] = {}
        for workload in workloads:
            base_tput = lookup[(workload, "no-encryption", 1)].throughput_txn_per_s
            for design in ("sca", "fca"):
                for shards in shard_counts:
                    if shards == 1:
                        point = lookup[(workload, design, max_cores)]
                    else:
                        point = shard_lookup[(workload, design, shards)]
                    shard_norm.setdefault((design, shards), []).append(
                        point.throughput_txn_per_s / base_tput
                    )
        for design in ("sca", "fca"):
            shard_series = Series("shards/%s@%dc" % (design, max_cores))
            for shards in shard_counts:
                shard_series.add(
                    "x%d" % shards, statistics.fmean(shard_norm[(design, shards)])
                )
            series.append(shard_series)
        shard_gains = {
            shards: statistics.fmean(shard_norm[("sca", shards)])
            / statistics.fmean(shard_norm[("fca", shards)])
            for shards in shard_counts
        }
        gains = {c: statistics.fmean(v) for c, v in sca_over_fca.items()}
        ordered = [gains[c] for c in core_counts]
        claims = {
            "SCA throughput >= 0.95x FCA at every core count (mean)": all(
                g >= 0.95 for g in ordered
            ),
            "SCA advantage over FCA does not shrink with cores": ordered[-1]
            >= ordered[0] - 0.02,
            "SCA delivers >= 60% of ideal throughput at max cores": statistics.fmean(
                sca_vs_ideal
            )
            > 0.60,
        }
        if len(shard_counts) > 1:
            top = max(shard_counts)
            claims["SCA throughput >= 0.95x FCA at every shard count (mean)"] = all(
                shard_gains[s] >= 0.95 for s in shard_counts if s > 1
            )
            claims["sharding the controllers raises SCA throughput at max cores"] = (
                statistics.fmean(shard_norm[("sca", top)])
                > statistics.fmean(shard_norm[("sca", 1)])
            )
        notes = [
            "mean SCA/FCA throughput ratio: "
            + ", ".join("%dc=%.3f" % (c, gains[c]) for c in core_counts),
            "mean SCA/FCA at %dc by controller shards: " % max_cores
            + ", ".join("x%d=%.3f" % (s, shard_gains[s]) for s in shard_counts),
            "paper: SCA beats FCA by 6/11/22/40%% at 1/2/4/8 cores and stays "
            "within 4.7%% of ideal; this simulator reproduces the ordering "
            "and the growth trend, with compressed magnitudes (see "
            "EXPERIMENTS.md).",
        ]
        return ExperimentResult(
            experiment=self.name, title=self.title, series=series, claims=claims, notes=notes
        )


class Fig14WriteTraffic(Experiment):
    """Figure 14: NVMM write traffic normalized to no-encryption.

    Claims: SCA writes fewer bytes than FCA (counter coalescing) and
    fewer than the co-located designs (which ship 72 B per write).
    """

    name = "fig14"
    title = "Figure 14 — normalized write traffic (lower is better)"

    def run(
        self, scale: str = "quick", executor: Optional[SweepExecutor] = None
    ) -> ExperimentResult:
        _check_scale(scale)
        executor = self._executor(executor)
        params = _quick_params(scale)
        config = bench_config()
        workloads = list_workloads()
        designs = ("no-encryption",) + FIG12_DESIGNS
        jobs = [
            SweepJob(design, workload, config=config, params=params)
            for workload in workloads
            for design in designs
        ]
        stats = executor.map_stats(jobs)
        by_point = {(job.workload, job.design): s for job, s in zip(jobs, stats)}
        series = [Series(design) for design in FIG12_DESIGNS]
        for workload in workloads:
            baseline_bytes = by_point[(workload, "no-encryption")].bytes_written
            for design_series in series:
                design_series.add(
                    workload,
                    by_point[(workload, design_series.name)].bytes_written
                    / baseline_bytes,
                )
        for design_series in series:
            design_series.add(
                "average", statistics.fmean(design_series.points[w] for w in workloads)
            )
        by_name = {s.name: s for s in series}
        claims = {
            "SCA writes less than FCA": by_name["sca"].points["average"]
            < by_name["fca"].points["average"],
            # Paper: SCA writes 6.6% less than co-located.  At this
            # scale the two are nearly tied (coalesced counter
            # writebacks vs the 8 B-per-write co-location tax), so the
            # claim carries a 2% tolerance.
            "SCA write traffic <= co-located + 2%": by_name["sca"].points["average"]
            <= by_name["co-located"].points["average"] * 1.02,
        }
        return ExperimentResult(
            experiment=self.name, title=self.title, series=series, claims=claims
        )


class Fig15CounterCache(Experiment):
    """Figure 15: SCA sensitivity to counter cache size and footprint.

    Claims: larger counter caches improve speedup and miss rate, and
    larger footprints blunt the benefit.
    """

    name = "fig15"
    title = "Figure 15 — counter cache size sensitivity (SCA)"

    #: (cache sizes, footprints) per scale.  The paper sweeps 128 KB-8 MB
    #: against 100-1000 MB; a pure-Python trace simulator cannot touch
    #: hundreds of MB in reasonable time, so the quick scale shrinks
    #: both axes by the same ratio, preserving the cache/footprint
    #: coverage relationship that drives the figure.
    SWEEPS = {
        "quick": ((2 * KB, 4 * KB, 8 * KB, 16 * KB), (64 * KB, 128 * KB, 256 * KB)),
        "full": ((16 * KB, 64 * KB, 256 * KB, 1 * MB), (1 * MB, 4 * MB, 8 * MB)),
    }

    def run(
        self, scale: str = "quick", executor: Optional[SweepExecutor] = None
    ) -> ExperimentResult:
        _check_scale(scale)
        executor = self._executor(executor)
        cache_sizes, footprints = self.SWEEPS[scale]
        operations = 200 if scale == "quick" else 1000
        jobs: List[SweepJob] = []
        job_keys: List[Tuple[int, int]] = []
        for footprint in footprints:
            params = WorkloadParams(operations=operations, footprint_bytes=footprint)
            for cache_size in cache_sizes:
                config = bench_config().with_counter_cache(cache_size)
                # Timing-only mode: these sweeps only need addresses,
                # and never inject crashes.
                config = config.scaled(functional=False).with_controller(
                    crash_bookkeeping=False
                )
                jobs.append(SweepJob("sca", "hash", config=config, params=params))
                job_keys.append((footprint, cache_size))
        lookup = dict(zip(job_keys, executor.map_stats(jobs)))
        series: List[Series] = []
        claims: Dict[str, bool] = {}
        speedup_small_fp: List[float] = []
        speedup_large_fp: List[float] = []
        for footprint in footprints:
            runtime_series = Series("speedup@%dKB-footprint" % (footprint // KB))
            miss_series = Series("missrate@%dKB-footprint" % (footprint // KB))
            runtimes: Dict[int, float] = {}
            for cache_size in cache_sizes:
                point = lookup[(footprint, cache_size)]
                runtimes[cache_size] = point.runtime_ns
                miss_series.add(
                    "%dKB" % (cache_size // KB),
                    point.counter_cache_miss_rate or 0.0,
                )
            smallest = runtimes[cache_sizes[0]]
            for cache_size in cache_sizes:
                runtime_series.add(
                    "%dKB" % (cache_size // KB), smallest / runtimes[cache_size]
                )
            series.extend([runtime_series, miss_series])
            largest_speedup = runtime_series.points["%dKB" % (cache_sizes[-1] // KB)]
            if footprint == footprints[0]:
                speedup_small_fp.append(largest_speedup)
            if footprint == footprints[-1]:
                speedup_large_fp.append(largest_speedup)
            claims["speedup >= 1 at max cache (%dKB footprint)" % (footprint // KB)] = (
                largest_speedup >= 0.999
            )
        claims["larger footprint blunts the cache benefit"] = (
            statistics.fmean(speedup_large_fp) <= statistics.fmean(speedup_small_fp) + 0.02
        )
        return ExperimentResult(
            experiment=self.name, title=self.title, series=series, claims=claims
        )


class Fig16TxnSize(Experiment):
    """Figure 16: SCA overhead vs ideal as transactions grow.

    Claims: the overhead shrinks monotonically-ish with transaction
    size and becomes small for page-sized transactions, because the
    counter-atomic fraction of writes shrinks (Section 6.3.5).
    """

    name = "fig16"
    title = "Figure 16 — SCA runtime normalized to ideal vs txn size"

    SIZES = {
        "quick": (1, 4, 16, 64),
        "full": (1, 2, 4, 8, 16, 32, 64),
    }

    def run(
        self, scale: str = "quick", executor: Optional[SweepExecutor] = None
    ) -> ExperimentResult:
        _check_scale(scale)
        executor = self._executor(executor)
        sizes = self.SIZES[scale]
        workloads = list_workloads()
        config = bench_config()
        jobs: List[SweepJob] = []
        job_keys: List[Tuple[str, int, str]] = []
        for workload in workloads:
            for lines in sizes:
                operations = max(lines * 6, 24)
                params = WorkloadParams(
                    operations=operations,
                    footprint_bytes=64 * KB,
                    ops_per_txn=lines,
                )
                for design in ("ideal", "sca"):
                    jobs.append(SweepJob(design, workload, config=config, params=params))
                    job_keys.append((workload, lines, design))
        lookup = dict(zip(job_keys, executor.map_stats(jobs)))
        series: List[Series] = []
        first_last: List[Tuple[float, float]] = []
        for workload in workloads:
            workload_series = Series(workload)
            for lines in sizes:
                workload_series.add(
                    "%d-lines" % lines,
                    lookup[(workload, lines, "sca")].runtime_ns
                    / lookup[(workload, lines, "ideal")].runtime_ns,
                )
            series.append(workload_series)
            points = [workload_series.points["%d-lines" % s] for s in sizes]
            first_last.append((points[0], points[-1]))
        claims = {
            "overhead shrinks from smallest to largest txn (avg)": statistics.fmean(
                last for _first, last in first_last
            )
            <= statistics.fmean(first for first, _last in first_last),
            "overhead < 5% at the largest txn size (avg)": statistics.fmean(
                last for _first, last in first_last
            )
            < 1.05,
        }
        notes = [
            "counter-atomic write fraction: "
            + ", ".join(
                "%d lines -> %.3f" % (s, required_counter_atomic_fraction(s))
                for s in sizes
            )
        ]
        return ExperimentResult(
            experiment=self.name, title=self.title, series=series, claims=claims, notes=notes
        )


class Fig17NvmLatency(Experiment):
    """Figure 17: SCA speedup over co-located across NVM latencies.

    Claims: SCA beats the plain co-located design at every latency
    point, and the read-latency sweep shows a larger SCA advantage at
    *lower* read latency (the serialized decrypt dominates there).
    """

    name = "fig17"
    title = "Figure 17 — SCA speedup over co-located vs NVM latency"

    SCALES = (10.0, 5.0, 3.0, 1.0, 0.5, 0.25)
    LABELS = ("10x-slower", "5x-slower", "3x-slower", "pcm", "2x-faster", "4x-faster")

    def __init__(self, workloads: Optional[Sequence[str]] = None) -> None:
        self.workloads = list(workloads) if workloads is not None else None

    def run(
        self, scale: str = "quick", executor: Optional[SweepExecutor] = None
    ) -> ExperimentResult:
        _check_scale(scale)
        executor = self._executor(executor)
        params = _quick_params(scale)
        workloads = self.workloads if self.workloads is not None else list_workloads()
        jobs: List[SweepJob] = []
        job_keys: List[Tuple[str, str, str, str]] = []
        for axis in ("read", "write"):
            for factor, label in zip(self.SCALES, self.LABELS):
                if axis == "read":
                    config = bench_config().with_nvm(read_latency_scale=factor)
                else:
                    config = bench_config().with_nvm(write_latency_scale=factor)
                for workload in workloads:
                    for design in ("co-located", "sca"):
                        jobs.append(
                            SweepJob(design, workload, config=config, params=params)
                        )
                        job_keys.append((axis, label, workload, design))
        lookup = dict(zip(job_keys, executor.map_stats(jobs)))
        read_series = Series("read-latency-sweep")
        write_series = Series("write-latency-sweep")
        for axis, series in (("read", read_series), ("write", write_series)):
            for _factor, label in zip(self.SCALES, self.LABELS):
                speedups = [
                    lookup[(axis, label, workload, "co-located")].runtime_ns
                    / lookup[(axis, label, workload, "sca")].runtime_ns
                    for workload in workloads
                ]
                series.add(label, statistics.fmean(speedups))
        claims = {
            "SCA faster than co-located at every read latency": all(
                v > 1.0 for v in read_series.points.values()
            ),
            "SCA read advantage larger at 4x-faster than at 10x-slower": read_series.points[
                "4x-faster"
            ]
            > read_series.points["10x-slower"],
        }
        return ExperimentResult(
            experiment=self.name,
            title=self.title,
            series=[read_series, write_series],
            claims=claims,
        )


class FigIntegrity(Experiment):
    """Integrity extension: the cost of a crash-consistent Bonsai tree.

    Not a figure from the paper — it quantifies the tree the paper's
    threat model omits (see docs/integrity_tree.md).  Four variants run
    against their tree-less bases: ``fca+bmt`` / ``sca+bmt-eager``
    drain every root path before the write is architecturally persistent
    (Freij-style strict persistence, no ADR cover for metadata), while
    ``sca+bmt`` / ``fca+bmt-lazy`` coalesce dirty tree nodes in the
    on-chip node cache and rebuild interior levels after a crash
    (Phoenix-style).

    Claims: eager persistence costs real runtime; lazy is near-free;
    SCA+lazy keeps a clear runtime *and* write-traffic advantage over
    FCA+eager, mirroring the paper's SCA-vs-FCA argument at the
    metadata level.
    """

    name = "integrity"
    title = "Integrity tree — runtime/traffic vs the tree-less base designs"

    #: (variant, its tree-less baseline) in plot order.
    VARIANTS = (
        ("fca+bmt", "fca"),
        ("fca+bmt-lazy", "fca"),
        ("sca+bmt-eager", "sca"),
        ("sca+bmt", "sca"),
    )

    def __init__(self, workloads: Optional[Sequence[str]] = None) -> None:
        self.workloads = list(workloads) if workloads is not None else None

    def _workloads_for(self, scale: str) -> List[str]:
        if self.workloads is not None:
            return self.workloads
        return ["array", "hash", "btree"] if scale == "quick" else list_workloads()

    def run(
        self, scale: str = "quick", executor: Optional[SweepExecutor] = None
    ) -> ExperimentResult:
        _check_scale(scale)
        executor = self._executor(executor)
        params = _quick_params(scale)
        config = bench_config()
        workloads = self._workloads_for(scale)
        designs = sorted({name for pair in self.VARIANTS for name in pair})
        jobs = [
            SweepJob(design, workload, config=config, params=params)
            for workload in workloads
            for design in designs
        ]
        stats = executor.map_stats(jobs)
        by_point = {(job.workload, job.design): s for job, s in zip(jobs, stats)}

        def ratios(metric: str, variant: str, base: str) -> List[float]:
            return [
                getattr(by_point[(w, variant)], metric)
                / getattr(by_point[(w, base)], metric)
                for w in workloads
            ]

        series: List[Series] = []
        averages: Dict[Tuple[str, str], float] = {}
        for metric, prefix in (("runtime_ns", "runtime"), ("bytes_written", "traffic")):
            for variant, base in self.VARIANTS:
                variant_series = Series("%s/%s" % (prefix, variant))
                values = ratios(metric, variant, base)
                for workload, value in zip(workloads, values):
                    variant_series.add(workload, value)
                average = statistics.fmean(values)
                variant_series.add("average", average)
                averages[(prefix, variant)] = average
                series.append(variant_series)
        sca_vs_fca_runtime = statistics.fmean(
            ratios("runtime_ns", "sca+bmt", "fca+bmt")
        )
        sca_vs_fca_traffic = statistics.fmean(
            ratios("bytes_written", "sca+bmt", "fca+bmt")
        )
        tree_writes = {
            variant: sum(by_point[(w, variant)].tree_node_writes for w in workloads)
            for variant, _base in self.VARIANTS
        }
        claims = {
            "eager tree persistence costs runtime (fca+bmt > 1.05x fca)": averages[
                ("runtime", "fca+bmt")
            ]
            > 1.05,
            "lazy tree persistence is near-free (sca+bmt <= 1.10x sca)": averages[
                ("runtime", "sca+bmt")
            ]
            <= 1.10,
            "SCA+lazy runtime beats FCA+eager (mean ratio < 0.9)": sca_vs_fca_runtime
            < 0.9,
            "SCA+lazy write traffic beats FCA+eager (mean ratio < 0.9)": sca_vs_fca_traffic
            < 0.9,
            "lazy coalescing writes fewer tree nodes than eager (both bases)": (
                tree_writes["fca+bmt-lazy"] < tree_writes["fca+bmt"]
                and tree_writes["sca+bmt"] < tree_writes["sca+bmt-eager"]
            ),
        }
        notes = [
            "mean sca+bmt/fca+bmt: runtime %.3f, write traffic %.3f"
            % (sca_vs_fca_runtime, sca_vs_fca_traffic),
            "tree node writes: "
            + ", ".join(
                "%s=%d" % (variant, tree_writes[variant])
                for variant, _base in self.VARIANTS
            ),
        ]
        return ExperimentResult(
            experiment=self.name, title=self.title, series=series, claims=claims, notes=notes
        )


class Table1Stages(Experiment):
    """Table 1: which transaction stages need counter-atomicity.

    Verified two ways: (a) the static per-stage rules, and (b) crash
    sweeps — SCA (which pairs only the commit-record writes) recovers
    consistently from every crash point, while the unsafe design (no
    pairing anywhere) does not.

    Always runs in-process: the crash sweeps walk the live write-queue
    history and journal, which worker processes cannot ship back.
    """

    name = "table1"
    title = "Table 1 — per-stage counter-atomicity requirements"

    def run(
        self, scale: str = "quick", executor: Optional[SweepExecutor] = None
    ) -> ExperimentResult:
        _check_scale(scale)
        params = WorkloadParams(operations=6, footprint_bytes=8 * KB)
        rule_series = Series("counter-atomicity-required")
        for rule in TABLE1:
            rule_series.add(rule.stage.value, 1.0 if rule.counter_atomicity_required else 0.0)
        series = [rule_series]
        claims: Dict[str, bool] = {}
        max_points = 120 if scale == "quick" else 400
        for design, expect_consistent in (("sca", True), ("fca", True), ("unsafe", False)):
            outcome = run_workload(design, "array", params=params)
            report = sweep_crash_points(
                outcome.result, outcome.validator(0), max_points=max_points
            )
            crash_series = Series("crash-sweep/%s" % design)
            crash_series.add("points", float(report.total))
            crash_series.add("consistent", float(report.consistent))
            crash_series.add("inconsistent", float(report.inconsistent))
            series.append(crash_series)
            if expect_consistent:
                claims["%s recovers at every crash point" % design] = report.all_consistent
            else:
                claims["%s fails at some crash point" % design] = not report.all_consistent
        return ExperimentResult(
            experiment=self.name, title=self.title, series=series, claims=claims
        )


class Table2Config(Experiment):
    """Table 2: the evaluated system configuration."""

    name = "table2"
    title = "Table 2 — system configuration"

    def run(
        self, scale: str = "quick", executor: Optional[SweepExecutor] = None
    ) -> ExperimentResult:
        _check_scale(scale)
        from ..config import default_config

        config = default_config()
        series = [Series("parameter")]
        notes = ["%s: %s" % (k, v) for k, v in config.describe().items()]
        series[0].add("parameters", float(len(notes)))
        claims = {
            "data write queue has 64 entries": config.controller.data_write_queue_entries == 64,
            "counter write queue has 16 entries": config.controller.counter_write_queue_entries
            == 16,
            "counter cache is 1MB 16-way": config.counter_cache.size_bytes == MB
            and config.counter_cache.ways == 16,
            "encryption latency is 40ns": config.encryption.latency_ns == 40.0,
            "tWR is 300ns": config.nvm.t_wr_ns == 300.0,
        }
        return ExperimentResult(
            experiment=self.name, title=self.title, series=series, claims=claims, notes=notes
        )


EXPERIMENTS: Dict[str, Type[Experiment]] = {
    cls.name: cls  # type: ignore[misc]
    for cls in (
        Fig12SingleCore,
        Fig13MultiCore,
        Fig14WriteTraffic,
        Fig15CounterCache,
        Fig16TxnSize,
        Fig17NvmLatency,
        FigIntegrity,
        Table1Stages,
        Table2Config,
    )
}


def get_experiment(name: str) -> Experiment:
    try:
        cls = EXPERIMENTS[name]
    except KeyError:
        raise ConfigurationError(
            "unknown experiment %r; available: %s" % (name, ", ".join(EXPERIMENTS))
        ) from None
    return cls()
