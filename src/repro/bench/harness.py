"""Run workloads under design points and collect results.

The harness is what every figure bench and most integration tests call:
it wires workload -> transaction mechanism -> trace -> machine for each
core and hands back the simulation result plus the per-core bookkeeping
needed for crash validation.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..config import SystemConfig, fast_config
from ..sim.machine import Machine, SimulationResult
from ..sim.trace import Trace, TraceBuilder
from ..txn.heap import MemoryLayout
from ..txn.manager import make_transactions
from ..workloads.base import PrefixValidator, WorkloadParams, WorkloadRun
from ..workloads.registry import get_workload


@dataclass
class WorkloadRunOutcome:
    """One finished (workload, design, machine) combination."""

    design: str
    workload: str
    result: SimulationResult
    runs: List[WorkloadRun]
    layout: MemoryLayout

    @property
    def stats(self):
        return self.result.stats

    def validator(self, core: int = 0) -> PrefixValidator:
        """A crash validator for one core's transaction history."""
        return PrefixValidator(
            self.runs[core],
            txn_end_times=self.result.txn_end_times[core],
        )


def build_traces(
    workload_name: str,
    config: SystemConfig,
    mechanism: str = "undo",
    params: Optional[WorkloadParams] = None,
    log_capacity: Optional[int] = None,
) -> tuple:
    """Generate one trace per core; returns (traces, runs, layout)."""
    if log_capacity is None:
        effective_params = params or WorkloadParams()
        # Each batched op can touch a handful of lines; size the log to
        # the worst batch with headroom for tree splits and rotations.
        log_capacity = max(160, effective_params.ops_per_txn * 12 + 16)
    layout = MemoryLayout.build(config, log_capacity=log_capacity)
    traces: List[Trace] = []
    runs: List[WorkloadRun] = []
    for core in range(config.num_cores):
        workload = get_workload(workload_name, params)
        builder = TraceBuilder(
            name="%s-core%d" % (workload_name, core), functional=config.functional
        )
        arena = layout.arena(core)
        txns = make_transactions(mechanism, builder, arena)
        run = workload.generate(builder, txns, arena, mechanism=mechanism)
        traces.append(builder.build())
        runs.append(run)
    return traces, runs, layout


def run_workload(
    design: str,
    workload_name: str,
    config: Optional[SystemConfig] = None,
    mechanism: str = "undo",
    params: Optional[WorkloadParams] = None,
) -> WorkloadRunOutcome:
    """Run one workload on every core of a machine under one design."""
    if config is None:
        config = fast_config()
    traces, runs, layout = build_traces(workload_name, config, mechanism, params)
    result = Machine(config, design).run(traces)
    return WorkloadRunOutcome(
        design=design,
        workload=workload_name,
        result=result,
        runs=runs,
        layout=layout,
    )


#: Memoized traces for the stats-only sweep path.  Trace generation is
#: pure given ``(workload, config, mechanism, params)`` — workloads seed
#: their own ``random.Random`` from ``params.seed`` — and the figure
#: sweeps replay the *same* traces under five designs, so regenerating
#: per design point is pure waste.  Safe to share because traces are
#: immutable once built (``Op`` is frozen; the machine only reads them)
#: and the stats path discards the per-run bookkeeping.
_TRACE_MEMO: "OrderedDict[Tuple, tuple]" = OrderedDict()
_TRACE_MEMO_LIMIT = 64


def _memoized_traces(
    workload_name: str,
    config: SystemConfig,
    mechanism: str,
    params: Optional[WorkloadParams],
) -> List[Trace]:
    key = (workload_name, config, mechanism, params or WorkloadParams())
    cached = _TRACE_MEMO.get(key)
    if cached is None:
        cached = build_traces(workload_name, config, mechanism, params)
        _TRACE_MEMO[key] = cached
        if len(_TRACE_MEMO) > _TRACE_MEMO_LIMIT:
            _TRACE_MEMO.popitem(last=False)
    else:
        _TRACE_MEMO.move_to_end(key)
    return cached[0]


def run_workload_stats(
    design: str,
    workload_name: str,
    config: Optional[SystemConfig] = None,
    mechanism: str = "undo",
    params: Optional[WorkloadParams] = None,
):
    """Like :func:`run_workload` but returns only the machine stats.

    This is the worker-friendly entry point of the parallel sweep
    engine (:mod:`repro.bench.parallel`): stats are small, picklable
    and JSON-serializable, unlike the live controller/hierarchy held by
    a full :class:`WorkloadRunOutcome`.  Traces are memoized across
    calls (per worker process) since only the stats escape.
    """
    if config is None:
        config = fast_config()
    traces = _memoized_traces(workload_name, config, mechanism, params)
    return Machine(config, design).run(traces).stats


def run_workload_multicore(
    design: str,
    workload_name: str,
    core_counts: Sequence[int],
    base_config: Optional[SystemConfig] = None,
    mechanism: str = "undo",
    params: Optional[WorkloadParams] = None,
) -> Dict[int, WorkloadRunOutcome]:
    """Run the same workload at several core counts (Figure 13)."""
    outcomes: Dict[int, WorkloadRunOutcome] = {}
    for cores in core_counts:
        if base_config is None:
            config = fast_config(num_cores=cores)
        else:
            config = base_config.scaled(num_cores=cores)
        outcomes[cores] = run_workload(design, workload_name, config, mechanism, params)
    return outcomes
