"""Command-line entry point: ``repro-bench``.

Runs one or all experiments and prints the paper-style tables::

    repro-bench --list
    repro-bench fig12
    repro-bench all --scale full --workers 4
    repro-bench perf --json BENCH_PR1.json

Sweeps fan out over ``--workers`` processes and memoize finished design
points in an on-disk cache (see ``repro.bench.parallel``), so repeated
invocations are incremental; ``--no-cache`` forces fresh runs.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import List, Mapping, Optional

from .experiments import EXPERIMENTS, get_experiment
from .parallel import ResultCache, SweepExecutor, default_cache_dir


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-bench",
        description=(
            "Regenerate the tables and figures of 'Crash Consistency in "
            "Encrypted Non-Volatile Main Memory Systems' (HPCA 2018)."
        ),
    )
    parser.add_argument(
        "experiment",
        nargs="?",
        default="all",
        help="experiment name (%s), 'all', 'perf' (kernel/sweep regression "
        "benchmarks), 'campaign' (fault-injection crash campaign), 'serve' "
        "(multi-tenant KV service traffic with per-tenant SLO report), or "
        "'designs' (print the composed design matrix)"
        % ", ".join(EXPERIMENTS),
    )
    parser.add_argument(
        "--scale",
        choices=("quick", "full"),
        default="quick",
        help="quick = small CI-sized runs; full = closer to paper working sets",
    )
    parser.add_argument("--list", action="store_true", help="list experiments and exit")
    parser.add_argument(
        "--chart",
        action="store_true",
        help="render each result as an ASCII chart in addition to the table",
    )
    parser.add_argument(
        "--json",
        metavar="PATH",
        default=None,
        help="also write all results as a JSON document to PATH ('-' = stdout)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        metavar="N",
        help="fan sweep design points out over N worker processes "
        "(default 1 = in-process serial execution)",
    )
    parser.add_argument(
        "--backend",
        choices=("inline", "pool", "workqueue"),
        default=None,
        help="execution backend: 'inline' (serial in-process oracle), "
        "'pool' (hardened local process pool), 'workqueue' (shared-"
        "directory lease queue; see --queue-dir).  Default: pool when "
        "--workers > 1, inline otherwise.  An unavailable backend "
        "degrades down the ladder workqueue -> pool -> inline, counted "
        "in executor stats",
    )
    parser.add_argument(
        "--queue-dir",
        metavar="DIR",
        default=None,
        help="shared directory for the workqueue backend (lease files, "
        "idempotent results); default: a private temporary directory",
    )
    parser.add_argument(
        "--lease-timeout",
        type=float,
        default=30.0,
        metavar="SECONDS",
        help="workqueue lease deadline: a job whose lease goes this stale "
        "is reclaimed from its (dead or stalled) worker and re-queued",
    )
    parser.add_argument(
        "--max-lease-failures",
        type=int,
        default=3,
        metavar="N",
        help="quarantine a job as poison after N failed leases "
        "(expiries, worker errors, corrupt results)",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the on-disk result cache (every design point reruns)",
    )
    parser.add_argument(
        "--cache-dir",
        metavar="DIR",
        default=None,
        help="result cache location (default: $REPRO_CACHE_DIR or %s)"
        % default_cache_dir(),
    )
    parser.add_argument(
        "--clear-cache",
        action="store_true",
        help="remove all cached sweep results, then proceed",
    )
    perf = parser.add_argument_group("perf options (experiment = 'perf')")
    perf.add_argument(
        "--compare",
        metavar="BASELINE.json",
        default=None,
        help="compare the fresh perf run against a recorded BENCH_*.json "
        "document, printing per-kernel ns/op deltas; exits nonzero if any "
        "kernel regresses beyond --regression-threshold",
    )
    perf.add_argument(
        "--regression-threshold",
        type=float,
        default=3.0,
        metavar="RATIO",
        help="ns/op ratio vs the --compare baseline above which a kernel "
        "counts as a hard regression (default 3.0; absolute timings are "
        "machine-dependent, so keep this generous)",
    )
    campaign = parser.add_argument_group(
        "campaign options (experiment = 'campaign')"
    )
    campaign.add_argument(
        "--campaign-dir",
        metavar="DIR",
        default=None,
        help="journal directory; a rerun pointed here resumes instead of "
        "re-executing finished jobs (default: no journal, no resume)",
    )
    campaign.add_argument("--seed", type=int, default=42, metavar="N")
    campaign.add_argument(
        "--crash-points",
        type=int,
        default=20,
        metavar="N",
        help="crash points swept per (workload, design, mechanism, fault) cell",
    )
    campaign.add_argument(
        "--workloads", default="array", metavar="A,B", help="comma-separated"
    )
    campaign.add_argument(
        "--designs", default="sca,unsafe", metavar="A,B", help="comma-separated"
    )
    campaign.add_argument(
        "--mechanisms", default="undo", metavar="A,B", help="comma-separated"
    )
    campaign.add_argument(
        "--faults",
        default=None,
        metavar="A,B",
        help="comma-separated fault-model names (default: the full suite)",
    )
    campaign.add_argument(
        "--operations", type=int, default=8, metavar="N",
        help="workload operations per run",
    )
    campaign.add_argument(
        "--job-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="kill and retry any campaign job exceeding this wall time",
    )
    campaign.add_argument(
        "--retries",
        type=int,
        default=2,
        metavar="N",
        help="retry a failed or hung campaign job up to N times",
    )
    campaign.add_argument(
        "--fresh",
        action="store_true",
        help="ignore any existing campaign journal and rerun everything",
    )
    campaign.add_argument(
        "--checkpoint-every",
        type=int,
        default=None,
        metavar="EVENTS",
        help="checkpoint each job's simulation every N simulated events; "
        "a killed run resumes from its newest valid snapshot",
    )
    campaign.add_argument(
        "--checkpoint-dir",
        metavar="DIR",
        default=None,
        help="where per-job snapshots live (default: "
        "<campaign-dir>/checkpoints when checkpointing is on)",
    )
    campaign.add_argument(
        "--resume-from",
        metavar="DIR",
        default=None,
        help="resume the campaign journaled in DIR (shorthand for "
        "--campaign-dir DIR that insists the directory already exists)",
    )
    campaign.add_argument(
        "--heartbeat-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="declare a worker stalled (and retry its job) when its "
        "heartbeat file goes this stale; needs checkpointing on",
    )
    campaign.add_argument(
        "--strict",
        action="store_true",
        help="also exit nonzero when any crash point is silent corruption",
    )
    campaign.add_argument(
        "--with-counter-recovery",
        action="store_true",
        help="retry detected failures with the Osiris-style counter "
        "search; repaired points count as 'recovered-by-search'",
    )
    campaign.add_argument(
        "--nested-crash",
        action="store_true",
        help="sweep nested crashes: recover every crash point under "
        "each schedule of the crash-point x recovery-step grid, "
        "injecting a second power failure (or torn recovery write) "
        "mid-recovery; the resumed recovery must converge "
        "('recovered-after-nested-crash') or stay loud "
        "('detected-after-nested-crash')",
    )
    campaign.add_argument(
        "--nested-steps",
        type=int,
        default=2,
        metavar="N",
        help="recovery steps per phase covered by the nested-crash "
        "grid (default: 2)",
    )
    campaign.add_argument(
        "--shards",
        type=int,
        default=1,
        metavar="N",
        help="memory-controller shards per simulated machine; above 1 "
        "each job also sweeps shard-subset ADR failures and reconciles "
        "the cross-shard commit log (--strict then also fails on any "
        "lost durable commit)",
    )
    campaign.add_argument(
        "--retry-crashed",
        action="store_true",
        help="re-run journaled jobs that recorded recovery-crashed "
        "cells instead of resuming them; the fresh record supersedes "
        "the old one in the journal",
    )
    campaign.add_argument(
        "--chaos",
        action="store_true",
        help="chaos smoke harness: run the campaign twice — serially "
        "(the oracle) and on the workqueue backend with seeded worker "
        "faults (kill/stall/corrupt/duplicate) — and fail unless triage "
        "counts are bit-identical and every result was published "
        "exactly once",
    )
    campaign.add_argument(
        "--chaos-faults",
        default=None,
        metavar="A,B",
        help="comma-separated chaos fault kinds to inject "
        "(default: kill,stall,corrupt,duplicate)",
    )
    campaign.add_argument(
        "--integrity",
        action="store_true",
        help="run every encrypted design with its Bonsai-Merkle-tree "
        "variant (fca -> fca+bmt, ...); post-crash tree verification "
        "reclassifies silent corruption as 'detected-by-tree'",
    )
    campaign.add_argument(
        "--integrity-mode",
        choices=("eager", "lazy"),
        default=None,
        metavar="MODE",
        help="tree persistence mode for --integrity: 'eager' drains "
        "the whole root path at every counter persist (strict, "
        "Freij-style), 'lazy' coalesces dirty nodes in the tree cache "
        "(Phoenix-style); default: each design's own default",
    )
    serve = parser.add_argument_group(
        "serve options (experiment = 'serve'; also honors --designs, "
        "--seed, --mechanisms, --nested-crash, --with-counter-recovery, "
        "--workers/--backend and --json)"
    )
    serve.add_argument(
        "--tenants", type=int, default=4, metavar="N",
        help="tenant namespaces, each with an isolated arena (default 4)",
    )
    serve.add_argument(
        "--ops", type=int, default=200, metavar="N",
        help="operations in the generated traffic stream (default 200)",
    )
    serve.add_argument(
        "--crash-mid-traffic",
        action="store_true",
        help="cut power mid-traffic, recover every tenant arena, and add "
        "the durability triage (acked-but-lost vs recovered) to the SLO "
        "report; without it the report is the crash-free latency baseline",
    )
    serve.add_argument(
        "--crash-fraction", type=float, default=0.5, metavar="F",
        help="where in the run the crash lands, as a fraction of the "
        "simulated runtime (default 0.5; snapped to the nearest "
        "durability-interesting instant)",
    )
    serve.add_argument(
        "--traffic-mode", choices=("open", "closed"), default="open",
        help="open = rate-driven arrivals (internet-facing traffic); "
        "closed = fixed client pool with think time",
    )
    serve.add_argument(
        "--arrival", choices=("poisson", "bursty"), default="poisson",
        help="open-loop arrival process (bursty = ON/OFF-modulated Poisson)",
    )
    serve.add_argument(
        "--rate", type=float, default=0.25, metavar="OPS_PER_US",
        help="open-loop mean arrival rate in ops per modeled microsecond",
    )
    serve.add_argument(
        "--clients", type=int, default=8, metavar="N",
        help="closed-loop concurrent clients (default 8)",
    )
    serve.add_argument(
        "--think-ns", type=float, default=1500.0, metavar="NS",
        help="closed-loop per-client think time (default 1500 ns)",
    )
    serve.add_argument(
        "--zipf", type=float, default=0.9, metavar="ALPHA",
        help="key-popularity skew (0 = uniform; default 0.9)",
    )
    serve.add_argument(
        "--keyspace", type=int, default=256, metavar="N",
        help="distinct keys per tenant namespace (default 256)",
    )
    serve.add_argument(
        "--fault",
        default=None,
        metavar="MODEL",
        help="also corrupt the crash image with this fault model "
        "(see the campaign fault registry) before recovery",
    )
    serve.add_argument(
        "--serve-dir",
        metavar="DIR",
        default=None,
        help="journal directory; a rerun pointed here resumes finished "
        "design reports instead of re-running them",
    )
    return parser


def _make_executor(args: argparse.Namespace) -> SweepExecutor:
    if args.clear_cache:
        scrubbed = ResultCache(args.cache_dir)
        removed = scrubbed.clear()
        print("cleared %d cached result(s) from %s" % (removed, scrubbed.directory))
    cache: Optional[ResultCache] = None
    if not args.no_cache:
        cache = ResultCache(args.cache_dir)
    return SweepExecutor(
        workers=args.workers,
        cache=cache,
        backend=args.backend,
        queue_dir=args.queue_dir,
        lease_timeout_s=args.lease_timeout,
        max_lease_failures=args.max_lease_failures,
    )


def _run_perf(args: argparse.Namespace) -> int:
    import json

    from .perf import (
        compare_documents,
        render_comparison,
        render_perf_report,
        run_perf,
    )

    document = run_perf(scale=args.scale, workers=max(args.workers, 4))
    print(render_perf_report(document))
    if args.json is not None:
        payload = json.dumps(document, indent=2, sort_keys=True)
        if args.json == "-":
            print(payload)
        else:
            with open(args.json, "w", encoding="utf-8") as stream:
                stream.write(payload + "\n")
            print("wrote %s" % args.json)
    if args.compare is not None:
        with open(args.compare, "r", encoding="utf-8") as stream:
            baseline = json.load(stream)
        comparison = compare_documents(
            document, baseline, regression_threshold=args.regression_threshold
        )
        print(render_comparison(comparison))
        if comparison["regressions"]:
            return 1
    return 0


def _run_campaign_chaos(args: argparse.Namespace, spec) -> int:
    import json

    from .chaos import FAULT_KINDS, render_chaos_report, run_chaos_campaign

    if args.chaos_faults:
        kinds = tuple(
            kind.strip() for kind in args.chaos_faults.split(",") if kind.strip()
        )
    else:
        kinds = FAULT_KINDS
    try:
        document = run_chaos_campaign(
            spec,
            workers=max(2, args.workers),
            queue_dir=args.queue_dir,
            # Chaos recovery waits on lease expiry; the normal 30s
            # default would make the smoke run crawl, so shorten it
            # unless the user chose a lease timeout explicitly.
            lease_timeout_s=2.0 if args.lease_timeout == 30.0 else args.lease_timeout,
            chaos_seed=args.seed,
            kinds=kinds,
        )
    except ValueError as exc:
        print("repro-bench campaign: %s" % exc, file=sys.stderr)
        return 2
    print(render_chaos_report(document))
    if args.json is not None:
        payload = json.dumps(document, indent=2, sort_keys=True)
        if args.json == "-":
            print(payload)
        else:
            with open(args.json, "w", encoding="utf-8") as stream:
                stream.write(payload + "\n")
            print("wrote %s" % args.json)
    return 0 if document["ok"] else 1


def _run_campaign(args: argparse.Namespace) -> int:
    import json
    import os

    from ..errors import CampaignError
    from ..crash.campaign import CampaignRunner, CampaignSpec

    if args.resume_from is not None:
        if not os.path.isdir(args.resume_from):
            print(
                "repro-bench campaign: --resume-from %s: no such directory"
                % args.resume_from,
                file=sys.stderr,
            )
            return 2
        if args.campaign_dir is not None and args.campaign_dir != args.resume_from:
            print(
                "repro-bench campaign: --resume-from and --campaign-dir disagree",
                file=sys.stderr,
            )
            return 2
        args.campaign_dir = args.resume_from
    checkpoint_dir = args.checkpoint_dir
    if (
        checkpoint_dir is None
        and args.checkpoint_every is not None
        and args.campaign_dir is not None
    ):
        checkpoint_dir = os.path.join(args.campaign_dir, "checkpoints")
    if args.fresh and args.campaign_dir is not None:
        journal = os.path.join(args.campaign_dir, CampaignRunner.JOURNAL_NAME)
        if os.path.exists(journal):
            os.remove(journal)
        if checkpoint_dir is not None and os.path.isdir(checkpoint_dir):
            import shutil

            shutil.rmtree(checkpoint_dir, ignore_errors=True)
    faults = args.faults.split(",") if args.faults else None
    designs = tuple(args.designs.split(","))
    if args.integrity:
        from ..core.designs import get_design, integrity_variant
        from ..errors import ConfigurationError

        # Map each encrypted design onto its +bmt variant; designs with
        # nothing to hash (no counters) pass through unchanged.
        try:
            designs = tuple(
                integrity_variant(name, args.integrity_mode)
                if get_design(name).encrypts
                else name
                for name in designs
            )
        except ConfigurationError as exc:
            print("repro-bench campaign: %s" % exc, file=sys.stderr)
            return 2
    elif args.integrity_mode is not None:
        print(
            "repro-bench campaign: --integrity-mode needs --integrity",
            file=sys.stderr,
        )
        return 2
    spec = CampaignSpec(
        workloads=tuple(args.workloads.split(",")),
        designs=designs,
        mechanisms=tuple(args.mechanisms.split(",")),
        crash_points=args.crash_points,
        seed=args.seed,
        operations=args.operations,
        with_counter_recovery=args.with_counter_recovery,
        nested_crash=args.nested_crash,
        nested_steps=args.nested_steps,
        shards=args.shards,
    )
    if faults is not None:
        spec.faults = tuple(faults)
    if args.chaos:
        return _run_campaign_chaos(args, spec)
    executor = SweepExecutor(
        workers=args.workers,
        job_timeout_s=args.job_timeout,
        max_retries=args.retries,
        heartbeat_timeout_s=args.heartbeat_timeout,
        backend=args.backend,
        queue_dir=args.queue_dir,
        lease_timeout_s=args.lease_timeout,
        max_lease_failures=args.max_lease_failures,
    )
    runner = CampaignRunner(
        spec,
        executor=executor,
        journal_dir=args.campaign_dir,
        checkpoint_dir=checkpoint_dir,
        checkpoint_every=args.checkpoint_every,
        retry_crashed=args.retry_crashed,
    )
    try:
        report = runner.run()
    except CampaignError as exc:
        print("repro-bench campaign: %s" % exc, file=sys.stderr)
        return 2
    print(report.render())
    stats = executor.stats()
    line = (
        "executor[%s]: %d job(s) run, %d retried, %d timed out, %d stalled, "
        "%d pool fallback(s), %d backend fallback(s), %d corrupt cache "
        "entr(ies) quarantined"
        % (
            stats["backend"],
            stats["jobs_executed"],
            stats["retries"],
            stats["timeouts"],
            stats["stalls"],
            stats["pool_fallbacks"],
            stats["backend_fallbacks"],
            stats["cache_corruption_events"],
        )
    )
    if stats["backend"] == "workqueue":
        line += (
            "; workqueue: %d claim(s), %d expired lease(s), %d result(s) "
            "published, %d reused, %d duplicate(s) dropped, %d poison"
            % (
                stats["leases_claimed"],
                stats["leases_expired"],
                stats["results_published"],
                stats["results_reused"],
                stats["duplicate_results"],
                stats["poison_jobs"],
            )
        )
    print(line)
    if args.json is not None:
        payload = json.dumps(report.as_dict(), indent=2, sort_keys=True)
        if args.json == "-":
            print(payload)
        else:
            with open(args.json, "w", encoding="utf-8") as stream:
                stream.write(payload + "\n")
            print("wrote %s" % args.json)
    if report.crashed:
        print(
            "%d crash point(s) made recovery itself crash" % report.crashed,
            file=sys.stderr,
        )
        return 1
    if args.strict and report.silent:
        print(
            "%d crash point(s) were silent corruption (--strict)" % report.silent,
            file=sys.stderr,
        )
        return 1
    if args.strict:
        acked_lost = sum(
            int(section.get("acked_commit_lost", 0))  # type: ignore[call-overload]
            for result in report.results
            for section in (result.get("shard_failures"),)
            if isinstance(section, Mapping)
        )
        if acked_lost:
            print(
                "%d shard-subset failure(s) lost a durable commit (--strict)"
                % acked_lost,
                file=sys.stderr,
            )
            return 1
    return 0


def _run_serve(args: argparse.Namespace) -> int:
    """The KV service scenario: traffic -> (crash ->) recover -> SLO report."""
    import json

    from ..errors import ReproError
    from ..service.scenario import ServiceJob, ServiceRunner
    from ..service.traffic import TrafficSpec

    try:
        spec = TrafficSpec(
            tenants=args.tenants,
            operations=args.ops,
            seed=args.seed,
            mode=args.traffic_mode,
            arrival=args.arrival,
            rate_ops_per_us=args.rate,
            clients=args.clients,
            think_ns=args.think_ns,
            zipf_alpha=args.zipf,
            keyspace=args.keyspace,
        )
        jobs = [
            ServiceJob(
                design=design,
                traffic=spec,
                mechanism=args.mechanisms.split(",")[0],
                crash=args.crash_mid_traffic,
                crash_fraction=args.crash_fraction,
                fault=args.fault,
                nested_crash=args.nested_crash,
                nested_steps=args.nested_steps,
                with_counter_recovery=args.with_counter_recovery,
            )
            for design in args.designs.split(",")
        ]
        executor = SweepExecutor(
            workers=args.workers,
            job_timeout_s=args.job_timeout,
            max_retries=args.retries,
            backend=args.backend,
            queue_dir=args.queue_dir,
            lease_timeout_s=args.lease_timeout,
            max_lease_failures=args.max_lease_failures,
        )
        runner = ServiceRunner(jobs, executor=executor, journal_dir=args.serve_dir)
        report = runner.run()
    except ReproError as exc:
        print("repro-bench serve: %s" % exc, file=sys.stderr)
        return 2
    print(report.render())
    if args.json is not None:
        payload = json.dumps(report.as_dict(), indent=2, sort_keys=True)
        if args.json == "-":
            print(payload)
        else:
            with open(args.json, "w", encoding="utf-8") as stream:
                stream.write(payload + "\n")
            print("wrote %s" % args.json)
    if report.crashed:
        print(
            "%d design(s): recovery itself crashed" % report.crashed,
            file=sys.stderr,
        )
        return 1
    violations = report.durability_violations
    if violations:
        print(
            "%d crash-consistent design(s) violated the durability SLO "
            "(acknowledged writes lost or silent corruption)" % violations,
            file=sys.stderr,
        )
        return 1
    return 0


def _run_designs(args: argparse.Namespace) -> int:
    """Print the composed design matrix (the valid ``--designs`` values).

    One row per registered design, with the three policy axes it is
    composed from, the bus width the layout implies, and the
    crash-consistency verdict — so campaign/sweep users don't have to
    read ``designs.py`` to find valid names.
    """
    from ..core.designs import get_design, list_designs

    names = list_designs(include_unsafe=True, include_integrity=True)
    rows = []
    for name in names:
        design = get_design(name)
        rows.append(
            {
                "name": design.name,
                "layout": design.layout.kind
                + ("+cc" if design.has_counter_cache else ""),
                "atomicity": design.atomicity.kind,
                "integrity": design.integrity_mode or "-",
                "bus_bits": design.bus_width_bits,
                "crash_consistent": design.crash_consistent,
                "description": design.description,
            }
        )
    if args.json is not None:
        import json

        payload = json.dumps({"designs": rows}, indent=2, sort_keys=True)
        if args.json == "-":
            print(payload)
        else:
            with open(args.json, "w", encoding="utf-8") as stream:
                stream.write(payload + "\n")
            print("wrote %s" % args.json)
            return 0
        return 0
    header = ("design", "layout", "atomicity", "integrity", "bus", "crash-consistent")
    widths = [len(column) for column in header]
    table = []
    for row in rows:
        cells = (
            row["name"],
            row["layout"],
            row["atomicity"],
            row["integrity"],
            "%db" % row["bus_bits"],
            "yes" if row["crash_consistent"] else "NO",
        )
        widths = [max(width, len(cell)) for width, cell in zip(widths, cells)]
        table.append(cells)
    fmt = "  ".join("%%-%ds" % width for width in widths)
    print(fmt % header)
    print(fmt % tuple("-" * width for width in widths))
    for cells in table:
        print(fmt % cells)
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.list:
        for name, cls in EXPERIMENTS.items():
            print("%-8s %s" % (name, (cls.__doc__ or "").strip().splitlines()[0]))
        print("%-8s %s" % ("perf", "Kernel and sweep regression benchmarks (BENCH_*.json)"))
        print("%-8s %s" % ("campaign", "Fault-injection crash campaign with triage report"))
        print("%-8s %s" % ("serve", "Multi-tenant KV service traffic with per-tenant SLO report"))
        print("%-8s %s" % ("designs", "Print the composed design matrix (valid --designs values)"))
        return 0
    if args.experiment == "perf":
        return _run_perf(args)
    if args.experiment == "campaign":
        return _run_campaign(args)
    if args.experiment == "serve":
        return _run_serve(args)
    if args.experiment == "designs":
        return _run_designs(args)
    executor = _make_executor(args)
    if args.experiment != "all" and args.experiment not in EXPERIMENTS:
        print(
            "repro-bench: unknown experiment %r; available: %s, all, perf, "
            "campaign, serve, designs" % (args.experiment, ", ".join(EXPERIMENTS)),
            file=sys.stderr,
        )
        return 2
    names = list(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    failed_claims = 0
    documents = []
    for name in names:
        experiment = get_experiment(name)
        started = time.time()
        result = experiment.run(scale=args.scale, executor=executor)
        elapsed = time.time() - started
        print(result.render())
        if args.chart:
            from .charts import render_chart

            print()
            print(render_chart(result))
        print("  (%.1f s)" % elapsed)
        print()
        document = result.as_dict()
        document["elapsed_s"] = round(elapsed, 3)
        document["scale"] = args.scale
        documents.append(document)
        failed_claims += sum(1 for ok in result.claims.values() if not ok)
    if executor.cache is not None and (executor.cache_hits or executor.cache_misses):
        print(
            "result cache: %d hit(s), %d miss(es) (%s)"
            % (executor.cache_hits, executor.cache_misses, executor.cache.directory)
        )
    if args.json is not None:
        import json

        payload = json.dumps({"results": documents}, indent=2, sort_keys=True)
        if args.json == "-":
            print(payload)
        else:
            with open(args.json, "w", encoding="utf-8") as stream:
                stream.write(payload + "\n")
    if failed_claims:
        print("%d claim(s) did not hold" % failed_claims, file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
