"""Command-line entry point: ``repro-bench``.

Runs one or all experiments and prints the paper-style tables::

    repro-bench --list
    repro-bench fig12
    repro-bench all --scale full
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import List, Optional

from .experiments import EXPERIMENTS, get_experiment


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-bench",
        description=(
            "Regenerate the tables and figures of 'Crash Consistency in "
            "Encrypted Non-Volatile Main Memory Systems' (HPCA 2018)."
        ),
    )
    parser.add_argument(
        "experiment",
        nargs="?",
        default="all",
        help="experiment name (%s) or 'all'" % ", ".join(EXPERIMENTS),
    )
    parser.add_argument(
        "--scale",
        choices=("quick", "full"),
        default="quick",
        help="quick = small CI-sized runs; full = closer to paper working sets",
    )
    parser.add_argument("--list", action="store_true", help="list experiments and exit")
    parser.add_argument(
        "--chart",
        action="store_true",
        help="render each result as an ASCII chart in addition to the table",
    )
    parser.add_argument(
        "--json",
        metavar="PATH",
        default=None,
        help="also write all results as a JSON document to PATH ('-' = stdout)",
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.list:
        for name, cls in EXPERIMENTS.items():
            print("%-8s %s" % (name, (cls.__doc__ or "").strip().splitlines()[0]))
        return 0
    names = list(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    failed_claims = 0
    documents = []
    for name in names:
        experiment = get_experiment(name)
        started = time.time()
        result = experiment.run(scale=args.scale)
        elapsed = time.time() - started
        print(result.render())
        if args.chart:
            from .charts import render_chart

            print()
            print(render_chart(result))
        print("  (%.1f s)" % elapsed)
        print()
        document = result.as_dict()
        document["elapsed_s"] = round(elapsed, 3)
        document["scale"] = args.scale
        documents.append(document)
        failed_claims += sum(1 for ok in result.claims.values() if not ok)
    if args.json is not None:
        import json

        payload = json.dumps({"results": documents}, indent=2, sort_keys=True)
        if args.json == "-":
            print(payload)
        else:
            with open(args.json, "w", encoding="utf-8") as stream:
                stream.write(payload + "\n")
    if failed_claims:
        print("%d claim(s) did not hold" % failed_claims, file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
