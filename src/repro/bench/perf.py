"""Benchmark regression harness: kernel and sweep timings.

``repro-bench perf`` times the simulator's hot-path kernels against
their retained reference implementations and a representative sweep
under the parallel engine, then emits a JSON document (``BENCH_*.json``
by convention, e.g. ``BENCH_PR1.json``) that seeds the repo's recorded
perf trajectory.  Future PRs rerun the harness and compare documents to
prove speedups — or to catch regressions, which the pytest smoke test
(``tests/test_perf_smoke.py``) turns into loud failures when a kernel
falls back to within 2x of its reference implementation.

Scales:

* ``"smoke"`` — tiny iteration counts for CI smoke tests (seconds),
* ``"quick"`` — the default for ``repro-bench perf`` (tens of seconds),
* ``"full"``  — more iterations for low-noise numbers.

All timings are best-of-N wall-clock; speedups are ratios of per-op
times measured on the same machine in the same process, which keeps
them meaningful on noisy shared runners.
"""

from __future__ import annotations

import platform
import sys
import time
from typing import Callable, Dict, List, Optional

from ..config import CounterCacheConfig, EncryptionConfig
from ..crypto import aes as aes_module
from ..crypto.counter_cache import CounterCache
from ..crypto.otp import OTPCipher, _xor, _xor_reference, make_block_cipher
from ..errors import ConfigurationError
from ..integrity.tree import IntegrityTreeEngine
from ..mem.writequeue import WriteQueue
from ..nvm.address import AddressMap, ShardMap
from ..utils.accel import HAVE_NUMPY

#: Iteration counts per scale: (fast-path ops, reference-path ops).
_SCALE_OPS = {
    "smoke": 1,
    "quick": 8,
    "full": 32,
}


def _check_scale(scale: str) -> int:
    try:
        return _SCALE_OPS[scale]
    except KeyError:
        raise ConfigurationError(
            "perf scale must be one of %s" % (tuple(_SCALE_OPS),)
        ) from None


def _best_of(fn: Callable[[], object], repeats: int = 3) -> float:
    """Minimum wall-clock seconds of ``repeats`` invocations."""
    best = float("inf")
    for _ in range(repeats):
        started = time.perf_counter()
        fn()
        elapsed = time.perf_counter() - started
        if elapsed < best:
            best = elapsed
    return best


def _kernel(fast_s: float, fast_ops: int, ref_s: float, ref_ops: int) -> Dict[str, float]:
    fast_ns = fast_s / fast_ops * 1e9
    ref_ns = ref_s / ref_ops * 1e9
    return {
        "ns_per_op": round(fast_ns, 1),
        "reference_ns_per_op": round(ref_ns, 1),
        "speedup_vs_reference": round(ref_ns / fast_ns, 2) if fast_ns > 0 else 0.0,
    }


# ---------------------------------------------------------------------------
# Kernel benchmarks


def bench_kernels(scale: str = "quick") -> Dict[str, Dict[str, float]]:
    """Time each hot-path kernel against its reference implementation."""
    mult = _check_scale(scale)
    results: Dict[str, Dict[str, float]] = {}
    line = bytes(range(64)) * 1  # one 64 B cache line
    other = bytes((i * 37 + 11) % 256 for i in range(64))

    # -- 64 B line XOR: big-int vs per-byte generator -------------------
    xor_fast_n = 20000 * mult
    xor_ref_n = 2000 * mult
    fast_s = _best_of(lambda: [_xor(line, other) for _ in range(xor_fast_n)])
    ref_s = _best_of(lambda: [_xor_reference(line, other) for _ in range(xor_ref_n)])
    results["xor_line64"] = _kernel(fast_s, xor_fast_n, ref_s, xor_ref_n)

    # -- AES block encryption: T-tables vs textbook rounds ---------------
    aes = aes_module.AES128(b"repro-perf-key!!"[:16])
    block = bytes(range(16))
    aes_fast_n = 2000 * mult
    aes_ref_n = 200 * mult
    fast_s = _best_of(lambda: [aes.encrypt_block(block) for _ in range(aes_fast_n)])
    ref_s = _best_of(lambda: [aes._encrypt_block_slow(block) for _ in range(aes_ref_n)])
    results["aes_block"] = _kernel(fast_s, aes_fast_n, ref_s, aes_ref_n)

    # -- OTP line encrypt/decrypt with the AES backend -------------------
    # Unique (address, counter) pairs defeat the pad cache, so this
    # times real pad generation + XOR; the reference path is the
    # pre-optimization construction (textbook AES + per-byte XOR).
    cipher = OTPCipher(make_block_cipher(EncryptionConfig(cipher="aes")))
    otp_fast_n = 300 * mult
    otp_ref_n = 40 * mult

    def run_otp_fast() -> None:
        for index in range(otp_fast_n):
            cipher.encrypt(index * 64, index + 1, line)
        cipher._pad_cache.clear()

    def run_otp_reference() -> None:
        for index in range(otp_ref_n):
            pad = b"".join(
                aes._encrypt_block_slow(
                    _seed_block(index * 64, index + 1, block_index)
                )
                for block_index in range(4)
            )
            _xor_reference(pad, line)

    fast_s = _best_of(run_otp_fast)
    ref_s = _best_of(run_otp_reference)
    results["otp_encrypt_aes"] = _kernel(fast_s, otp_fast_n, ref_s, otp_ref_n)

    # -- OTP with the default PRF backend (the sweep hot path) -----------
    prf_cipher = OTPCipher(make_block_cipher(EncryptionConfig(cipher="prf")))
    prf_fast_n = 2000 * mult
    prf_ref_n = 400 * mult

    def run_prf_fast() -> None:
        for index in range(prf_fast_n):
            prf_cipher.encrypt(index * 64, index + 1, line)
        prf_cipher._pad_cache.clear()

    prf_block = prf_cipher._cipher

    def run_prf_reference() -> None:
        for index in range(prf_ref_n):
            pad = b"".join(
                prf_block.encrypt_block(_seed_block(index * 64, index + 1, b))
                for b in range(4)
            )
            _xor_reference(pad, line)

    fast_s = _best_of(run_prf_fast)
    ref_s = _best_of(run_prf_reference)
    results["otp_encrypt_prf"] = _kernel(fast_s, prf_fast_n, ref_s, prf_ref_n)

    # -- Counter cache lookup (every simulated load) ---------------------
    cache = CounterCache(CounterCacheConfig(size_bytes=64 * 1024, ways=8))
    for group in range(64):
        cache.fill(group * 512, tuple(range(8)))
    lookup_n = 20000 * mult
    addresses = [(i % 64) * 512 + (i % 8) * 64 for i in range(lookup_n)]
    fast_s = _best_of(lambda: [cache.lookup_for_read(a) for a in addresses])
    results["counter_cache_lookup"] = {
        "ns_per_op": round(fast_s / lookup_n * 1e9, 1),
    }

    # -- Bonsai tree root update: incremental path vs full rebuild --------
    # Every counter persist in a +bmt design refreshes the leaf-to-root
    # path with update_group; root_over is the from-scratch sparse
    # rebuild the post-crash verifier uses, retained here as the
    # reference.  Both must agree on the root (checked once below).
    tree = IntegrityTreeEngine(
        EncryptionConfig(cipher="prf"), AddressMap(memory_size_bytes=1024 * 1024)
    )
    tree_groups = 64
    tree_counters: Dict[int, int] = {}
    for group in range(tree_groups):
        base = group * 512
        values = tuple(group * 8 + i + 1 for i in range(8))
        tree.update_group(base, values)
        for i, value in enumerate(values):
            tree_counters[base + i * 64] = value
    if tree.root != tree.root_over(tree_counters):
        raise ConfigurationError("bmt kernel setup: incremental root != rebuild")
    bmt_fast_n = 2000 * mult
    bmt_ref_n = 20 * mult

    def run_bmt_fast() -> None:
        for index in range(bmt_fast_n):
            base = (index % tree_groups) * 512
            tree.update_group(base, tuple(index + i + 1 for i in range(8)))

    fast_s = _best_of(run_bmt_fast)
    ref_s = _best_of(lambda: [tree.root_over(tree_counters) for _ in range(bmt_ref_n)])
    results["bmt_root_update"] = _kernel(fast_s, bmt_fast_n, ref_s, bmt_ref_n)

    # -- Write queue acceptance (every simulated writeback) --------------
    accept_n = 5000 * mult

    def run_accepts() -> None:
        queue = WriteQueue("perf", capacity=64)
        for index in range(accept_n):
            entry = queue.accept(index * 64, float(index), None, is_counter=False)
            queue.mark_ready(entry, entry.accept_ns)
            queue.set_drain_time(entry, entry.accept_ns + 300.0)

    fast_s = _best_of(run_accepts)
    results["writequeue_accept"] = {
        "ns_per_op": round(fast_s / accept_n * 1e9, 1),
    }

    # -- Batched AES: numpy-vectorized rounds vs per-block T-tables ------
    # Falls back to the scalar loop when numpy is absent/disabled, in
    # which case the speedup hovers around 1x and the entry records
    # numpy=False so comparisons know why.
    batch_blocks = [bytes((i + j) % 256 for j in range(16)) for i in range(256)]
    batch_rounds = 4 * mult
    fast_s = _best_of(
        lambda: [aes.encrypt_blocks(batch_blocks) for _ in range(batch_rounds)]
    )
    ref_s = _best_of(
        lambda: [
            [aes.encrypt_block(b) for b in batch_blocks] for _ in range(batch_rounds)
        ]
    )
    batch_ops = batch_rounds * len(batch_blocks)
    results["aes_blocks_batch"] = _kernel(fast_s, batch_ops, ref_s, batch_ops)
    results["aes_blocks_batch"]["numpy"] = HAVE_NUMPY

    # -- Batched OTP lines: pads_many + one vectorized XOR ---------------
    batch_cipher = OTPCipher(make_block_cipher(EncryptionConfig(cipher="aes")))
    line_items = [
        ((index + 1) * 64, index + 1, line) for index in range(128)
    ]
    otp_batch_rounds = 2 * mult

    def run_otp_batch() -> None:
        for _ in range(otp_batch_rounds):
            batch_cipher.encrypt_lines(line_items)
            batch_cipher._pad_cache.clear()

    def run_otp_batch_reference() -> None:
        for _ in range(otp_batch_rounds):
            for address, counter, text in line_items:
                batch_cipher.encrypt(address, counter, text)
            batch_cipher._pad_cache.clear()

    fast_s = _best_of(run_otp_batch)
    ref_s = _best_of(run_otp_batch_reference)
    otp_batch_ops = otp_batch_rounds * len(line_items)
    results["otp_encrypt_lines_batch"] = _kernel(
        fast_s, otp_batch_ops, ref_s, otp_batch_ops
    )
    results["otp_encrypt_lines_batch"]["numpy"] = HAVE_NUMPY

    # -- Bulk counter-cache probe vs per-call lookups --------------------
    bulk_n = 5000 * mult
    bulk_addresses = [(i % 64) * 512 + (i % 8) * 64 for i in range(bulk_n)]
    fast_s = _best_of(lambda: cache.lookup_for_read_many(bulk_addresses))
    ref_s = _best_of(lambda: [cache.lookup_for_read(a) for a in bulk_addresses])
    results["counter_cache_bulk_lookup"] = _kernel(fast_s, bulk_n, ref_s, bulk_n)

    # -- Sharded dispatch: batched bucketing vs per-line translation -----
    # The sharded memory system routes every access through the
    # granule-interleaved ShardMap; dispatch_batch buckets a whole batch
    # in one pass, the reference is the per-line shard_of + to_local
    # modulo loop the facade's single-access path uses.
    shard_map = ShardMap(memory_size_bytes=64 * 1024 * 1024, shards=4)
    dispatch_n = 20000 * mult
    span = shard_map.data_capacity_bytes // 64
    dispatch_addresses = [((i * 2654435761) % span) * 64 for i in range(dispatch_n)]

    def run_dispatch_reference() -> None:
        buckets: List[List[tuple]] = [[] for _ in range(shard_map.shards)]
        for index, address in enumerate(dispatch_addresses):
            shard, local = shard_map.to_local(address)
            buckets[shard].append((index, local))

    fast_s = _best_of(lambda: shard_map.dispatch_batch(dispatch_addresses))
    ref_s = _best_of(run_dispatch_reference)
    results["shard_dispatch_batch"] = _kernel(fast_s, dispatch_n, ref_s, dispatch_n)

    # -- KV service put transaction: volatile index vs persistent probe --
    results["kv_put_txn"] = _bench_kv_put(mult)
    return results


def _bench_kv_put(mult: int) -> Dict[str, float]:
    """Time one KV-service put transaction, indexed vs probe-only.

    The service engine keeps a volatile key->slot index (rebuilt after
    splits, never persisted) so a put's locate step is one timed line
    read; the retained reference path (``use_index=False``) probes the
    open-addressing chain through the recorder on every access, exactly
    like the pre-index engine.  Keys are chosen to collide into one
    home bucket — the adversarial chain an aged, tombstone-riddled
    table develops — so the kernel measures the probe work the index
    removes rather than a near-empty table's single-bucket best case.
    """
    from ..config import fast_config
    from ..service.kv import ServiceWorkload, TenantKV

    config = fast_config()
    nbuckets = 64
    chain_keys: List[int] = []
    key = 1
    while len(chain_keys) < 128:
        if TenantKV._home_bucket(key, nbuckets) == 0:
            chain_keys.append(key)
        key += 1

    def build(use_index: bool) -> TenantKV:
        workload = ServiceWorkload(
            config,
            tenants=1,
            initial_buckets=nbuckets,
            use_index=use_index,
            name="perf-kv-%s" % ("index" if use_index else "probe"),
        )
        store = workload.stores[0]
        for position, chain_key in enumerate(chain_keys):
            store.put(chain_key, position)
        return store

    indexed = build(use_index=True)
    probing = build(use_index=False)
    fast_n = 400 * mult
    ref_n = 100 * mult

    def run_puts(store: TenantKV, count: int) -> None:
        for index in range(count):
            store.put(chain_keys[index % len(chain_keys)], index)

    fast_s = _best_of(lambda: run_puts(indexed, fast_n))
    ref_s = _best_of(lambda: run_puts(probing, ref_n))
    return _kernel(fast_s, fast_n, ref_s, ref_n)


def _seed_block(address: int, counter: int, block_index: int) -> bytes:
    """The OTP seed layout, duplicated here for the reference path."""
    import struct

    return struct.pack(
        "<QIHH", address, counter & 0xFFFFFFFF, (counter >> 32) & 0xFFFF, block_index
    )


# ---------------------------------------------------------------------------
# Sweep benchmark


def bench_sweep(
    workers: int = 4, scale: str = "quick", experiment: str = "fig12"
) -> Dict[str, object]:
    """Time one experiment sweep: serial vs parallel vs warm cache.

    Values are asserted identical across all three execution modes; the
    parallel speedup is hardware-bound (a single-CPU container cannot
    beat serial), so the host's CPU count is recorded alongside.
    """
    import os
    import shutil
    import tempfile

    from .experiments import get_experiment
    from .parallel import ResultCache, SweepExecutor

    exp = get_experiment(experiment)
    serial_s = _best_of(lambda: exp.run(scale), repeats=2)
    serial_result = exp.run(scale)

    parallel_executor = SweepExecutor(workers=workers)
    started = time.perf_counter()
    parallel_result = exp.run(scale, executor=parallel_executor)
    parallel_s = time.perf_counter() - started

    cache_dir = tempfile.mkdtemp(prefix="repro-perf-cache-")
    try:
        cache = ResultCache(cache_dir)
        cold_executor = SweepExecutor(workers=1, cache=cache)
        started = time.perf_counter()
        exp.run(scale, executor=cold_executor)
        cold_s = time.perf_counter() - started
        warm_executor = SweepExecutor(workers=1, cache=cache)
        started = time.perf_counter()
        warm_result = exp.run(scale, executor=warm_executor)
        warm_s = time.perf_counter() - started
        cache_hits = warm_executor.cache_hits
    finally:
        shutil.rmtree(cache_dir, ignore_errors=True)

    identical = (
        serial_result.as_dict()["series"] == parallel_result.as_dict()["series"]
        and serial_result.as_dict()["series"] == warm_result.as_dict()["series"]
    )
    return {
        "experiment": experiment,
        "scale": scale,
        "workers": workers,
        "cpu_count": os.cpu_count() or 1,
        "serial_s": round(serial_s, 3),
        "parallel_s": round(parallel_s, 3),
        "parallel_speedup": round(serial_s / parallel_s, 2) if parallel_s > 0 else 0.0,
        "cache_cold_s": round(cold_s, 3),
        "cache_warm_s": round(warm_s, 4),
        "cache_speedup": round(cold_s / warm_s, 1) if warm_s > 0 else 0.0,
        "cache_hits_on_warm_run": cache_hits,
        "identical_values": identical,
        "note": (
            "parallel_speedup is bounded by cpu_count: on a single-CPU "
            "host the pool cannot beat serial, while the warm result "
            "cache makes repeated sweeps effectively free on any host"
        ),
    }


# ---------------------------------------------------------------------------
# Harness entry points


def run_perf(
    scale: str = "quick", workers: int = 4, include_sweep: bool = True
) -> Dict[str, object]:
    """Run the full perf suite and return the JSON-ready document."""
    _check_scale(scale)
    document: Dict[str, object] = {
        "meta": {
            "schema": 1,
            "scale": scale,
            "python": sys.version.split()[0],
            "platform": platform.platform(),
            "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
        },
        "kernels": bench_kernels(scale),
    }
    if include_sweep:
        document["sweep"] = bench_sweep(workers=workers, scale="quick")
    return document


def render_perf_report(document: Dict[str, object]) -> str:
    """Human-readable rendering of a perf document."""
    lines: List[str] = ["perf kernels (best-of wall clock):"]
    kernels = document.get("kernels", {})
    for name in sorted(kernels):
        entry = kernels[name]
        if "speedup_vs_reference" in entry:
            lines.append(
                "  %-22s %10.1f ns/op   (reference %10.1f ns/op, speedup %5.2fx)"
                % (
                    name,
                    entry["ns_per_op"],
                    entry["reference_ns_per_op"],
                    entry["speedup_vs_reference"],
                )
            )
        else:
            lines.append("  %-22s %10.1f ns/op" % (name, entry["ns_per_op"]))
    sweep = document.get("sweep")
    if sweep:
        lines.append(
            "sweep %s/%s (%d worker(s), %d cpu(s)):"
            % (sweep["experiment"], sweep["scale"], sweep["workers"], sweep["cpu_count"])
        )
        lines.append(
            "  serial %.2fs, parallel %.2fs (%.2fx), warm cache %.3fs (%.0fx), "
            "values identical: %s"
            % (
                sweep["serial_s"],
                sweep["parallel_s"],
                sweep["parallel_speedup"],
                sweep["cache_warm_s"],
                sweep["cache_speedup"],
                sweep["identical_values"],
            )
        )
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# Document comparison (perf trajectory across PRs)


def compare_documents(
    current: Dict[str, object],
    baseline: Dict[str, object],
    regression_threshold: float = 3.0,
) -> Dict[str, object]:
    """Compare two perf documents kernel by kernel.

    For each kernel present in both, computes the ``ns_per_op`` ratio
    ``current / baseline`` (< 1.0 is a speedup).  Kernels slower than
    ``regression_threshold`` times the baseline land in
    ``regressions``; absolute numbers are machine-dependent, so the
    threshold is deliberately generous (default 3.0) and CI treats
    anything below it as warn-only.  The end-to-end sweep ``serial_s``
    is compared the same way when both documents carry one.
    """
    current_kernels = current.get("kernels", {}) or {}
    baseline_kernels = baseline.get("kernels", {}) or {}
    kernels: Dict[str, Dict[str, object]] = {}
    regressions: List[str] = []
    warnings: List[str] = []

    def _ns_per_op(entry: object, name: str, which: str) -> Optional[float]:
        # Documents come from other machines and other PRs; a kernel
        # that one side renamed or recorded badly should downgrade to
        # a warning, not abort the whole comparison.
        try:
            value = float(entry["ns_per_op"])  # type: ignore[index,call-overload]
        except (KeyError, TypeError, ValueError):
            warnings.append(
                "kernel %r skipped: %s entry has no numeric ns_per_op" % (name, which)
            )
            return None
        return value

    for name in sorted(set(current_kernels) & set(baseline_kernels)):
        now_ns = _ns_per_op(current_kernels[name], name, "current")
        then_ns = _ns_per_op(baseline_kernels[name], name, "baseline")
        if now_ns is None or then_ns is None:
            continue
        ratio = now_ns / then_ns if then_ns > 0 else float("inf")
        entry: Dict[str, object] = {
            "ns_per_op": now_ns,
            "baseline_ns_per_op": then_ns,
            "ratio": round(ratio, 3),
            "delta_ns_per_op": round(now_ns - then_ns, 1),
        }
        if ratio > regression_threshold:
            entry["regression"] = True
            regressions.append(name)
        kernels[name] = entry
    only_current = sorted(set(current_kernels) - set(baseline_kernels))
    only_baseline = sorted(set(baseline_kernels) - set(current_kernels))
    for name in only_current:
        warnings.append(
            "kernel %r skipped: present only in the current document" % name
        )
    for name in only_baseline:
        warnings.append(
            "kernel %r skipped: present only in the baseline document" % name
        )
    result: Dict[str, object] = {
        "regression_threshold": regression_threshold,
        "kernels": kernels,
        "regressions": regressions,
        "new_kernels": only_current,
        "removed_kernels": only_baseline,
        "warnings": warnings,
    }
    current_sweep = current.get("sweep") or {}
    baseline_sweep = baseline.get("sweep") or {}
    if "serial_s" in current_sweep and "serial_s" in baseline_sweep:
        try:
            now_s = float(current_sweep["serial_s"])
            then_s = float(baseline_sweep["serial_s"])
        except (TypeError, ValueError):
            warnings.append("sweep comparison skipped: non-numeric serial_s")
        else:
            ratio = now_s / then_s if then_s > 0 else float("inf")
            result["sweep"] = {
                "experiment": current_sweep.get("experiment"),
                "serial_s": now_s,
                "baseline_serial_s": then_s,
                "ratio": round(ratio, 3),
                "speedup_vs_baseline": round(then_s / now_s, 2) if now_s > 0 else 0.0,
            }
            if ratio > regression_threshold:
                result["regressions"] = regressions + ["sweep.serial_s"]
    return result


def render_comparison(comparison: Dict[str, object]) -> str:
    """Human-readable rendering of :func:`compare_documents` output."""
    lines: List[str] = [
        "perf vs baseline (ratio < 1.00 is faster; regression threshold %.1fx):"
        % comparison["regression_threshold"]
    ]
    for name, entry in sorted(comparison["kernels"].items()):
        marker = "  REGRESSION" if entry.get("regression") else ""
        lines.append(
            "  %-24s %10.1f ns/op   vs %10.1f   (%.3fx)%s"
            % (
                name,
                entry["ns_per_op"],
                entry["baseline_ns_per_op"],
                entry["ratio"],
                marker,
            )
        )
    for name in comparison["new_kernels"]:
        lines.append("  %-24s (new kernel, no baseline)" % name)
    for name in comparison["removed_kernels"]:
        lines.append("  %-24s (baseline only; kernel removed)" % name)
    sweep = comparison.get("sweep")
    if sweep:
        lines.append(
            "  sweep %s serial     %8.2f s      vs %8.2f s  (%.2fx faster)"
            % (
                sweep["experiment"],
                sweep["serial_s"],
                sweep["baseline_serial_s"],
                sweep["speedup_vs_baseline"],
            )
        )
    for warning in comparison.get("warnings", []):
        lines.append("  warning: %s" % warning)
    if comparison["regressions"]:
        lines.append("regressions: %s" % ", ".join(comparison["regressions"]))
    else:
        lines.append("no regressions beyond threshold")
    return "\n".join(lines)
