"""Benchmark harness regenerating every table and figure of the paper.

:mod:`repro.bench.harness` runs (workload, design, config) combinations
and collects :class:`repro.sim.stats.MachineStats`;
:mod:`repro.bench.experiments` defines one experiment class per paper
artifact (Figures 12-17, Tables 1-2);
:mod:`repro.bench.report` renders the series the way the paper reports
them.
"""

from .harness import WorkloadRunOutcome, run_workload, run_workload_multicore
from .experiments import (
    EXPERIMENTS,
    Fig12SingleCore,
    Fig13MultiCore,
    Fig14WriteTraffic,
    Fig15CounterCache,
    Fig16TxnSize,
    Fig17NvmLatency,
    Table1Stages,
    Table2Config,
    get_experiment,
)

__all__ = [
    "WorkloadRunOutcome",
    "run_workload",
    "run_workload_multicore",
    "EXPERIMENTS",
    "Fig12SingleCore",
    "Fig13MultiCore",
    "Fig14WriteTraffic",
    "Fig15CounterCache",
    "Fig16TxnSize",
    "Fig17NvmLatency",
    "Table1Stages",
    "Table2Config",
    "get_experiment",
]
