"""Self-healing execution: worker heartbeats + checkpointed workloads.

Two cooperating halves:

* :class:`Heartbeat` is the worker side of the executor's watchdog
  (``SweepExecutor(heartbeat_timeout_s=...)``).  A worker beats while
  it makes progress; the parent declares it stalled when the beat file
  goes stale and recycles the pool.  Beats are rate-limited and
  published with the same atomic-rename discipline as snapshots, so a
  half-written beat can never look like progress.
* :func:`run_workload_resilient` runs one workload simulation under
  periodic durable checkpoints (:mod:`repro.sim.snapshot`).  Traces are
  regenerated deterministically from the workload description, so only
  machine state needs to persist; a rerun after a crash restores the
  newest valid snapshot and continues, producing a bit-identical
  result.
"""

from __future__ import annotations

import json
import os
import time
from typing import Dict, Optional, Tuple

from ..config import SystemConfig, fast_config
from ..sim.machine import Machine
from ..sim.snapshot import CheckpointPolicy, SnapshotStore, run_with_checkpoints
from ..utils.versioning import code_version
from ..workloads.base import WorkloadParams
from .harness import WorkloadRunOutcome, build_traces

__all__ = ["Heartbeat", "run_workload_resilient"]

#: Default minimum spacing between heartbeat writes.  Far below any
#: sane watchdog timeout, far above per-event overhead.
DEFAULT_BEAT_INTERVAL_S = 0.05


class Heartbeat:
    """Worker-side liveness beacon: a small file, atomically refreshed.

    ``beat()`` is safe to call at event granularity — writes are
    rate-limited to ``min_interval_s``.  The watchdog reads only the
    file's mtime; the JSON payload (pid, progress) is for humans
    debugging a stall.
    """

    def __init__(self, path: str, min_interval_s: float = DEFAULT_BEAT_INTERVAL_S) -> None:
        self.path = path
        self.min_interval_s = min_interval_s
        self.beats_written = 0
        self._last_beat = 0.0
        directory = os.path.dirname(os.path.abspath(path))
        os.makedirs(directory, exist_ok=True)

    def beat(self, progress: Optional[int] = None, force: bool = False) -> bool:
        """Refresh the beacon; returns True when a write happened."""
        now = time.monotonic()
        if not force and now - self._last_beat < self.min_interval_s:
            return False
        payload = {"pid": os.getpid(), "progress": progress, "time": time.time()}
        tmp_path = "%s.tmp.%d" % (self.path, os.getpid())
        try:
            with open(tmp_path, "w", encoding="utf-8") as handle:
                json.dump(payload, handle)
            os.replace(tmp_path, self.path)
        except OSError:
            # A beacon that cannot be written degrades to no watchdog
            # coverage for this worker, never to a worker crash.
            try:
                os.unlink(tmp_path)
            except OSError:
                pass
            return False
        self._last_beat = now
        self.beats_written += 1
        return True

    def clear(self) -> None:
        try:
            os.unlink(self.path)
        except OSError:
            pass


def run_workload_resilient(
    design: str,
    workload_name: str,
    config: Optional[SystemConfig] = None,
    mechanism: str = "undo",
    params: Optional[WorkloadParams] = None,
    checkpoint_dir: Optional[str] = None,
    every_events: Optional[int] = None,
    every_seconds: Optional[float] = None,
    heartbeat: Optional[Heartbeat] = None,
    code: Optional[str] = None,
    keep: int = 3,
) -> Tuple[WorkloadRunOutcome, Dict[str, int]]:
    """Like ``run_workload`` but checkpointed and heartbeat-instrumented.

    With ``checkpoint_dir`` set, machine state is snapshotted there on
    the given cadence and a rerun resumes from the newest valid
    snapshot (falling back past torn generations, discarding snapshots
    written by different code).  Traces, workload runs and the memory
    layout are regenerated deterministically, so the resumed result is
    bit-identical to an uninterrupted run.

    Returns ``(outcome, stats)`` where ``stats`` reports saves,
    restores, quarantines and invalidations (all zero when
    checkpointing is off).
    """
    if config is None:
        config = fast_config()
    traces, runs, layout = build_traces(workload_name, config, mechanism, params)
    store = None
    if checkpoint_dir is not None:
        store = SnapshotStore(
            checkpoint_dir,
            code=code if code is not None else code_version(),
            keep=keep,
        )
    policy = CheckpointPolicy(every_events=every_events, every_seconds=every_seconds)
    on_event = None
    if heartbeat is not None:
        on_event = heartbeat.beat
    machine = Machine(config, design)
    result, stats = run_with_checkpoints(
        machine, traces, store=store, policy=policy, on_event=on_event
    )
    outcome = WorkloadRunOutcome(
        design=design,
        workload=workload_name,
        result=result,
        runs=runs,
        layout=layout,
    )
    return outcome, stats
