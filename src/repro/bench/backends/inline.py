"""The in-process backend: serial, deterministic, dependency-free.

This is the bottom rung of the fallback ladder and the oracle every
other backend is measured against — chaos harness runs compare their
triage counts bit-for-bit against an inline run of the same jobs.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence

from .base import ExecutionBackend, ResultCallback

__all__ = ["InlineBackend"]


class InlineBackend(ExecutionBackend):
    """Run every job in this process, in index order."""

    name = "inline"

    def run(
        self,
        fn: Callable,
        items: List[object],
        results: List[object],
        on_result: Optional[ResultCallback] = None,
        heartbeats: Optional[Sequence[Optional[str]]] = None,
        job_ids: Optional[Sequence[str]] = None,
    ) -> None:
        for index, item in enumerate(items):
            results[index] = fn(item)
            if on_result is not None:
                on_result(index, results[index])
