"""The execution-backend contract shared by inline, pool and workqueue.

A backend is *how* a batch of independent jobs runs — in this process,
over a local process pool, or through a shared file-based work queue —
behind one interface, so :class:`~repro.bench.parallel.SweepExecutor`
(and everything built on it: figure sweeps, crash campaigns, the perf
harness) never cares which one it got.

The contract mirrors the exactly-once discipline the simulated memory
controller promises under selective counter-atomicity: every job's
result lands exactly once in the output slot it belongs to, no matter
how many workers die, stall, or lie along the way.  Backends account
for everything they absorb (retries, expired leases, duplicate
publications, quarantined payloads) in a shared
:class:`ExecutorCounters` so nothing is silently swallowed.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field, fields
from typing import Callable, Dict, List, Optional, Sequence

__all__ = [
    "BackendSpec",
    "BackendUnavailable",
    "ExecutionBackend",
    "ExecutorCounters",
    "ResultCallback",
]

#: A finished job result is delivered through this callback as soon as
#: it is available: ``on_result(index, value)``.
ResultCallback = Callable[[int, object], None]


class BackendUnavailable(Exception):
    """A backend cannot run here (no pool, unwritable queue dir, ...).

    Raised at construction/validation time only; the executor's
    fallback ladder catches it and degrades to the next backend down.
    Never raised mid-run — a backend that started owns its jobs.
    """


@dataclass
class ExecutorCounters:
    """Mutable health counters shared by an executor and its backend.

    One instance is owned by the :class:`SweepExecutor` and handed to
    whichever backend ends up running, so stats survive the fallback
    ladder (a workqueue that degraded to a pool still reports the
    fallback *and* the pool's retries in one place).
    """

    # Shared across backends
    retries: int = 0
    timeouts: int = 0
    stalls: int = 0
    pool_fallbacks: int = 0
    backend_fallbacks: int = 0
    backoff_slept_s: float = 0.0
    # Workqueue lease protocol
    leases_claimed: int = 0
    leases_expired: int = 0
    leases_reclaimed: int = 0
    results_published: int = 0
    results_reused: int = 0
    duplicate_results: int = 0
    corrupt_results: int = 0
    poison_jobs: int = 0
    worker_respawns: int = 0
    jobs_lost: int = 0

    def as_dict(self) -> Dict[str, float]:
        document: Dict[str, float] = {}
        for spec in fields(self):
            value = getattr(self, spec.name)
            document[spec.name] = round(value, 4) if isinstance(value, float) else value
        return document


@dataclass
class BackendSpec:
    """Everything a backend may need, bundled so the fallback ladder
    can hand the same spec to whichever implementation sticks."""

    workers: int = 1
    job_timeout_s: Optional[float] = None
    max_retries: int = 2
    retry_backoff_s: float = 0.1
    heartbeat_timeout_s: Optional[float] = None
    # Workqueue-only knobs (ignored by inline/pool):
    queue_dir: Optional[str] = None
    lease_timeout_s: float = 30.0
    max_lease_failures: int = 3
    #: A :class:`repro.bench.chaos.ChaosPlan` (or a plain
    #: ``{job_index: [fault, ...]}`` mapping) injected into workqueue
    #: workers; None outside chaos runs.
    chaos_plan: Optional[object] = None
    counters: ExecutorCounters = field(default_factory=ExecutorCounters)


class ExecutionBackend(abc.ABC):
    """One way of running a batch of independent jobs exactly once.

    ``run`` fills ``results`` in place (``results[i] = fn(items[i])``)
    and fires ``on_result(index, value)`` as each result becomes final.
    ``heartbeats`` optionally names a per-item beacon file the job
    refreshes while it runs (see :mod:`repro.bench.resilience`);
    backends with a watchdog use it to tell *stalled* from *slow*.
    """

    #: Registry name; also what ``stats()['backend']``-style reporting
    #: and the CLI ``--backend`` flag use.
    name = "abstract"

    def __init__(self, spec: BackendSpec) -> None:
        self.spec = spec
        self.counters = spec.counters

    @abc.abstractmethod
    def run(
        self,
        fn: Callable,
        items: List[object],
        results: List[object],
        on_result: Optional[ResultCallback] = None,
        heartbeats: Optional[Sequence[Optional[str]]] = None,
        job_ids: Optional[Sequence[str]] = None,
    ) -> None:
        """Execute every item; must resolve all of ``results``."""

    def close(self) -> None:
        """Release any held resources (pools, worker processes)."""
