"""The file-based work-queue backend: leases, heartbeats, exactly-once.

Jobs are fanned out to worker *processes* through a shared directory
instead of pool pipes, which makes every hand-off a crash-consistent
filesystem transition — the same discipline the simulated memory
controller applies to counter/data pairs.  The protocol:

``jobs/<id>.job``
    The pickled job payload, framed with a SHA-256 header so a torn or
    tampered payload is *detected*, never silently executed.
``pending/<id>``
    An empty claim token.  Claiming is ``rename(pending/<id>,
    leases/<id>)`` — atomic on POSIX, so exactly one claimant wins and
    there is no claimed-but-unowned window.
``leases/<id>``
    The claim token while a worker owns the job.  The worker renews
    the lease by touching the file; the coordinator declares a lease
    *expired* when its mtime is older than ``lease_timeout_s`` and
    reclaims it (``rename`` back to ``pending/``), so a killed or
    stalled worker's job is re-run by someone else.
``results/<id>.res``
    The published result, framed like the job payload and linked into
    place with ``os.link`` (atomic, fails-if-exists): publication is
    *idempotent* — the first valid publication wins, every later
    attempt surfaces as a counted duplicate, never as a second result.
``events/``
    Append-only marker files through which workers report claims,
    errors and duplicate publications to the coordinator (workers
    share no memory with it).
``quarantine/``
    Corrupt result frames and poison-job records, kept for forensics.

A job whose leases keep failing (``max_lease_failures``) is *poisoned*:
pulled out of circulation so it cannot grind the queue forever.
Poisoned jobs that failed with real errors get one final in-process
attempt in the coordinator (same ladder as the pool backend); jobs
that only ever expired their leases are presumed hung and raise
:class:`~repro.errors.JobExecutionError` instead of hanging the sweep.

Results are keyed by the caller's job ids (the campaign/sweep cache
keys), so a rerun over the same queue directory reuses previously
published results instead of re-executing — the work queue inherits
the journal's exactly-once resume semantics.
"""

from __future__ import annotations

import hashlib
import itertools
import logging
import os
import pickle
import shutil
import tempfile
import threading
import time
import traceback
from typing import Callable, Dict, Iterable, List, Mapping, Optional, Sequence, Set

from ...errors import JobExecutionError
from .base import BackendSpec, BackendUnavailable, ExecutionBackend, ResultCallback

__all__ = ["WorkQueueBackend"]

logger = logging.getLogger(__name__)

#: Subdirectories making up the queue protocol.
_SUBDIRS = ("jobs", "pending", "leases", "results", "events", "quarantine")

#: Coordinator/worker polling cadence.
_POLL_S = 0.02

_uniq_counter = itertools.count()


def _uniq() -> str:
    return "%d.%d" % (os.getpid(), next(_uniq_counter))


# ---------------------------------------------------------------------------
# Payload framing


def _frame(payload: bytes) -> bytes:
    """Prefix a payload with its SHA-256 so torn/corrupt reads fail loudly."""
    return hashlib.sha256(payload).hexdigest().encode("ascii") + b"\n" + payload


def _unframe(blob: bytes) -> bytes:
    head, sep, payload = blob.partition(b"\n")
    if not sep:
        raise ValueError("truncated frame: no checksum header")
    if hashlib.sha256(payload).hexdigest().encode("ascii") != head:
        raise ValueError("frame checksum mismatch")
    return payload


def _write_frame(path: str, payload: bytes) -> None:
    tmp = "%s.tmp.%s" % (path, _uniq())
    with open(tmp, "wb") as stream:
        stream.write(_frame(payload))
        stream.flush()
        os.fsync(stream.fileno())
    os.replace(tmp, path)


def _read_frame(path: str) -> bytes:
    with open(path, "rb") as stream:
        return _unframe(stream.read())


# ---------------------------------------------------------------------------
# Worker side


class _LeaseRenewer(threading.Thread):
    """Touches the lease file while the job runs (the heartbeat).

    Stops renewing once ``job_timeout_s`` has elapsed, so a worker
    wedged inside the job function eventually loses its lease and the
    coordinator can hand the job to someone else.
    """

    def __init__(
        self,
        lease_path: str,
        interval_s: float,
        job_timeout_s: Optional[float],
    ) -> None:
        super().__init__(daemon=True)
        self.lease_path = lease_path
        self.interval_s = interval_s
        self.job_timeout_s = job_timeout_s
        self._halt = threading.Event()
        self._started_at = time.monotonic()

    def run(self) -> None:
        while not self._halt.wait(self.interval_s):
            if (
                self.job_timeout_s is not None
                and time.monotonic() - self._started_at > self.job_timeout_s
            ):
                return  # let the lease expire: the job overran its budget
            try:
                os.utime(self.lease_path, None)
            except OSError:
                return  # lease reclaimed out from under us; stop beating

    def stop(self) -> None:
        self._halt.set()
        self.join(timeout=2.0)


def _event(queue_dir: str, job_id: str, kind: str, text: str = "") -> None:
    """Publish a worker-side fact as a uniquely named marker file."""
    path = os.path.join(queue_dir, "events", "%s.%s.%s" % (job_id, kind, _uniq()))
    try:
        with open(path, "w", encoding="utf-8") as stream:
            stream.write(text)
    except OSError:  # pragma: no cover - best-effort reporting
        pass


def _latch(queue_dir: str, job_id: str, fault: str) -> bool:
    """One-shot chaos latch: True only for the first caller ever.

    Delegates to the shared :func:`repro.faults.oneshot.latch_once`
    discipline (``O_EXCL`` marker files), which is what guarantees
    every injected fault fires exactly once and the chaos campaign
    terminates — the same one-shot contract recovery-phase fault plans
    enforce in-process.
    """
    from ...faults.oneshot import latch_once

    path = os.path.join(queue_dir, "events", "%s.chaos-%s" % (job_id, fault))
    try:
        return latch_once(path)
    except OSError:
        return False


def _release(queue_dir: str, job_id: str) -> None:
    """Hand a leased job back to the pending queue (error/duplicate paths)."""
    try:
        os.rename(
            os.path.join(queue_dir, "leases", job_id),
            os.path.join(queue_dir, "pending", job_id),
        )
    except OSError:
        pass  # coordinator reclaimed or poisoned it meanwhile


def _claim(queue_dir: str, known_ids: frozenset) -> Optional[str]:
    """Atomically claim one pending job; None when the queue is idle.

    Only ids belonging to this run are claimed, so stale markers left
    in a reused queue directory by an unrelated sweep are never
    executed against the wrong job function.
    """
    pending_dir = os.path.join(queue_dir, "pending")
    try:
        names = sorted(os.listdir(pending_dir))
    except OSError:
        return None
    for name in names:
        if name not in known_ids:
            continue
        lease_path = os.path.join(queue_dir, "leases", name)
        try:
            os.rename(os.path.join(pending_dir, name), lease_path)
        except OSError:
            continue  # somebody else won this one
        try:
            # rename preserves the marker's (old) mtime; refresh it so
            # the fresh lease does not look instantly expired.
            os.utime(lease_path, None)
        except OSError:
            pass
        return name
    return None


def _publish(queue_dir: str, job_id: str, frame_bytes: bytes) -> bool:
    """Idempotently publish a result frame; False when a result already
    exists (the duplicate is dropped and reported, never applied)."""
    results_dir = os.path.join(queue_dir, "results")
    tmp = os.path.join(results_dir, "%s.tmp.%s" % (job_id, _uniq()))
    with open(tmp, "wb") as stream:
        stream.write(frame_bytes)
        stream.flush()
        os.fsync(stream.fileno())
    final = os.path.join(results_dir, job_id + ".res")
    try:
        os.link(tmp, final)  # atomic fail-if-exists publication
        published = True
    except FileExistsError:
        published = False
    finally:
        try:
            os.unlink(tmp)
        except OSError:
            pass
    if not published:
        _event(queue_dir, job_id, "dup")
    return published


def _worker_process_one(
    queue_dir: str,
    fn: Callable,
    job_id: str,
    lease_timeout_s: float,
    job_timeout_s: Optional[float],
    chaos: Mapping[str, Sequence[str]],
    stop_path: str,
) -> None:
    faults = tuple(chaos.get(job_id, ()))
    _event(queue_dir, job_id, "claim")
    lease_path = os.path.join(queue_dir, "leases", job_id)
    try:
        os.utime(lease_path, None)
    except OSError:
        pass
    if "kill" in faults and _latch(queue_dir, job_id, "kill"):
        # Die mid-job, lease held, nothing published: the canonical
        # crashed worker.  _exit skips atexit/flush just like SIGKILL.
        os._exit(17)
    if "stall" in faults and _latch(queue_dir, job_id, "stall"):
        # Go silent: hold the lease without heartbeating until well
        # past its deadline, then abandon the job unpublished.
        deadline = time.monotonic() + 2.5 * lease_timeout_s
        while time.monotonic() < deadline and not os.path.exists(stop_path):
            time.sleep(min(0.05, lease_timeout_s / 4.0))
        return
    try:
        item = pickle.loads(_read_frame(os.path.join(queue_dir, "jobs", job_id + ".job")))
    except Exception:
        _event(queue_dir, job_id, "err", traceback.format_exc())
        _release(queue_dir, job_id)
        return
    renewer = _LeaseRenewer(
        lease_path, max(0.01, lease_timeout_s / 4.0), job_timeout_s
    )
    renewer.start()
    try:
        value = fn(item)
    except Exception:
        renewer.stop()
        _event(queue_dir, job_id, "err", traceback.format_exc())
        _release(queue_dir, job_id)
        return
    renewer.stop()
    payload = pickle.dumps(value)
    frame_bytes = _frame(payload)
    if "corrupt" in faults and _latch(queue_dir, job_id, "corrupt"):
        # Lie: publish a payload that no longer matches its checksum.
        body = bytearray(frame_bytes)
        body[-1] ^= 0xFF
        frame_bytes = bytes(body)
    _publish(queue_dir, job_id, frame_bytes)
    if "duplicate" in faults and _latch(queue_dir, job_id, "duplicate"):
        # Hand the finished job back as if never run: the next claimant
        # re-executes it and its publication must be dropped as a
        # duplicate for exactly-once to hold.
        _release(queue_dir, job_id)
    else:
        try:
            os.unlink(lease_path)
        except OSError:
            pass


def _worker_main(
    queue_dir: str,
    fn: Callable,
    lease_timeout_s: float,
    job_timeout_s: Optional[float],
    chaos: Mapping[str, Sequence[str]],
    known_ids: frozenset,
) -> None:
    """Worker loop: claim, run, publish, until the stop sentinel drops."""
    stop_path = os.path.join(queue_dir, "stop")
    while not os.path.exists(stop_path):
        job_id = _claim(queue_dir, known_ids)
        if job_id is None:
            time.sleep(_POLL_S)
            continue
        _worker_process_one(
            queue_dir, fn, job_id, lease_timeout_s, job_timeout_s, chaos, stop_path
        )


# ---------------------------------------------------------------------------
# Coordinator side


class WorkQueueBackend(ExecutionBackend):
    """Run jobs through a shared-directory lease queue (see module doc)."""

    name = "workqueue"

    def __init__(self, spec: BackendSpec) -> None:
        super().__init__(spec)
        import multiprocessing

        if "fork" not in multiprocessing.get_all_start_methods():
            raise BackendUnavailable(
                "workqueue backend needs the fork start method"
            )
        self._mp = multiprocessing.get_context("fork")
        self._owns_dir = spec.queue_dir is None
        try:
            if self._owns_dir:
                self.queue_dir = tempfile.mkdtemp(prefix="repro-workqueue-")
            else:
                self.queue_dir = os.path.abspath(spec.queue_dir)  # type: ignore[arg-type]
                os.makedirs(self.queue_dir, exist_ok=True)
            for sub in _SUBDIRS:
                os.makedirs(os.path.join(self.queue_dir, sub), exist_ok=True)
            probe = os.path.join(self.queue_dir, ".probe.%s" % _uniq())
            with open(probe, "w", encoding="utf-8") as stream:
                stream.write("ok")
            os.unlink(probe)
        except OSError as exc:
            raise BackendUnavailable(
                "queue directory %r is not writable: %s" % (spec.queue_dir, exc)
            ) from None
        self.workers = max(1, int(spec.workers))
        self.lease_timeout_s = max(0.05, float(spec.lease_timeout_s))
        self._processes: List[object] = []

    # -- setup helpers -----------------------------------------------------

    def _path(self, *parts: str) -> str:
        return os.path.join(self.queue_dir, *parts)

    @staticmethod
    def _job_id_for(fn: Callable, payload: bytes) -> str:
        tag = "%s.%s" % (
            getattr(fn, "__module__", "?"),
            getattr(fn, "__qualname__", repr(fn)),
        )
        return hashlib.sha256(tag.encode() + b"\0" + payload).hexdigest()[:24]

    def _ensure_pending(self, job_id: str) -> None:
        try:
            fd = os.open(
                self._path("pending", job_id), os.O_CREAT | os.O_EXCL | os.O_WRONLY
            )
            os.close(fd)
        except OSError:
            pass  # already pending, leased, or racing — all fine

    def _spawn_worker(
        self,
        fn: Callable,
        chaos: Mapping[str, Sequence[str]],
        known_ids: frozenset,
    ):
        process = self._mp.Process(
            target=_worker_main,
            args=(
                self.queue_dir,
                fn,
                self.lease_timeout_s,
                self.spec.job_timeout_s,
                chaos,
                known_ids,
            ),
            daemon=True,
        )
        process.start()
        return process

    # -- main loop ---------------------------------------------------------

    def run(
        self,
        fn: Callable,
        items: List[object],
        results: List[object],
        on_result: Optional[ResultCallback] = None,
        heartbeats: Optional[Sequence[Optional[str]]] = None,
        job_ids: Optional[Sequence[str]] = None,
    ) -> None:
        if not items:
            return
        payloads = [pickle.dumps(item) for item in items]
        if job_ids is not None:
            if len(job_ids) != len(items):
                raise ValueError("job_ids must align one-to-one with items")
            ids = list(job_ids)
        else:
            ids = [self._job_id_for(fn, payload) for payload in payloads]
        indices_by_id: Dict[str, List[int]] = {}
        for index, job_id in enumerate(ids):
            indices_by_id.setdefault(job_id, []).append(index)
        unique_ids = list(indices_by_id)

        chaos = self._chaos_by_id(ids)
        resolved: Dict[str, object] = {}

        def _deliver(job_id: str, value: object) -> None:
            resolved[job_id] = value
            for index in indices_by_id[job_id]:
                results[index] = value
                if on_result is not None:
                    on_result(index, value)

        # Clear a stale stop sentinel, then reuse any valid result a
        # previous run already published for these exact job keys.
        try:
            os.unlink(self._path("stop"))
        except OSError:
            pass
        to_run: List[str] = []
        for job_id in unique_ids:
            res_path = self._path("results", job_id + ".res")
            if os.path.exists(res_path):
                try:
                    _deliver(job_id, pickle.loads(_read_frame(res_path)))
                    self.counters.results_reused += 1
                    continue
                except Exception:
                    self.counters.corrupt_results += 1
                    self._quarantine_result(job_id)
            to_run.append(job_id)
        if not to_run:
            return
        # Pre-existing event markers (a prior run over this directory)
        # must not be re-counted.
        seen_events: Set[str] = set(self._list("events"))
        for job_id in to_run:
            first = indices_by_id[job_id][0]
            _write_frame(self._path("jobs", job_id + ".job"), payloads[first])
            # A lease orphaned by a dead prior coordinator blocks the
            # job; fold it back into pending before workers start.
            if os.path.exists(self._path("leases", job_id)):
                _release(self.queue_dir, job_id)
            self._ensure_pending(job_id)

        fail_counts: Dict[str, int] = {job_id: 0 for job_id in to_run}
        expiry_only: Dict[str, bool] = {job_id: True for job_id in to_run}
        poison: Set[str] = set()
        known_ids = frozenset(to_run)
        worker_count = min(self.workers, len(to_run))
        self._processes = [
            self._spawn_worker(fn, chaos, known_ids) for _ in range(worker_count)
        ]
        respawn_budget = worker_count + len(to_run)
        deadline = time.monotonic() + self._run_deadline_s(len(to_run))

        def outstanding() -> List[str]:
            return [j for j in to_run if j not in resolved and j not in poison]

        while outstanding():
            progressed = self._collect_results(
                _deliver, outstanding(), fail_counts, expiry_only
            )
            progressed |= self._collect_events(seen_events, fail_counts, expiry_only)
            self._reclaim_leases(resolved, poison, fail_counts)
            self._promote_poison(fail_counts, resolved, poison)
            respawn_budget = self._respawn_dead(
                fn, chaos, known_ids, respawn_budget, bool(outstanding())
            )
            if time.monotonic() > deadline:
                for job_id in outstanding():
                    logger.warning(
                        "workqueue: job %s made no progress before the run "
                        "deadline; poisoning it",
                        job_id,
                    )
                    self._poison(job_id, poison)
                break
            if not progressed:
                time.sleep(_POLL_S)
        # A duplicate-claim fault hands a finished job back to pending;
        # drop those markers so shutdown is not racing useless reruns.
        for job_id in resolved:
            try:
                os.unlink(self._path("pending", job_id))
            except OSError:
                pass
        self._stop_workers()
        # Late publications (a duplicate claimant finishing during
        # shutdown) still need counting, and a late *valid* result for
        # a poisoned job spares the inline rerun.
        self._collect_events(seen_events, fail_counts, expiry_only)
        for job_id in list(poison):
            res_path = self._path("results", job_id + ".res")
            if os.path.exists(res_path):
                try:
                    _deliver(job_id, pickle.loads(_read_frame(res_path)))
                    self.counters.results_published += 1
                    poison.discard(job_id)
                except Exception:
                    self._quarantine_result(job_id)
        self._finish_poisoned(fn, items, indices_by_id, poison, expiry_only, _deliver)
        lost = [job_id for job_id in unique_ids if job_id not in resolved]
        if lost:  # pragma: no cover - the ladder above should preclude it
            self.counters.jobs_lost += len(lost)
            raise JobExecutionError("workqueue lost job result(s): %s" % lost)

    def _run_deadline_s(self, job_count: int) -> float:
        """Global no-progress ceiling: with every lease budget burned,
        the run cannot legitimately take longer than this — past it,
        whatever is left is declared poison rather than waiting forever."""
        per_round = 2.5 * self.lease_timeout_s + 5.0
        return max(30.0, (self.spec.max_lease_failures + 2) * per_round) + (
            0.5 * job_count
        )

    # -- coordinator passes ------------------------------------------------

    def _list(self, sub: str) -> List[str]:
        try:
            return os.listdir(self._path(sub))
        except OSError:
            return []

    def _quarantine_result(self, job_id: str) -> None:
        src = self._path("results", job_id + ".res")
        dst = self._path("quarantine", "%s.res.corrupt.%s" % (job_id, _uniq()))
        try:
            os.replace(src, dst)
        except OSError:
            pass
        logger.warning("workqueue: corrupt result for job %s quarantined", job_id)

    def _collect_results(
        self,
        deliver: Callable[[str, object], None],
        waiting: Iterable[str],
        fail_counts: Dict[str, int],
        expiry_only: Dict[str, bool],
    ) -> bool:
        progressed = False
        for job_id in waiting:
            res_path = self._path("results", job_id + ".res")
            if not os.path.exists(res_path):
                continue
            try:
                value = pickle.loads(_read_frame(res_path))
            except Exception:
                # A worker lied (or the frame tore): quarantine the
                # payload, free the name, and put the job back in play.
                self.counters.corrupt_results += 1
                if job_id in fail_counts:
                    fail_counts[job_id] += 1
                    expiry_only[job_id] = False
                self._quarantine_result(job_id)
                self._ensure_pending(job_id)
                progressed = True
                continue
            deliver(job_id, value)
            self.counters.results_published += 1
            progressed = True
        return progressed

    def _collect_events(
        self,
        seen: Set[str],
        fail_counts: Dict[str, int],
        expiry_only: Dict[str, bool],
    ) -> bool:
        progressed = False
        for name in self._list("events"):
            if name in seen:
                continue
            seen.add(name)
            progressed = True
            job_id, _, rest = name.partition(".")
            if rest.startswith("claim"):
                self.counters.leases_claimed += 1
            elif rest.startswith("err"):
                self.counters.retries += 1
                if job_id in fail_counts:
                    fail_counts[job_id] += 1
                    expiry_only[job_id] = False
            elif rest.startswith("dup"):
                self.counters.duplicate_results += 1
        return progressed

    def _reclaim_leases(
        self,
        resolved: Mapping[str, object],
        poison: Set[str],
        fail_counts: Dict[str, int],
    ) -> None:
        now = time.time()
        for job_id in self._list("leases"):
            if job_id not in fail_counts or job_id in resolved or job_id in poison:
                continue
            lease_path = self._path("leases", job_id)
            try:
                age = now - os.path.getmtime(lease_path)
            except OSError:
                continue  # released or published meanwhile
            if age <= self.lease_timeout_s:
                continue
            self.counters.leases_expired += 1
            if job_id in fail_counts:
                fail_counts[job_id] += 1
            try:
                os.rename(lease_path, self._path("pending", job_id))
                self.counters.leases_reclaimed += 1
            except OSError:
                pass

    def _promote_poison(
        self,
        fail_counts: Dict[str, int],
        resolved: Mapping[str, object],
        poison: Set[str],
    ) -> None:
        for job_id, count in fail_counts.items():
            if job_id in resolved or job_id in poison:
                continue
            if count >= self.spec.max_lease_failures:
                self._poison(job_id, poison)

    def _poison(self, job_id: str, poison: Set[str]) -> None:
        poison.add(job_id)
        self.counters.poison_jobs += 1
        for sub in ("pending", "leases"):
            try:
                os.unlink(self._path(sub, job_id))
            except OSError:
                pass
        try:
            with open(
                self._path("quarantine", job_id + ".poison"), "w", encoding="utf-8"
            ) as stream:
                stream.write("failed %d lease(s)\n" % self.spec.max_lease_failures)
        except OSError:  # pragma: no cover - forensics are best-effort
            pass
        logger.warning(
            "workqueue: job %s quarantined as poison after repeated lease failures",
            job_id,
        )

    def _respawn_dead(
        self,
        fn: Callable,
        chaos: Mapping[str, Sequence[str]],
        known_ids: frozenset,
        budget: int,
        work_remains: bool,
    ) -> int:
        if not work_remains:
            return budget
        for slot, process in enumerate(self._processes):
            if process.is_alive() or budget <= 0:  # type: ignore[attr-defined]
                continue
            self._processes[slot] = self._spawn_worker(fn, chaos, known_ids)
            self.counters.worker_respawns += 1
            budget -= 1
        return budget

    def _stop_workers(self) -> None:
        try:
            with open(self._path("stop"), "w", encoding="utf-8") as stream:
                stream.write("done")
        except OSError:
            pass
        grace = 2.5 * self.lease_timeout_s + 2.0
        for process in self._processes:
            process.join(timeout=grace)  # type: ignore[attr-defined]
            if process.is_alive():  # type: ignore[attr-defined]
                process.terminate()  # type: ignore[attr-defined]
                process.join(timeout=2.0)  # type: ignore[attr-defined]
        self._processes = []

    def _finish_poisoned(
        self,
        fn: Callable,
        items: List[object],
        indices_by_id: Mapping[str, List[int]],
        poison: Set[str],
        expiry_only: Mapping[str, bool],
        deliver: Callable[[str, object], None],
    ) -> None:
        if not poison:
            return
        hung = sorted(job_id for job_id in poison if expiry_only.get(job_id, False))
        if hung:
            # Every failure was a silently expired lease: the job hangs
            # its workers.  Running it inline would hang the sweep too.
            raise JobExecutionError(
                "workqueue job(s) %s expired every lease (%d each); presumed hung"
                % (hung, self.spec.max_lease_failures)
            )
        for job_id in sorted(poison):
            # Error-poisoned jobs get the same last-chance in-process
            # attempt the pool ladder gives: a real bug reproduces here
            # with a real traceback.
            index = indices_by_id[job_id][0]
            value = fn(items[index])
            deliver(job_id, value)
            _write_frame(
                self._path("results", job_id + ".res"), pickle.dumps(value)
            )
            self.counters.results_published += 1

    # -- chaos plumbing ----------------------------------------------------

    def _chaos_by_id(self, ids: Sequence[str]) -> Dict[str, Sequence[str]]:
        """Translate an index-keyed chaos plan into job-id keys."""
        plan = self.spec.chaos_plan
        if plan is None:
            return {}
        faults_by_index = getattr(plan, "faults_by_job", plan)
        chaos: Dict[str, Sequence[str]] = {}
        for index, faults in dict(faults_by_index).items():
            index = int(index)
            if 0 <= index < len(ids) and faults:
                chaos[ids[index]] = tuple(faults)
        return chaos

    def close(self) -> None:
        self._stop_workers()
        if self._owns_dir:
            shutil.rmtree(self.queue_dir, ignore_errors=True)
