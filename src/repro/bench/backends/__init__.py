"""Pluggable execution backends for :class:`~repro.bench.parallel.SweepExecutor`.

Three implementations share one contract (:class:`ExecutionBackend`):

``inline``
    In-process, serial, deterministic — the oracle every other backend
    is measured against, and the bottom of the fallback ladder.
``pool``
    The hardened local ``multiprocessing.Pool`` engine (timeouts,
    retries with backoff, heartbeat stall watchdog, in-process
    last-chance attempt).
``workqueue``
    A file-based queue under a shared directory: lease files with
    owner/deadline, atomic claim-via-rename, heartbeat renewal,
    lease-expiry reclamation, idempotent result publication keyed by
    the job cache key, and poison-job quarantine.

:func:`make_backend` resolves a requested backend down the fallback
ladder (``workqueue -> pool -> inline``) when a rung is unavailable on
this host, counting each hop in ``counters.backend_fallbacks`` so
degradation is visible in executor stats, never silent.
"""

from __future__ import annotations

import logging
from typing import Dict, Optional, Type

from .base import (
    BackendSpec,
    BackendUnavailable,
    ExecutionBackend,
    ExecutorCounters,
    ResultCallback,
)
from .inline import InlineBackend
from .pool import PoolBackend
from .workqueue import WorkQueueBackend

__all__ = [
    "BACKENDS",
    "BackendSpec",
    "BackendUnavailable",
    "ExecutionBackend",
    "ExecutorCounters",
    "FALLBACK_LADDER",
    "InlineBackend",
    "PoolBackend",
    "ResultCallback",
    "WorkQueueBackend",
    "make_backend",
]

logger = logging.getLogger(__name__)

BACKENDS: Dict[str, Type[ExecutionBackend]] = {
    InlineBackend.name: InlineBackend,
    PoolBackend.name: PoolBackend,
    WorkQueueBackend.name: WorkQueueBackend,
}

#: Each backend degrades to the next rung down when it cannot run here.
FALLBACK_LADDER: Dict[str, Optional[str]] = {
    WorkQueueBackend.name: PoolBackend.name,
    PoolBackend.name: InlineBackend.name,
    InlineBackend.name: None,
}


def make_backend(name: str, spec: BackendSpec) -> ExecutionBackend:
    """Instantiate ``name``, degrading down the fallback ladder.

    Every fallback hop is counted in ``spec.counters.backend_fallbacks``
    and logged.  ``inline`` can always be constructed, so this never
    raises :class:`BackendUnavailable`; an unknown name raises
    ``ValueError`` before any ladder walking happens.
    """
    if name not in BACKENDS:
        raise ValueError(
            "unknown execution backend %r; available: %s"
            % (name, ", ".join(sorted(BACKENDS)))
        )
    current: Optional[str] = name
    while current is not None:
        try:
            return BACKENDS[current](spec)
        except BackendUnavailable as exc:
            fallback = FALLBACK_LADDER[current]
            spec.counters.backend_fallbacks += 1
            logger.warning(
                "execution backend %r unavailable (%s); falling back to %r",
                current,
                exc,
                fallback,
            )
            current = fallback
    raise AssertionError("inline backend must always be constructible")
