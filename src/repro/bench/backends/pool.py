"""The hardened local process-pool backend.

This is the ``multiprocessing.Pool`` execution engine that used to
live inside :class:`~repro.bench.parallel.SweepExecutor`, refactored
behind the :class:`~repro.bench.backends.base.ExecutionBackend`
contract so sweeps can swap it for the inline oracle or the
file-based work queue without touching callers.

Hardening (unchanged semantics from the pre-backend executor):

* ``job_timeout_s`` bounds every job; a hung worker is detected, the
  pool (and the hung process with it) is torn down and rebuilt, and
  the job is retried.
* Failures and timeouts are retried up to ``max_retries`` times with
  exponential backoff (``retry_backoff_s`` base).  Backoff is slept
  *between* rounds only — never after the final retry round, so a
  permanently failing job costs no dead wall-clock — and every slept
  second is accounted in ``counters.backoff_slept_s``.
* A job that exhausts pool retries on *errors* gets one final
  in-process attempt (a broken pool degrades to serial execution); a
  job that exhausts retries on *timeouts* raises
  :class:`~repro.errors.JobExecutionError` instead (running it
  in-process would hang the sweep).
* With ``heartbeat_timeout_s`` set, jobs that publish a heartbeat file
  (see :mod:`repro.bench.resilience`) are watched while they run: a
  stale heartbeat declares the worker stalled well before the job
  timeout.  A job that never writes its heartbeat file is *not*
  stalled — the job timeout alone covers workers that die before
  their first beat.
"""

from __future__ import annotations

import logging
import os
import time
from typing import Callable, List, Optional, Sequence

from ...errors import JobExecutionError
from .base import BackendSpec, ExecutionBackend, ResultCallback

__all__ = ["PoolBackend", "WorkerStalledError"]

logger = logging.getLogger(__name__)


class WorkerStalledError(Exception):
    """A worker's heartbeat went stale: hung or killed mid-job."""


class PoolBackend(ExecutionBackend):
    """Fan jobs out over a local ``multiprocessing.Pool``.

    Never raises :class:`BackendUnavailable`: a host where no pool can
    be created degrades *internally* to in-process execution (counted
    in ``counters.pool_fallbacks``), preserving the long-standing
    executor behaviour that a broken pool cannot sink a sweep.
    """

    name = "pool"

    def __init__(self, spec: BackendSpec) -> None:
        super().__init__(spec)
        self.workers = max(1, int(spec.workers))

    # -- public entry ------------------------------------------------------

    def run(
        self,
        fn: Callable,
        items: List[object],
        results: List[object],
        on_result: Optional[ResultCallback] = None,
        heartbeats: Optional[Sequence[Optional[str]]] = None,
        job_ids: Optional[Sequence[str]] = None,
    ) -> None:
        import multiprocessing

        pool = self._make_pool(min(self.workers, len(items)))
        if pool is None:
            self._run_inline(fn, items, results, list(range(len(items))), on_result)
            return
        spec = self.spec
        remaining = list(range(len(items)))
        attempts = [0] * len(items)
        timed_out = [False] * len(items)
        try:
            while remaining:
                handles = []
                pool_broken = False
                for index in remaining:
                    self._clear_heartbeat(heartbeats, index)
                    try:
                        handles.append((index, pool.apply_async(fn, (items[index],))))
                    except Exception:
                        handles.append((index, None))
                        pool_broken = True
                failed: List[int] = []
                for index, handle in handles:
                    if handle is None:
                        failed.append(index)
                        attempts[index] += 1
                        continue
                    heartbeat = heartbeats[index] if heartbeats is not None else None
                    try:
                        value = self._collect(handle, heartbeat)
                    except multiprocessing.TimeoutError:
                        self.counters.timeouts += 1
                        timed_out[index] = True
                        attempts[index] += 1
                        failed.append(index)
                        # The worker is still wedged on this job; the
                        # pool must be rebuilt to free the slot.
                        pool_broken = True
                        logger.warning(
                            "job %d timed out after %.1f s (attempt %d/%d)",
                            index,
                            spec.job_timeout_s or 0.0,
                            attempts[index],
                            spec.max_retries + 1,
                        )
                    except WorkerStalledError as exc:
                        self.counters.stalls += 1
                        timed_out[index] = True
                        attempts[index] += 1
                        failed.append(index)
                        pool_broken = True
                        logger.warning(
                            "job %d stalled (attempt %d/%d): %s",
                            index,
                            attempts[index],
                            spec.max_retries + 1,
                            exc,
                        )
                    except Exception as exc:
                        timed_out[index] = False
                        attempts[index] += 1
                        failed.append(index)
                        pool_broken = True
                        logger.warning(
                            "job %d failed in worker (attempt %d/%d): %s: %s",
                            index,
                            attempts[index],
                            spec.max_retries + 1,
                            type(exc).__name__,
                            exc,
                        )
                    else:
                        results[index] = value
                        timed_out[index] = False
                        if on_result is not None:
                            on_result(index, value)
                exhausted = [i for i in failed if attempts[i] > spec.max_retries]
                remaining = [i for i in failed if attempts[i] <= spec.max_retries]
                if exhausted:
                    hung = [i for i in exhausted if timed_out[i]]
                    if hung:
                        raise JobExecutionError(
                            "job(s) %s timed out on every attempt (%d tries each)"
                            % (hung, spec.max_retries + 1)
                        )
                    # Persistent worker-side errors: degrade to one
                    # in-process attempt so a broken pool cannot sink
                    # the sweep; a genuine job bug reproduces here with
                    # a real traceback.
                    self.counters.pool_fallbacks += 1
                    self._run_inline(fn, items, results, exhausted, on_result)
                if remaining:
                    # Backoff belongs *between* rounds: it is only slept
                    # here, when another retry round will actually run —
                    # never after the final attempt of a permanently
                    # failing job.
                    self.counters.retries += len(remaining)
                    self._backoff(attempts, remaining)
                    if pool_broken:
                        pool = self._rebuild_pool(pool, min(self.workers, len(remaining)))
                        if pool is None:
                            self._run_inline(fn, items, results, remaining, on_result)
                            remaining = []
        finally:
            if pool is not None:
                pool.terminate()
                pool.join()

    # -- helpers -----------------------------------------------------------

    def _run_inline(
        self,
        fn: Callable,
        items: List[object],
        results: List[object],
        indexes: List[int],
        on_result: Optional[ResultCallback],
    ) -> None:
        for index in indexes:
            results[index] = fn(items[index])
            if on_result is not None:
                on_result(index, results[index])

    def _backoff(self, attempts: List[int], remaining: List[int]) -> None:
        if self.spec.retry_backoff_s <= 0:
            return
        # Exponential in the retry round: the round number is how many
        # attempts the least-retried surviving job has already made.
        round_number = min(attempts[i] for i in remaining)
        delay = self.spec.retry_backoff_s * (2 ** (round_number - 1))
        self.counters.backoff_slept_s += delay
        time.sleep(delay)

    # -- heartbeat watchdog ------------------------------------------------

    @staticmethod
    def _clear_heartbeat(
        heartbeats: Optional[Sequence[Optional[str]]], index: int
    ) -> None:
        """Drop a stale heartbeat file before (re)dispatching its job."""
        if heartbeats is None or heartbeats[index] is None:
            return
        try:
            os.unlink(heartbeats[index])
        except OSError:
            pass

    def _collect(self, handle, heartbeat: Optional[str]):
        """Wait for one async result, watching the job's heartbeat.

        Without a watchdog this is a plain ``handle.get(timeout)``.
        With one, the wait is chopped into short polls; a heartbeat
        file that exists but has not been touched for
        ``heartbeat_timeout_s`` raises :class:`WorkerStalledError`.  A
        *missing* file never stalls the job — the job timeout covers
        workers that die before their first beat.
        """
        import multiprocessing

        spec = self.spec
        if spec.heartbeat_timeout_s is None or heartbeat is None:
            return handle.get(spec.job_timeout_s)
        poll = max(0.01, min(0.25, spec.heartbeat_timeout_s / 4.0))
        deadline = (
            time.monotonic() + spec.job_timeout_s
            if spec.job_timeout_s is not None
            else None
        )
        while True:
            remaining = poll
            if deadline is not None:
                remaining = min(poll, deadline - time.monotonic())
                if remaining <= 0:
                    raise multiprocessing.TimeoutError()
            try:
                return handle.get(remaining)
            except multiprocessing.TimeoutError:
                if deadline is not None and time.monotonic() >= deadline:
                    raise
                try:
                    age = time.time() - os.path.getmtime(heartbeat)
                except OSError:
                    continue  # no beat yet; only the job timeout applies
                if age > spec.heartbeat_timeout_s:
                    raise WorkerStalledError(
                        "heartbeat %s is %.1f s stale (limit %.1f s)"
                        % (heartbeat, age, spec.heartbeat_timeout_s)
                    ) from None

    def _rebuild_pool(self, pool, workers: int):
        try:
            pool.terminate()
            pool.join()
        except Exception:  # pragma: no cover - teardown best-effort
            pass
        return self._make_pool(workers)

    def _make_pool(self, workers: int):
        """A ``multiprocessing.Pool`` (it supports ``terminate``, which
        is what lets a hung worker be reclaimed), or None."""
        try:
            import multiprocessing

            methods = multiprocessing.get_all_start_methods()
            if "fork" in methods:
                # Fork shares the already-imported simulator with the
                # workers; spawn works too, just with a slower start.
                context = multiprocessing.get_context("fork")
            else:  # pragma: no cover - platform without fork
                context = multiprocessing.get_context()
            return context.Pool(processes=workers)
        except (ImportError, OSError, ValueError):
            self.counters.pool_fallbacks += 1
            return None
