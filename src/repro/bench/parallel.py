"""Parallel sweep execution with an on-disk result cache.

Every paper artifact is a sweep over (workload x design x config)
points, and each point is an independent, deterministic simulation.
This module decomposes such sweeps into :class:`SweepJob` descriptions
and executes them through a :class:`SweepExecutor`, which

* fans jobs out over a :class:`concurrent.futures.ProcessPoolExecutor`
  when ``workers > 1`` (falling back to in-process execution when the
  pool cannot be created or breaks),
* preserves deterministic result ordering — ``map_stats`` returns one
  :class:`~repro.sim.stats.MachineStats` per job, in job order, with
  values identical to a serial run, and
* memoizes finished jobs in an on-disk :class:`ResultCache` keyed by a
  stable hash of (design, workload, mechanism, config, params, code
  version), so repeated sweeps are incremental and any code or config
  change invalidates exactly the affected points.

Workers return only the :class:`MachineStats` summary — never the live
controller/hierarchy objects — so job results are cheap to pickle and
to persist as JSON.  Experiments that need the full simulation state
(crash sweeps) keep running in-process.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import logging
import os
import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

from ..config import SystemConfig, fast_config
from ..errors import JobExecutionError
from ..sim.stats import CoreStats, MachineStats
from ..utils.versioning import code_version
from ..workloads.base import WorkloadParams

__all__ = [
    "SweepJob",
    "SweepExecutor",
    "ResultCache",
    "execute_job",
    "job_cache_key",
    "default_cache_dir",
    "code_version",
    "stats_to_dict",
    "stats_from_dict",
]

logger = logging.getLogger(__name__)


# ---------------------------------------------------------------------------
# Job description


@dataclass(frozen=True)
class SweepJob:
    """One independent design point of a sweep.

    The job carries everything a worker process needs to reproduce the
    simulation: all fields are plain frozen dataclasses, so the job is
    picklable and hashable for caching.
    """

    design: str
    workload: str
    config: Optional[SystemConfig] = None
    mechanism: str = "undo"
    params: Optional[WorkloadParams] = None


def execute_job(job: SweepJob) -> MachineStats:
    """Run one job to completion; the worker-side entry point.

    Imported lazily so worker processes created with the ``spawn``
    start method can resolve it by qualified name.
    """
    from .harness import run_workload_stats

    return run_workload_stats(
        job.design,
        job.workload,
        config=job.config,
        mechanism=job.mechanism,
        params=job.params,
    )


# ---------------------------------------------------------------------------
# Stats (de)serialization


def stats_to_dict(stats: MachineStats) -> Dict[str, object]:
    """JSON-ready form of a :class:`MachineStats` (cache file payload)."""
    return dataclasses.asdict(stats)


def stats_from_dict(payload: Dict[str, object]) -> MachineStats:
    """Inverse of :func:`stats_to_dict`."""
    data = dict(payload)
    per_core = [CoreStats(**core) for core in data.pop("per_core")]
    return MachineStats(per_core=per_core, **data)


# ---------------------------------------------------------------------------
# Cache keys


def _canonical(value: object) -> object:
    """Make a value JSON-serializable in a stable way (bytes -> hex)."""
    if isinstance(value, bytes):
        return value.hex()
    if isinstance(value, dict):
        return {str(k): _canonical(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_canonical(v) for v in value]
    return value


# Re-exported for backwards compatibility; the implementation moved to
# repro.utils.versioning so the crash/sim layers can fingerprint code
# without depending on the bench layer.


def job_cache_key(job: SweepJob) -> str:
    """Stable content hash identifying a job's result."""
    config = job.config if job.config is not None else fast_config()
    params = job.params if job.params is not None else WorkloadParams()
    document = {
        "design": job.design,
        "workload": job.workload,
        "mechanism": job.mechanism,
        "config": _canonical(dataclasses.asdict(config)),
        "params": _canonical(dataclasses.asdict(params)),
        "code": code_version(),
    }
    blob = json.dumps(document, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode()).hexdigest()


# ---------------------------------------------------------------------------
# On-disk result cache


def default_cache_dir() -> str:
    """``$REPRO_CACHE_DIR`` or ``~/.cache/repro-bench``."""
    override = os.environ.get("REPRO_CACHE_DIR")
    if override:
        return override
    return os.path.join(os.path.expanduser("~"), ".cache", "repro-bench")


class ResultCache:
    """One JSON file per finished job under ``directory``.

    File name is the job's cache key, so lookups are a single ``open``.
    A missing file is a plain miss; a file that exists but does not
    parse back into stats is *corruption* — it is quarantined (renamed
    to ``<key>.json.corrupt`` for inspection), counted in
    ``corruption_events`` and logged, never silently recomputed over.
    """

    def __init__(self, directory: Optional[str] = None) -> None:
        self.directory = directory if directory is not None else default_cache_dir()
        self.corruption_events = 0

    def _path(self, key: str) -> str:
        return os.path.join(self.directory, key + ".json")

    def get(self, key: str) -> Optional[MachineStats]:
        path = self._path(key)
        try:
            with open(path, "r", encoding="utf-8") as stream:
                payload = json.load(stream)
            return stats_from_dict(payload["stats"])
        except FileNotFoundError:
            return None
        except OSError:
            # Unreadable (permissions, I/O): a miss, but not corrupt data.
            return None
        except (ValueError, KeyError, TypeError) as exc:
            self._quarantine(path, exc)
            return None

    def _quarantine(self, path: str, exc: Exception) -> None:
        self.corruption_events += 1
        quarantine_path = path + ".corrupt"
        try:
            os.replace(path, quarantine_path)
            where = "quarantined to %s" % quarantine_path
        except OSError:
            where = "could not be quarantined"
        logger.warning(
            "corrupt result-cache entry %s (%s: %s); %s",
            path,
            type(exc).__name__,
            exc,
            where,
        )

    def put(self, key: str, stats: MachineStats) -> None:
        os.makedirs(self.directory, exist_ok=True)
        path = self._path(key)
        tmp_path = path + ".tmp.%d" % os.getpid()
        payload = {"key": key, "stats": stats_to_dict(stats)}
        try:
            with open(tmp_path, "w", encoding="utf-8") as stream:
                json.dump(payload, stream, sort_keys=True)
            os.replace(tmp_path, path)
        except OSError:
            # A read-only cache directory degrades to no caching.
            try:
                os.unlink(tmp_path)
            except OSError:
                pass

    def clear(self) -> int:
        """Remove all cached results (quarantined ones included)."""
        removed = 0
        try:
            names = os.listdir(self.directory)
        except OSError:
            return 0
        for name in names:
            if name.endswith(".json") or name.endswith(".json.corrupt"):
                try:
                    os.unlink(os.path.join(self.directory, name))
                    removed += 1
                except OSError:
                    pass
        return removed


# ---------------------------------------------------------------------------
# Executor


#: A finished job result is delivered through this callback as soon as
#: it is available: ``on_result(index, value)``.
ResultCallback = Callable[[int, object], None]


class _WorkerStalledError(Exception):
    """A worker's heartbeat went stale: hung or killed mid-job."""


class SweepExecutor:
    """Runs sweep jobs, optionally in parallel and/or cached.

    ``SweepExecutor()`` (the default used by ``Experiment.run``) is a
    plain in-process serial runner with no cache, preserving the exact
    behaviour experiments had before this engine existed.

    The pooled path is hardened against misbehaving workers:

    * ``job_timeout_s`` bounds every job; a hung worker is detected,
      the pool (and the hung process with it) is torn down and rebuilt,
      and the job is retried.
    * Failures and timeouts are retried up to ``max_retries`` times
      with exponential backoff (``retry_backoff_s`` base).
    * A job that exhausts pool retries on *errors* gets one final
      in-process attempt, so a broken pool degrades to serial
      execution instead of failing the sweep; a job that exhausts
      retries on *timeouts* raises :class:`JobExecutionError` (running
      it in-process would hang the sweep instead).
    * With ``heartbeat_timeout_s`` set, jobs that publish a heartbeat
      file (see :mod:`repro.bench.resilience`) are watched while they
      run: a worker whose heartbeat goes stale is declared stalled well
      before the job timeout, torn down with the pool, and retried.  A
      job that never writes its heartbeat file is *not* stalled — the
      job timeout alone covers workers that die before their first
      beat, which avoids false stalls for jobs queued behind a busy
      pool.
    * Corrupt result-cache entries are quarantined and counted by the
      cache (``cache.corruption_events``), never silently recomputed.
    """

    def __init__(
        self,
        workers: int = 1,
        cache: Optional[ResultCache] = None,
        job_timeout_s: Optional[float] = None,
        max_retries: int = 2,
        retry_backoff_s: float = 0.1,
        heartbeat_timeout_s: Optional[float] = None,
    ) -> None:
        self.workers = max(1, int(workers))
        self.cache = cache
        self.job_timeout_s = job_timeout_s
        self.max_retries = max(0, int(max_retries))
        self.retry_backoff_s = max(0.0, float(retry_backoff_s))
        self.heartbeat_timeout_s = heartbeat_timeout_s
        self.cache_hits = 0
        self.cache_misses = 0
        self.jobs_executed = 0
        self.pool_fallbacks = 0
        self.timeouts = 0
        self.stalls = 0
        self.retries = 0

    # -- stats -------------------------------------------------------------

    @property
    def cache_corruption_events(self) -> int:
        return self.cache.corruption_events if self.cache is not None else 0

    def stats(self) -> Dict[str, int]:
        """Executor health counters, for reports and the CLI."""
        return {
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "cache_corruption_events": self.cache_corruption_events,
            "jobs_executed": self.jobs_executed,
            "pool_fallbacks": self.pool_fallbacks,
            "timeouts": self.timeouts,
            "stalls": self.stalls,
            "retries": self.retries,
        }

    # -- execution --------------------------------------------------------

    def map_stats(self, jobs: Sequence[SweepJob]) -> List[MachineStats]:
        """Execute all jobs; result ``i`` belongs to ``jobs[i]``."""
        results: List[Optional[MachineStats]] = [None] * len(jobs)
        pending: List[int] = []
        keys: List[Optional[str]] = [None] * len(jobs)
        if self.cache is not None:
            for index, job in enumerate(jobs):
                key = job_cache_key(job)
                keys[index] = key
                cached = self.cache.get(key)
                if cached is not None:
                    self.cache_hits += 1
                    results[index] = cached
                else:
                    self.cache_misses += 1
                    pending.append(index)
        else:
            pending = list(range(len(jobs)))
        if pending:
            fresh = self.map(execute_job, [jobs[i] for i in pending])
            for index, stats in zip(pending, fresh):
                results[index] = stats
                if self.cache is not None and keys[index] is not None:
                    self.cache.put(keys[index], stats)
        return results  # type: ignore[return-value]

    def map(
        self,
        fn: Callable,
        items: Sequence[object],
        on_result: Optional[ResultCallback] = None,
        heartbeats: Optional[Sequence[Optional[str]]] = None,
    ) -> List[object]:
        """Hardened ordered map: ``results[i] = fn(items[i])``.

        ``fn`` must be a module-level callable and every item picklable
        when ``workers > 1``.  ``on_result`` fires as each result lands
        (in index order), which lets callers journal progress for
        resumability.  ``heartbeats`` (optional, one path or None per
        item) names the heartbeat file each job updates while it runs;
        the watchdog only engages when ``heartbeat_timeout_s`` is set.
        """
        items = list(items)
        results: List[object] = [None] * len(items)
        self.jobs_executed += len(items)
        if heartbeats is not None and len(heartbeats) != len(items):
            raise ValueError("heartbeats must align one-to-one with items")
        if self.workers == 1 or len(items) <= 1:
            for index, item in enumerate(items):
                results[index] = fn(item)
                if on_result is not None:
                    on_result(index, results[index])
            return results
        self._map_pooled(fn, items, results, on_result, heartbeats)
        return results

    # -- pooled execution -------------------------------------------------

    def _map_pooled(
        self,
        fn: Callable,
        items: List[object],
        results: List[object],
        on_result: Optional[ResultCallback],
        heartbeats: Optional[Sequence[Optional[str]]] = None,
    ) -> None:
        import multiprocessing

        pool = self._make_pool(min(self.workers, len(items)))
        if pool is None:
            self._run_inline(fn, items, results, list(range(len(items))), on_result)
            return
        remaining = list(range(len(items)))
        attempts = [0] * len(items)
        timed_out = [False] * len(items)
        round_number = 0
        try:
            while remaining:
                if round_number > 0:
                    self.retries += len(remaining)
                    self._backoff(round_number)
                round_number += 1
                handles = []
                pool_broken = False
                for index in remaining:
                    self._clear_heartbeat(heartbeats, index)
                    try:
                        handles.append((index, pool.apply_async(fn, (items[index],))))
                    except Exception:
                        handles.append((index, None))
                        pool_broken = True
                failed: List[int] = []
                for index, handle in handles:
                    if handle is None:
                        failed.append(index)
                        attempts[index] += 1
                        continue
                    heartbeat = heartbeats[index] if heartbeats is not None else None
                    try:
                        value = self._collect(handle, heartbeat)
                    except multiprocessing.TimeoutError:
                        self.timeouts += 1
                        timed_out[index] = True
                        attempts[index] += 1
                        failed.append(index)
                        # The worker is still wedged on this job; the
                        # pool must be rebuilt to free the slot.
                        pool_broken = True
                        logger.warning(
                            "job %d timed out after %.1f s (attempt %d/%d)",
                            index,
                            self.job_timeout_s or 0.0,
                            attempts[index],
                            self.max_retries + 1,
                        )
                    except _WorkerStalledError as exc:
                        self.stalls += 1
                        timed_out[index] = True
                        attempts[index] += 1
                        failed.append(index)
                        pool_broken = True
                        logger.warning(
                            "job %d stalled (attempt %d/%d): %s",
                            index,
                            attempts[index],
                            self.max_retries + 1,
                            exc,
                        )
                    except Exception as exc:
                        timed_out[index] = False
                        attempts[index] += 1
                        failed.append(index)
                        pool_broken = True
                        logger.warning(
                            "job %d failed in worker (attempt %d/%d): %s: %s",
                            index,
                            attempts[index],
                            self.max_retries + 1,
                            type(exc).__name__,
                            exc,
                        )
                    else:
                        results[index] = value
                        timed_out[index] = False
                        if on_result is not None:
                            on_result(index, value)
                exhausted = [i for i in failed if attempts[i] > self.max_retries]
                remaining = [i for i in failed if attempts[i] <= self.max_retries]
                if exhausted:
                    hung = [i for i in exhausted if timed_out[i]]
                    if hung:
                        raise JobExecutionError(
                            "job(s) %s timed out on every attempt (%d tries each)"
                            % (hung, self.max_retries + 1)
                        )
                    # Persistent worker-side errors: degrade to one
                    # in-process attempt so a broken pool cannot sink
                    # the sweep; a genuine job bug reproduces here with
                    # a real traceback.
                    self.pool_fallbacks += 1
                    self._run_inline(fn, items, results, exhausted, on_result)
                if remaining and pool_broken:
                    pool = self._rebuild_pool(pool, min(self.workers, len(remaining)))
                    if pool is None:
                        self._run_inline(fn, items, results, remaining, on_result)
                        remaining = []
        finally:
            if pool is not None:
                pool.terminate()
                pool.join()

    def _run_inline(
        self,
        fn: Callable,
        items: List[object],
        results: List[object],
        indexes: List[int],
        on_result: Optional[ResultCallback],
    ) -> None:
        for index in indexes:
            results[index] = fn(items[index])
            if on_result is not None:
                on_result(index, results[index])

    def _backoff(self, round_number: int) -> None:
        if self.retry_backoff_s > 0:
            time.sleep(self.retry_backoff_s * (2 ** (round_number - 1)))

    # -- heartbeat watchdog ------------------------------------------------

    @staticmethod
    def _clear_heartbeat(
        heartbeats: Optional[Sequence[Optional[str]]], index: int
    ) -> None:
        """Drop a stale heartbeat file before (re)dispatching its job."""
        if heartbeats is None or heartbeats[index] is None:
            return
        try:
            os.unlink(heartbeats[index])
        except OSError:
            pass

    def _collect(self, handle, heartbeat: Optional[str]):
        """Wait for one async result, watching the job's heartbeat.

        Without a watchdog this is a plain ``handle.get(timeout)``.
        With one, the wait is chopped into short polls; a heartbeat
        file that exists but has not been touched for
        ``heartbeat_timeout_s`` raises :class:`_WorkerStalledError`.  A
        *missing* file never stalls the job — the job timeout covers
        workers that die before their first beat.
        """
        import multiprocessing

        if self.heartbeat_timeout_s is None or heartbeat is None:
            return handle.get(self.job_timeout_s)
        poll = max(0.01, min(0.25, self.heartbeat_timeout_s / 4.0))
        deadline = (
            time.monotonic() + self.job_timeout_s
            if self.job_timeout_s is not None
            else None
        )
        while True:
            remaining = poll
            if deadline is not None:
                remaining = min(poll, deadline - time.monotonic())
                if remaining <= 0:
                    raise multiprocessing.TimeoutError()
            try:
                return handle.get(remaining)
            except multiprocessing.TimeoutError:
                if deadline is not None and time.monotonic() >= deadline:
                    raise
                try:
                    age = time.time() - os.path.getmtime(heartbeat)
                except OSError:
                    continue  # no beat yet; only the job timeout applies
                if age > self.heartbeat_timeout_s:
                    raise _WorkerStalledError(
                        "heartbeat %s is %.1f s stale (limit %.1f s)"
                        % (heartbeat, age, self.heartbeat_timeout_s)
                    ) from None

    def _rebuild_pool(self, pool, workers: int):
        try:
            pool.terminate()
            pool.join()
        except Exception:  # pragma: no cover - teardown best-effort
            pass
        return self._make_pool(workers)

    def _make_pool(self, workers: int):
        """A ``multiprocessing.Pool`` (it supports ``terminate``, which
        is what lets a hung worker be reclaimed), or None."""
        try:
            import multiprocessing

            methods = multiprocessing.get_all_start_methods()
            if "fork" in methods:
                # Fork shares the already-imported simulator with the
                # workers; spawn works too, just with a slower start.
                context = multiprocessing.get_context("fork")
            else:  # pragma: no cover - platform without fork
                context = multiprocessing.get_context()
            return context.Pool(processes=workers)
        except (ImportError, OSError, ValueError):
            self.pool_fallbacks += 1
            return None
