"""Parallel sweep execution with an on-disk result cache.

Every paper artifact is a sweep over (workload x design x config)
points, and each point is an independent, deterministic simulation.
This module decomposes such sweeps into :class:`SweepJob` descriptions
and executes them through a :class:`SweepExecutor`, which

* fans jobs out over a :class:`concurrent.futures.ProcessPoolExecutor`
  when ``workers > 1`` (falling back to in-process execution when the
  pool cannot be created or breaks),
* preserves deterministic result ordering — ``map_stats`` returns one
  :class:`~repro.sim.stats.MachineStats` per job, in job order, with
  values identical to a serial run, and
* memoizes finished jobs in an on-disk :class:`ResultCache` keyed by a
  stable hash of (design, workload, mechanism, config, params, code
  version), so repeated sweeps are incremental and any code or config
  change invalidates exactly the affected points.

Workers return only the :class:`MachineStats` summary — never the live
controller/hierarchy objects — so job results are cheap to pickle and
to persist as JSON.  Experiments that need the full simulation state
(crash sweeps) keep running in-process.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..config import SystemConfig, fast_config
from ..sim.stats import CoreStats, MachineStats
from ..workloads.base import WorkloadParams

__all__ = [
    "SweepJob",
    "SweepExecutor",
    "ResultCache",
    "execute_job",
    "job_cache_key",
    "default_cache_dir",
    "code_version",
    "stats_to_dict",
    "stats_from_dict",
]


# ---------------------------------------------------------------------------
# Job description


@dataclass(frozen=True)
class SweepJob:
    """One independent design point of a sweep.

    The job carries everything a worker process needs to reproduce the
    simulation: all fields are plain frozen dataclasses, so the job is
    picklable and hashable for caching.
    """

    design: str
    workload: str
    config: Optional[SystemConfig] = None
    mechanism: str = "undo"
    params: Optional[WorkloadParams] = None


def execute_job(job: SweepJob) -> MachineStats:
    """Run one job to completion; the worker-side entry point.

    Imported lazily so worker processes created with the ``spawn``
    start method can resolve it by qualified name.
    """
    from .harness import run_workload_stats

    return run_workload_stats(
        job.design,
        job.workload,
        config=job.config,
        mechanism=job.mechanism,
        params=job.params,
    )


# ---------------------------------------------------------------------------
# Stats (de)serialization


def stats_to_dict(stats: MachineStats) -> Dict[str, object]:
    """JSON-ready form of a :class:`MachineStats` (cache file payload)."""
    return dataclasses.asdict(stats)


def stats_from_dict(payload: Dict[str, object]) -> MachineStats:
    """Inverse of :func:`stats_to_dict`."""
    data = dict(payload)
    per_core = [CoreStats(**core) for core in data.pop("per_core")]
    return MachineStats(per_core=per_core, **data)


# ---------------------------------------------------------------------------
# Cache keys


def _canonical(value: object) -> object:
    """Make a value JSON-serializable in a stable way (bytes -> hex)."""
    if isinstance(value, bytes):
        return value.hex()
    if isinstance(value, dict):
        return {str(k): _canonical(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_canonical(v) for v in value]
    return value


_code_version_cache: Optional[str] = None


def code_version() -> str:
    """Digest of the ``repro`` package sources.

    Any change to the simulator's code changes this digest and thereby
    invalidates every cached sweep result — correctness beats reuse.
    """
    global _code_version_cache
    if _code_version_cache is not None:
        return _code_version_cache
    package_dir = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    digest = hashlib.sha256()
    for root, dirs, files in sorted(os.walk(package_dir)):
        dirs[:] = sorted(d for d in dirs if d != "__pycache__")
        for name in sorted(files):
            if not name.endswith(".py"):
                continue
            path = os.path.join(root, name)
            digest.update(os.path.relpath(path, package_dir).encode())
            with open(path, "rb") as stream:
                digest.update(stream.read())
    _code_version_cache = digest.hexdigest()[:16]
    return _code_version_cache


def job_cache_key(job: SweepJob) -> str:
    """Stable content hash identifying a job's result."""
    config = job.config if job.config is not None else fast_config()
    params = job.params if job.params is not None else WorkloadParams()
    document = {
        "design": job.design,
        "workload": job.workload,
        "mechanism": job.mechanism,
        "config": _canonical(dataclasses.asdict(config)),
        "params": _canonical(dataclasses.asdict(params)),
        "code": code_version(),
    }
    blob = json.dumps(document, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode()).hexdigest()


# ---------------------------------------------------------------------------
# On-disk result cache


def default_cache_dir() -> str:
    """``$REPRO_CACHE_DIR`` or ``~/.cache/repro-bench``."""
    override = os.environ.get("REPRO_CACHE_DIR")
    if override:
        return override
    return os.path.join(os.path.expanduser("~"), ".cache", "repro-bench")


class ResultCache:
    """One JSON file per finished job under ``directory``.

    File name is the job's cache key, so lookups are a single ``open``;
    corrupt or unreadable entries are treated as misses and rewritten.
    """

    def __init__(self, directory: Optional[str] = None) -> None:
        self.directory = directory if directory is not None else default_cache_dir()

    def _path(self, key: str) -> str:
        return os.path.join(self.directory, key + ".json")

    def get(self, key: str) -> Optional[MachineStats]:
        try:
            with open(self._path(key), "r", encoding="utf-8") as stream:
                payload = json.load(stream)
            return stats_from_dict(payload["stats"])
        except (OSError, ValueError, KeyError, TypeError):
            return None

    def put(self, key: str, stats: MachineStats) -> None:
        os.makedirs(self.directory, exist_ok=True)
        path = self._path(key)
        tmp_path = path + ".tmp.%d" % os.getpid()
        payload = {"key": key, "stats": stats_to_dict(stats)}
        try:
            with open(tmp_path, "w", encoding="utf-8") as stream:
                json.dump(payload, stream, sort_keys=True)
            os.replace(tmp_path, path)
        except OSError:
            # A read-only cache directory degrades to no caching.
            try:
                os.unlink(tmp_path)
            except OSError:
                pass

    def clear(self) -> int:
        """Remove all cached results; returns the number removed."""
        removed = 0
        try:
            names = os.listdir(self.directory)
        except OSError:
            return 0
        for name in names:
            if name.endswith(".json"):
                try:
                    os.unlink(os.path.join(self.directory, name))
                    removed += 1
                except OSError:
                    pass
        return removed


# ---------------------------------------------------------------------------
# Executor


class SweepExecutor:
    """Runs sweep jobs, optionally in parallel and/or cached.

    ``SweepExecutor()`` (the default used by ``Experiment.run``) is a
    plain in-process serial runner with no cache, preserving the exact
    behaviour experiments had before this engine existed.
    """

    def __init__(self, workers: int = 1, cache: Optional[ResultCache] = None) -> None:
        self.workers = max(1, int(workers))
        self.cache = cache
        self.cache_hits = 0
        self.cache_misses = 0
        self.jobs_executed = 0
        self.pool_fallbacks = 0

    # -- execution --------------------------------------------------------

    def map_stats(self, jobs: Sequence[SweepJob]) -> List[MachineStats]:
        """Execute all jobs; result ``i`` belongs to ``jobs[i]``."""
        results: List[Optional[MachineStats]] = [None] * len(jobs)
        pending: List[int] = []
        keys: List[Optional[str]] = [None] * len(jobs)
        if self.cache is not None:
            for index, job in enumerate(jobs):
                key = job_cache_key(job)
                keys[index] = key
                cached = self.cache.get(key)
                if cached is not None:
                    self.cache_hits += 1
                    results[index] = cached
                else:
                    self.cache_misses += 1
                    pending.append(index)
        else:
            pending = list(range(len(jobs)))
        if pending:
            fresh = self._run_pending([jobs[i] for i in pending])
            for index, stats in zip(pending, fresh):
                results[index] = stats
                if self.cache is not None and keys[index] is not None:
                    self.cache.put(keys[index], stats)
        return results  # type: ignore[return-value]

    def _run_pending(self, jobs: List[SweepJob]) -> List[MachineStats]:
        self.jobs_executed += len(jobs)
        if self.workers == 1 or len(jobs) == 1:
            return [execute_job(job) for job in jobs]
        pool = self._make_pool(min(self.workers, len(jobs)))
        if pool is None:
            return [execute_job(job) for job in jobs]
        try:
            with pool:
                return list(pool.map(execute_job, jobs))
        except _POOL_FAILURES:
            # A broken pool (killed worker, fork unavailable mid-flight)
            # degrades to correct-but-serial execution.
            self.pool_fallbacks += 1
            return [execute_job(job) for job in jobs]

    def _make_pool(self, workers: int):
        try:
            import multiprocessing
            from concurrent.futures import ProcessPoolExecutor

            context = None
            methods = multiprocessing.get_all_start_methods()
            if "fork" in methods:
                # Fork shares the already-imported simulator with the
                # workers; spawn works too, just with a slower start.
                context = multiprocessing.get_context("fork")
            return ProcessPoolExecutor(max_workers=workers, mp_context=context)
        except (ImportError, OSError, ValueError):
            self.pool_fallbacks += 1
            return None


def _pool_failures() -> tuple:
    failures = [OSError]
    try:
        from concurrent.futures.process import BrokenProcessPool

        failures.append(BrokenProcessPool)
    except ImportError:  # pragma: no cover - ancient stdlib
        pass
    try:
        import pickle

        failures.append(pickle.PicklingError)
    except ImportError:  # pragma: no cover
        pass
    return tuple(failures)


_POOL_FAILURES = _pool_failures()
