"""Parallel sweep execution with an on-disk result cache.

Every paper artifact is a sweep over (workload x design x config)
points, and each point is an independent, deterministic simulation.
This module decomposes such sweeps into :class:`SweepJob` descriptions
and executes them through a :class:`SweepExecutor`, which

* fans jobs out over a :class:`concurrent.futures.ProcessPoolExecutor`
  when ``workers > 1`` (falling back to in-process execution when the
  pool cannot be created or breaks),
* preserves deterministic result ordering — ``map_stats`` returns one
  :class:`~repro.sim.stats.MachineStats` per job, in job order, with
  values identical to a serial run, and
* memoizes finished jobs in an on-disk :class:`ResultCache` keyed by a
  stable hash of (design, workload, mechanism, config, params, code
  version), so repeated sweeps are incremental and any code or config
  change invalidates exactly the affected points.

Workers return only the :class:`MachineStats` summary — never the live
controller/hierarchy objects — so job results are cheap to pickle and
to persist as JSON.  Experiments that need the full simulation state
(crash sweeps) keep running in-process.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import logging
import os
import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

from ..config import SystemConfig, fast_config
from ..errors import JobExecutionError
from ..sim.stats import CoreStats, MachineStats
from ..utils.versioning import code_version
from ..workloads.base import WorkloadParams

__all__ = [
    "SweepJob",
    "SweepExecutor",
    "ResultCache",
    "execute_job",
    "job_cache_key",
    "default_cache_dir",
    "code_version",
    "stats_to_dict",
    "stats_from_dict",
]

logger = logging.getLogger(__name__)


# ---------------------------------------------------------------------------
# Job description


@dataclass(frozen=True)
class SweepJob:
    """One independent design point of a sweep.

    The job carries everything a worker process needs to reproduce the
    simulation: all fields are plain frozen dataclasses, so the job is
    picklable and hashable for caching.
    """

    design: str
    workload: str
    config: Optional[SystemConfig] = None
    mechanism: str = "undo"
    params: Optional[WorkloadParams] = None


def execute_job(job: SweepJob) -> MachineStats:
    """Run one job to completion; the worker-side entry point.

    Imported lazily so worker processes created with the ``spawn``
    start method can resolve it by qualified name.
    """
    from .harness import run_workload_stats

    return run_workload_stats(
        job.design,
        job.workload,
        config=job.config,
        mechanism=job.mechanism,
        params=job.params,
    )


# ---------------------------------------------------------------------------
# Stats (de)serialization


def stats_to_dict(stats: MachineStats) -> Dict[str, object]:
    """JSON-ready form of a :class:`MachineStats` (cache file payload)."""
    return dataclasses.asdict(stats)


def stats_from_dict(payload: Dict[str, object]) -> MachineStats:
    """Inverse of :func:`stats_to_dict`."""
    data = dict(payload)
    per_core = [CoreStats(**core) for core in data.pop("per_core")]
    return MachineStats(per_core=per_core, **data)


# ---------------------------------------------------------------------------
# Cache keys


def _canonical(value: object) -> object:
    """Make a value JSON-serializable in a stable way (bytes -> hex)."""
    if isinstance(value, bytes):
        return value.hex()
    if isinstance(value, dict):
        return {str(k): _canonical(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_canonical(v) for v in value]
    return value


# Re-exported for backwards compatibility; the implementation moved to
# repro.utils.versioning so the crash/sim layers can fingerprint code
# without depending on the bench layer.


def job_cache_key(job: SweepJob) -> str:
    """Stable content hash identifying a job's result."""
    config = job.config if job.config is not None else fast_config()
    params = job.params if job.params is not None else WorkloadParams()
    document = {
        "design": job.design,
        "workload": job.workload,
        "mechanism": job.mechanism,
        "config": _canonical(dataclasses.asdict(config)),
        "params": _canonical(dataclasses.asdict(params)),
        "code": code_version(),
    }
    blob = json.dumps(document, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode()).hexdigest()


# ---------------------------------------------------------------------------
# On-disk result cache


def default_cache_dir() -> str:
    """``$REPRO_CACHE_DIR`` or ``~/.cache/repro-bench``."""
    override = os.environ.get("REPRO_CACHE_DIR")
    if override:
        return override
    return os.path.join(os.path.expanduser("~"), ".cache", "repro-bench")


class ResultCache:
    """One JSON file per finished job under ``directory``.

    File name is the job's cache key, so lookups are a single ``open``.
    A missing file is a plain miss; a file that exists but does not
    parse back into stats is *corruption* — it is quarantined (renamed
    to ``<key>.json.corrupt`` for inspection), counted in
    ``corruption_events`` and logged, never silently recomputed over.
    """

    def __init__(self, directory: Optional[str] = None) -> None:
        self.directory = directory if directory is not None else default_cache_dir()
        self.corruption_events = 0

    def _path(self, key: str) -> str:
        return os.path.join(self.directory, key + ".json")

    def get(self, key: str) -> Optional[MachineStats]:
        path = self._path(key)
        try:
            with open(path, "r", encoding="utf-8") as stream:
                payload = json.load(stream)
            return stats_from_dict(payload["stats"])
        except FileNotFoundError:
            return None
        except OSError:
            # Unreadable (permissions, I/O): a miss, but not corrupt data.
            return None
        except (ValueError, KeyError, TypeError) as exc:
            self._quarantine(path, exc)
            return None

    def _quarantine(self, path: str, exc: Exception) -> None:
        self.corruption_events += 1
        quarantine_path = path + ".corrupt"
        try:
            os.replace(path, quarantine_path)
            where = "quarantined to %s" % quarantine_path
        except OSError:
            where = "could not be quarantined"
        logger.warning(
            "corrupt result-cache entry %s (%s: %s); %s",
            path,
            type(exc).__name__,
            exc,
            where,
        )

    def put(self, key: str, stats: MachineStats) -> None:
        os.makedirs(self.directory, exist_ok=True)
        path = self._path(key)
        tmp_path = path + ".tmp.%d" % os.getpid()
        payload = {"key": key, "stats": stats_to_dict(stats)}
        try:
            with open(tmp_path, "w", encoding="utf-8") as stream:
                json.dump(payload, stream, sort_keys=True)
            os.replace(tmp_path, path)
        except OSError:
            # A read-only cache directory degrades to no caching.
            try:
                os.unlink(tmp_path)
            except OSError:
                pass

    def clear(self) -> int:
        """Remove all cached results (quarantined ones included)."""
        removed = 0
        try:
            names = os.listdir(self.directory)
        except OSError:
            return 0
        for name in names:
            if name.endswith(".json") or name.endswith(".json.corrupt"):
                try:
                    os.unlink(os.path.join(self.directory, name))
                    removed += 1
                except OSError:
                    pass
        return removed


# ---------------------------------------------------------------------------
# Executor

#: A finished job result is delivered through this callback as soon as
#: it is available: ``on_result(index, value)``.
ResultCallback = Callable[[int, object], None]


class SweepExecutor:
    """Runs sweep jobs through a pluggable execution backend.

    ``SweepExecutor()`` (the default used by ``Experiment.run``) is a
    plain in-process serial runner with no cache, preserving the exact
    behaviour experiments had before this engine existed.

    ``backend`` picks the execution engine (see
    :mod:`repro.bench.backends`):

    * ``None`` (default) — ``pool`` when ``workers > 1``, ``inline``
      otherwise: the historical behaviour.
    * ``"inline"`` — serial in-process execution, the deterministic
      oracle.
    * ``"pool"`` — the hardened local ``multiprocessing.Pool``
      (per-job timeouts reclaiming hung workers, bounded retries with
      backoff, heartbeat stall watchdog, in-process last-chance
      attempt).
    * ``"workqueue"`` — a shared-directory lease queue (``queue_dir``)
      with atomic claim-via-rename, heartbeat lease renewal,
      lease-expiry reclamation, idempotent result publication keyed by
      the job cache key, and poison-job quarantine after
      ``max_lease_failures`` failed leases.

    A backend that cannot run on this host degrades down the fallback
    ladder (``workqueue -> pool -> inline``); every hop is counted in
    ``stats()['backend_fallbacks']``, never silent.  Backoff sleeps
    only *between* retry rounds — never after the final attempt — and
    the total slept is reported as ``stats()['backoff_slept_s']``.
    """

    def __init__(
        self,
        workers: int = 1,
        cache: Optional[ResultCache] = None,
        job_timeout_s: Optional[float] = None,
        max_retries: int = 2,
        retry_backoff_s: float = 0.1,
        heartbeat_timeout_s: Optional[float] = None,
        backend: Optional[str] = None,
        queue_dir: Optional[str] = None,
        lease_timeout_s: float = 30.0,
        max_lease_failures: int = 3,
        chaos_plan: Optional[object] = None,
    ) -> None:
        from .backends import BACKENDS, ExecutorCounters

        if backend is not None and backend not in BACKENDS:
            raise ValueError(
                "unknown execution backend %r; available: %s"
                % (backend, ", ".join(sorted(BACKENDS)))
            )
        self.workers = max(1, int(workers))
        self.cache = cache
        self.job_timeout_s = job_timeout_s
        self.max_retries = max(0, int(max_retries))
        self.retry_backoff_s = max(0.0, float(retry_backoff_s))
        self.heartbeat_timeout_s = heartbeat_timeout_s
        self.backend = backend
        self.queue_dir = queue_dir
        self.lease_timeout_s = lease_timeout_s
        self.max_lease_failures = max(1, int(max_lease_failures))
        self.chaos_plan = chaos_plan
        self.counters = ExecutorCounters()
        self.resolved_backend: Optional[str] = None
        self.cache_hits = 0
        self.cache_misses = 0
        self.jobs_executed = 0

    # -- legacy counter aliases (kept: tests and reports read them) --------

    @property
    def pool_fallbacks(self) -> int:
        return self.counters.pool_fallbacks

    @property
    def timeouts(self) -> int:
        return self.counters.timeouts

    @property
    def stalls(self) -> int:
        return self.counters.stalls

    @property
    def retries(self) -> int:
        return self.counters.retries

    # -- stats -------------------------------------------------------------

    @property
    def cache_corruption_events(self) -> int:
        return self.cache.corruption_events if self.cache is not None else 0

    def stats(self) -> Dict[str, object]:
        """Executor health counters, for reports and the CLI."""
        document: Dict[str, object] = {
            "backend": self.resolved_backend
            or self.backend
            or ("pool" if self.workers > 1 else "inline"),
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "cache_corruption_events": self.cache_corruption_events,
            "jobs_executed": self.jobs_executed,
        }
        document.update(self.counters.as_dict())
        return document

    # -- execution --------------------------------------------------------

    def map_stats(self, jobs: Sequence[SweepJob]) -> List[MachineStats]:
        """Execute all jobs; result ``i`` belongs to ``jobs[i]``."""
        results: List[Optional[MachineStats]] = [None] * len(jobs)
        pending: List[int] = []
        keys: List[Optional[str]] = [None] * len(jobs)
        if self.cache is not None:
            for index, job in enumerate(jobs):
                key = job_cache_key(job)
                keys[index] = key
                cached = self.cache.get(key)
                if cached is not None:
                    self.cache_hits += 1
                    results[index] = cached
                else:
                    self.cache_misses += 1
                    pending.append(index)
        else:
            pending = list(range(len(jobs)))
        if pending:
            job_ids: Optional[List[str]] = None
            if self.cache is not None:
                job_ids = [keys[i] for i in pending]  # type: ignore[misc]
            elif self._resolve_backend_name() == "workqueue":
                job_ids = [job_cache_key(jobs[i]) for i in pending]
            fresh = self.map(
                execute_job, [jobs[i] for i in pending], job_ids=job_ids
            )
            for index, stats in zip(pending, fresh):
                results[index] = stats
                key = keys[index]
                if self.cache is not None and key is not None:
                    self.cache.put(key, stats)
        return results  # type: ignore[return-value]

    def _resolve_backend_name(self, item_count: int = 2) -> str:
        if self.backend is not None:
            return self.backend
        if self.workers == 1 or item_count <= 1:
            return "inline"
        return "pool"

    def _backend_spec(self):
        from .backends import BackendSpec

        return BackendSpec(
            workers=self.workers,
            job_timeout_s=self.job_timeout_s,
            max_retries=self.max_retries,
            retry_backoff_s=self.retry_backoff_s,
            heartbeat_timeout_s=self.heartbeat_timeout_s,
            queue_dir=self.queue_dir,
            lease_timeout_s=self.lease_timeout_s,
            max_lease_failures=self.max_lease_failures,
            chaos_plan=self.chaos_plan,
            counters=self.counters,
        )

    def map(
        self,
        fn: Callable,
        items: Sequence[object],
        on_result: Optional[ResultCallback] = None,
        heartbeats: Optional[Sequence[Optional[str]]] = None,
        job_ids: Optional[Sequence[str]] = None,
    ) -> List[object]:
        """Hardened ordered map: ``results[i] = fn(items[i])``.

        ``fn`` must be a module-level callable and every item picklable
        when execution leaves this process.  ``on_result`` fires as
        each result lands, which lets callers journal progress for
        resumability.  ``heartbeats`` (optional, one path or None per
        item) names the heartbeat file each job updates while it runs;
        the pool watchdog only engages when ``heartbeat_timeout_s`` is
        set.  ``job_ids`` (optional, one stable key per item) keys the
        workqueue backend's idempotent result publication; other
        backends ignore it.
        """
        from .backends import make_backend

        items = list(items)
        results: List[object] = [None] * len(items)
        self.jobs_executed += len(items)
        if heartbeats is not None and len(heartbeats) != len(items):
            raise ValueError("heartbeats must align one-to-one with items")
        if job_ids is not None and len(job_ids) != len(items):
            raise ValueError("job_ids must align one-to-one with items")
        requested = self._resolve_backend_name(len(items))
        if requested == "inline":
            # The serial fast path: no backend object, no indirection —
            # bit-identical to the pre-backend executor.
            self.resolved_backend = "inline"
            for index, item in enumerate(items):
                results[index] = fn(item)
                if on_result is not None:
                    on_result(index, results[index])
            return results
        backend = make_backend(requested, self._backend_spec())
        self.resolved_backend = backend.name
        try:
            backend.run(
                fn,
                items,
                results,
                on_result=on_result,
                heartbeats=heartbeats,
                job_ids=job_ids,
            )
        finally:
            backend.close()
        return results
