"""Plain-text chart rendering for experiment results.

The paper's artifacts are bar charts (Figures 12, 14) and line plots
(Figures 13, 15-17).  ``repro-bench --chart`` renders both as
monospace ASCII so the shape of a result is visible directly in a
terminal, with no plotting dependencies.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from .report import ExperimentResult, Series

_BAR = "█"
_HALF = "▌"


def render_bars(
    result: ExperimentResult,
    width: int = 40,
    baseline: Optional[float] = 1.0,
) -> str:
    """Grouped horizontal bar chart: one group per label, one bar per series.

    ``baseline`` draws a reference tick (the paper's figures are
    normalized to 1.0); pass None to scale from zero only.
    """
    labels = result.labels()
    maximum = max(
        (value for series in result.series for value in series.points.values()),
        default=1.0,
    )
    if baseline is not None:
        maximum = max(maximum, baseline)
    if maximum <= 0:
        maximum = 1.0
    name_width = max((len(s.name) for s in result.series), default=4)

    lines: List[str] = [result.title, ""]
    for label in labels:
        lines.append("%s:" % label)
        for series in result.series:
            if label not in series.points:
                continue
            value = series.points[label]
            filled = value / maximum * width
            bar = _BAR * int(filled)
            if filled - int(filled) >= 0.5:
                bar += _HALF
            lines.append(
                "  %-*s %s %.3f" % (name_width, series.name, bar.ljust(width), value)
            )
        if baseline is not None:
            tick = int(baseline / maximum * width)
            ruler = [" "] * (width + name_width + 3)
            if 0 <= tick + name_width + 3 < len(ruler):
                ruler[tick + name_width + 3] = "|"
            lines.append("".join(ruler) + " <- %.1f" % baseline)
        lines.append("")
    return "\n".join(lines).rstrip()


def render_lines(
    result: ExperimentResult,
    height: int = 12,
    width_per_point: int = 8,
) -> str:
    """Multi-series line plot using one letter per series.

    The x axis is the label sequence; each series is plotted with a
    distinct marker, with a legend underneath.
    """
    labels = result.labels()
    if not labels:
        return result.title
    values = [
        value for series in result.series for value in series.points.values()
    ]
    low, high = min(values), max(values)
    if high == low:
        high = low + 1.0
    markers = "ABCDEFGHIJKLMNOPQRSTUVWXYZ"
    columns = len(labels)
    grid = [[" "] * (columns * width_per_point) for _ in range(height)]

    for series_index, series in enumerate(result.series):
        marker = markers[series_index % len(markers)]
        # Offset each series within its column so coinciding values
        # stay individually visible.
        offset = series_index % max(1, width_per_point - 1)
        for column, label in enumerate(labels):
            if label not in series.points:
                continue
            value = series.points[label]
            row = int((high - value) / (high - low) * (height - 1))
            grid[row][column * width_per_point + offset] = marker

    lines: List[str] = [result.title, ""]
    for row_index, row in enumerate(grid):
        level = high - (high - low) * row_index / (height - 1)
        lines.append("%8.3f |%s" % (level, "".join(row)))
    axis = "-" * (columns * width_per_point)
    lines.append("         +%s" % axis)
    label_row = []
    for label in labels:
        label_row.append(label[: width_per_point - 1].ljust(width_per_point))
    lines.append("          %s" % "".join(label_row))
    lines.append("")
    for series_index, series in enumerate(result.series):
        marker = markers[series_index % len(markers)]
        lines.append("  %s = %s" % (marker, series.name))
    return "\n".join(lines)


#: Which renderer suits each experiment (bars for normalized columns,
#: lines for sweeps).
CHART_STYLE: Dict[str, str] = {
    "fig12": "bars",
    "fig13": "lines",
    "fig14": "bars",
    "fig15": "lines",
    "fig16": "lines",
    "fig17": "lines",
    "table1": "bars",
    "table2": "bars",
    "integrity": "bars",
}


def render_chart(result: ExperimentResult) -> str:
    """Pick the appropriate chart style for an experiment result."""
    style = CHART_STYLE.get(result.experiment, "bars")
    if style == "lines":
        return render_lines(result)
    return render_bars(result)
