"""Rendering of experiment results in the paper's reporting style."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence

from ..utils.tables import format_table


@dataclass
class Series:
    """One plotted line/bar group: label -> value."""

    name: str
    points: Dict[str, float] = field(default_factory=dict)

    def add(self, label: str, value: float) -> None:
        self.points[label] = value


@dataclass
class ExperimentResult:
    """A finished experiment: metadata plus its series."""

    experiment: str
    title: str
    series: List[Series]
    notes: List[str] = field(default_factory=list)
    #: Expectations from the paper, as human-readable claim -> holds?
    claims: Dict[str, bool] = field(default_factory=dict)

    def series_by_name(self, name: str) -> Series:
        for series in self.series:
            if series.name == name:
                return series
        raise KeyError(name)

    def labels(self) -> List[str]:
        labels: List[str] = []
        for series in self.series:
            for label in series.points:
                if label not in labels:
                    labels.append(label)
        return labels

    def as_dict(self) -> Dict[str, object]:
        """JSON-ready form of the result (for --json / archiving)."""
        return {
            "experiment": self.experiment,
            "title": self.title,
            "series": {s.name: dict(s.points) for s in self.series},
            "notes": list(self.notes),
            "claims": dict(self.claims),
        }

    def render(self) -> str:
        """Monospace table: one row per series, one column per label."""
        labels = self.labels()
        headers = [self.experiment] + labels
        rows = []
        for series in self.series:
            rows.append(
                [series.name]
                + [
                    ("%.3f" % series.points[label]) if label in series.points else "-"
                    for label in labels
                ]
            )
        text = format_table(headers, rows, title=self.title)
        if self.notes:
            text += "\n" + "\n".join("  note: %s" % n for n in self.notes)
        if self.claims:
            text += "\n" + "\n".join(
                "  claim [%s]: %s" % ("ok" if ok else "MISS", claim)
                for claim, ok in self.claims.items()
            )
        return text
