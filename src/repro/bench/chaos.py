"""Chaos harness: seeded worker faults + the exactly-once invariant.

The work-queue backend claims the same discipline for the *harness*
that selective counter-atomicity claims for the simulated memory
controller: no write (job result) is silently lost or duplicated
across a crash.  This module is how that claim is tested rather than
asserted — it injects seeded faults into workqueue workers and checks
the observable outcome against a serial oracle run.

Fault taxonomy (one latch per (job, fault): every injected fault fires
exactly once, so chaos runs always terminate):

``kill``
    The worker ``_exit``\\ s mid-job, lease held, nothing published —
    a crashed worker.  Recovery: lease expiry -> reclamation -> re-run.
``stall``
    The worker goes silent (stops heartbeating) while holding the
    lease, then abandons the job — a hung worker.  Same recovery path.
``corrupt``
    The worker publishes a result whose payload no longer matches its
    checksum — a lying worker.  Recovery: frame verification ->
    quarantine -> re-run.
``duplicate``
    The worker publishes its result, then hands the job back as if it
    had never run it — a duplicated claim.  The second execution's
    publication must be dropped as a duplicate, never double-counted.

The invariant checked by :func:`run_chaos_campaign`: a seeded campaign
run on the workqueue backend under chaos completes with triage counts
*bit-identical* to the same campaign run serially, with zero lost and
zero duplicated job results in the executor stats.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

__all__ = [
    "FAULT_KINDS",
    "ChaosPlan",
    "run_chaos_campaign",
    "render_chaos_report",
]

#: Every fault the harness knows how to inject, in application order.
FAULT_KINDS: Tuple[str, ...] = ("kill", "stall", "corrupt", "duplicate")


@dataclass(frozen=True)
class ChaosPlan:
    """A seeded, reproducible schedule of worker faults.

    ``faults_by_job`` maps a job *index* (position in the submitted
    batch) to the fault kinds injected into that job's claims.  The
    workqueue backend translates indices to job ids at dispatch time,
    and workers latch each (job, fault) pair exactly once.
    """

    seed: int
    faults_by_job: Mapping[int, Tuple[str, ...]] = field(default_factory=dict)

    @classmethod
    def generate(
        cls,
        seed: int,
        n_jobs: int,
        kinds: Sequence[str] = FAULT_KINDS,
        intensity: int = 1,
    ) -> "ChaosPlan":
        """Pick ``intensity`` victim jobs per fault kind, seeded.

        The same (seed, n_jobs, kinds, intensity) always yields the
        same plan, so a chaos failure is replayable from its seed.
        """
        for kind in kinds:
            if kind not in FAULT_KINDS:
                raise ValueError(
                    "unknown chaos fault %r; known: %s" % (kind, ", ".join(FAULT_KINDS))
                )
        rng = random.Random(seed)
        plan: Dict[int, List[str]] = {}
        if n_jobs > 0:
            for kind in kinds:
                for _ in range(max(0, int(intensity))):
                    victim = rng.randrange(n_jobs)
                    faults = plan.setdefault(victim, [])
                    if kind not in faults:
                        faults.append(kind)
        return cls(
            seed=seed,
            faults_by_job={index: tuple(faults) for index, faults in plan.items()},
        )

    def injected_counts(self) -> Dict[str, int]:
        counts = {kind: 0 for kind in FAULT_KINDS}
        for faults in self.faults_by_job.values():
            for fault in faults:
                counts[fault] += 1
        return counts

    def as_dict(self) -> Dict[str, object]:
        return {
            "seed": self.seed,
            "faults_by_job": {
                str(index): list(faults)
                for index, faults in sorted(self.faults_by_job.items())
            },
        }

    @classmethod
    def from_dict(cls, document: Mapping[str, Any]) -> "ChaosPlan":
        raw = document.get("faults_by_job", {}) or {}
        return cls(
            seed=int(document.get("seed", 0)),
            faults_by_job={
                int(index): tuple(faults) for index, faults in dict(raw).items()
            },
        )


def run_chaos_campaign(
    spec,
    workers: int = 2,
    queue_dir: Optional[str] = None,
    lease_timeout_s: float = 2.0,
    chaos_seed: int = 1234,
    kinds: Sequence[str] = FAULT_KINDS,
    intensity: int = 1,
) -> Dict[str, Any]:
    """Run one campaign twice — serial oracle vs workqueue under chaos.

    Returns a JSON-ready verdict document.  ``ok`` is True iff

    * per-cell triage outcomes and campaign totals are bit-identical
      between the two runs,
    * every job's result was published exactly once (no losses, every
      duplicate publication dropped), and
    * no job had to be quarantined as poison (the injected faults are
      all recoverable, so poisoning would mean the protocol burned
      lease budget it should not have).
    """
    from ..crash.campaign import CampaignRunner, CampaignSpec  # noqa: F401
    from .parallel import SweepExecutor

    jobs = spec.jobs()
    plan = ChaosPlan.generate(
        chaos_seed, len(jobs), kinds=kinds, intensity=intensity
    )

    oracle_runner = CampaignRunner(spec, executor=SweepExecutor())
    oracle = oracle_runner.run()

    executor = SweepExecutor(
        workers=workers,
        backend="workqueue",
        queue_dir=queue_dir,
        lease_timeout_s=lease_timeout_s,
        # Injected faults burn lease budget by design; give the queue
        # enough headroom that no chaos victim is poisoned.
        max_lease_failures=len(tuple(kinds)) + 2,
        chaos_plan=plan,
    )
    chaos_runner = CampaignRunner(spec, executor=executor)
    chaos = chaos_runner.run()

    oracle_doc: Dict[str, Any] = oracle.as_dict()
    chaos_doc: Dict[str, Any] = chaos.as_dict()
    oracle_cells = [result["outcomes"] for result in oracle_doc["results"]]
    chaos_cells = [result["outcomes"] for result in chaos_doc["results"]]
    stats: Dict[str, Any] = executor.stats()

    problems: List[str] = []
    if chaos_doc["totals"] != oracle_doc["totals"]:
        problems.append(
            "triage totals diverged: chaos %r vs oracle %r"
            % (chaos_doc["totals"], oracle_doc["totals"])
        )
    if chaos_cells != oracle_cells:
        problems.append("per-cell triage outcomes diverged from the serial oracle")
    published = int(stats["results_published"]) + int(stats["results_reused"])
    if published != len(jobs):
        problems.append(
            "exactly-once violated: %d result(s) published for %d job(s)"
            % (published, len(jobs))
        )
    if int(stats["jobs_lost"]):
        problems.append("%d job result(s) lost" % stats["jobs_lost"])
    if int(stats["poison_jobs"]):
        problems.append(
            "%d job(s) poisoned under recoverable chaos" % stats["poison_jobs"]
        )

    return {
        "ok": not problems,
        "problems": problems,
        "jobs": len(jobs),
        "workers": workers,
        "lease_timeout_s": lease_timeout_s,
        "plan": plan.as_dict(),
        "injected": plan.injected_counts(),
        "oracle_totals": oracle_doc["totals"],
        "chaos_totals": chaos_doc["totals"],
        "executor": stats,
    }


def render_chaos_report(document: Mapping[str, Any]) -> str:
    """Human-readable verdict for the CLI and CI logs."""
    stats = document["executor"]
    injected = document["injected"]
    lines = [
        "chaos campaign — %d job(s), %d worker(s), lease timeout %.1fs"
        % (document["jobs"], document["workers"], document["lease_timeout_s"]),
        "injected: "
        + ", ".join("%d %s" % (injected[kind], kind) for kind in FAULT_KINDS),
        "observed: %d claim(s), %d expired lease(s), %d reclaimed, "
        "%d duplicate publication(s) dropped, %d corrupt result(s) "
        "quarantined, %d worker respawn(s)"
        % (
            stats["leases_claimed"],
            stats["leases_expired"],
            stats["leases_reclaimed"],
            stats["duplicate_results"],
            stats["corrupt_results"],
            stats["worker_respawns"],
        ),
        "published exactly once: %d/%d result(s), %d lost, %d poisoned"
        % (
            int(stats["results_published"]) + int(stats["results_reused"]),
            document["jobs"],
            stats["jobs_lost"],
            stats["poison_jobs"],
        ),
    ]
    totals = document["chaos_totals"]
    lines.append(
        "triage totals: "
        + ", ".join("%d %s" % (totals[name], name) for name in sorted(totals))
    )
    if document["ok"]:
        lines.append(
            "VERDICT: exactly-once holds; triage bit-identical to the serial oracle"
        )
    else:
        lines.append("VERDICT: FAILED")
        for problem in document["problems"]:
            lines.append("  - %s" % problem)
    return "\n".join(lines)
