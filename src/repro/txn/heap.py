"""Persistent heap and per-core memory layout.

The evaluated workloads place their structures in the NVM data region.
To keep multicore runs contention-comparable with the paper (each
thread performs the same operations on its own structure), the data
region is carved into per-core arenas; within an arena, a bump
allocator hands out line-aligned blocks and the transaction mechanisms
reserve their fixed metadata up front (transaction record, log area).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..config import CACHE_LINE_SIZE, SystemConfig
from ..errors import HeapError
from ..nvm.address import AddressMap
from ..utils.bitops import align_up


class PersistentHeap:
    """A line-aligned bump allocator over one address range."""

    def __init__(self, base: int, limit: int, name: str = "heap") -> None:
        if base % CACHE_LINE_SIZE != 0:
            raise HeapError("heap base must be line-aligned")
        if limit <= base:
            raise HeapError("heap limit must exceed base")
        self.base = base
        self.limit = limit
        self.name = name
        self._cursor = base
        self.allocations: Dict[int, int] = {}

    def alloc(self, size: int, align: int = CACHE_LINE_SIZE) -> int:
        """Allocate ``size`` bytes aligned to ``align``."""
        if size <= 0:
            raise HeapError("allocation size must be positive")
        if align <= 0 or align % 8 != 0:
            raise HeapError("alignment must be a positive multiple of 8")
        address = align_up(self._cursor, align)
        end = address + size
        if end > self.limit:
            raise HeapError(
                "%s exhausted: need %d bytes at 0x%x, limit 0x%x"
                % (self.name, size, address, self.limit)
            )
        self._cursor = end
        self.allocations[address] = size
        return address

    def alloc_lines(self, num_lines: int) -> int:
        """Allocate whole cache lines."""
        return self.alloc(num_lines * CACHE_LINE_SIZE, align=CACHE_LINE_SIZE)

    @property
    def used_bytes(self) -> int:
        return self._cursor - self.base

    @property
    def free_bytes(self) -> int:
        return self.limit - self._cursor


@dataclass
class CoreArena:
    """The per-core slice of the data region."""

    core_id: int
    heap: PersistentHeap
    #: One line holding the transaction record (valid flag and seq).
    txn_record: int
    #: Base of the log area (undo/redo entries).
    log_base: int
    #: Number of log entries available.
    log_capacity: int


#: Bytes per undo/redo log entry: one header line + one payload line.
LOG_ENTRY_BYTES = 2 * CACHE_LINE_SIZE


@dataclass
class MemoryLayout:
    """Whole-machine data-region layout (per-core arenas)."""

    arenas: List[CoreArena]
    arena_bytes: int

    @classmethod
    def build(
        cls,
        config: SystemConfig,
        log_capacity: int = 64,
        arena_bytes: Optional[int] = None,
    ) -> "MemoryLayout":
        """Carve per-core arenas out of the data region.

        ``log_capacity`` bounds the number of lines one transaction can
        touch (each touched line consumes one log entry).
        """
        address_map = AddressMap(config.memory_size_bytes, config.nvm.num_banks)
        data_bytes = address_map.counter_region_base
        cores = config.num_cores
        if arena_bytes is None:
            arena_bytes = data_bytes // cores
        arena_bytes -= arena_bytes % CACHE_LINE_SIZE
        metadata_bytes = CACHE_LINE_SIZE + log_capacity * LOG_ENTRY_BYTES
        if arena_bytes <= metadata_bytes + CACHE_LINE_SIZE:
            raise HeapError("arena too small for transaction metadata")
        if arena_bytes * cores > data_bytes:
            raise HeapError("arenas exceed the data region")
        arenas: List[CoreArena] = []
        for core in range(cores):
            base = core * arena_bytes
            heap = PersistentHeap(base, base + arena_bytes, name="arena-core%d" % core)
            txn_record = heap.alloc_lines(1)
            log_base = heap.alloc(log_capacity * LOG_ENTRY_BYTES)
            arenas.append(
                CoreArena(
                    core_id=core,
                    heap=heap,
                    txn_record=txn_record,
                    log_base=log_base,
                    log_capacity=log_capacity,
                )
            )
        return cls(arenas=arenas, arena_bytes=arena_bytes)

    def arena(self, core_id: int) -> CoreArena:
        try:
            return self.arenas[core_id]
        except IndexError:
            raise HeapError("no arena for core %d" % core_id) from None
