"""Shadow-copy transactions with selective counter-atomicity.

Shadow copying keeps two complete copies of a region (A and B) plus a
``CounterAtomic`` *active* selector.  A transaction writes the new
version into the inactive copy (relaxable writes), flushes it, ccwb's
its counters, barriers, then flips the selector — the single write that
changes which copy recovery uses, hence the single counter-atomic
write.  Recovery is trivial: read the selector, use that copy.

This is the mechanism the paper's linked-list example (Figure 4)
reduces to when the "structure" is the head pointer.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from ..config import CACHE_LINE_SIZE
from ..core.primitives import CounterAtomic, PersistentVar, Plain
from ..crash.recovery import RecoveredMemory
from ..crash.session import RecoveryContext
from ..errors import TransactionError
from ..sim.trace import TraceBuilder
from .heap import CoreArena

_SELECTOR_OFFSET = 0
_SEQ_OFFSET = 8


@dataclass
class ShadowRegion:
    """Two copies of one region plus the selector line."""

    selector_line: int
    copy_a: int
    copy_b: int
    region_bytes: int

    def copy_base(self, which: int) -> int:
        return self.copy_a if which == 0 else self.copy_b


class ShadowTransactions:
    """Generates shadow-copy transactions into a trace builder."""

    def __init__(
        self, builder: TraceBuilder, arena: CoreArena, region_bytes: int
    ) -> None:
        if region_bytes % CACHE_LINE_SIZE != 0:
            raise TransactionError("shadow region must be line-granular")
        self.builder = builder
        self.arena = arena
        self.region = ShadowRegion(
            selector_line=arena.txn_record,
            copy_a=arena.heap.alloc(region_bytes),
            copy_b=arena.heap.alloc(region_bytes),
            region_bytes=region_bytes,
        )
        self.selector_var: PersistentVar = CounterAtomic(
            self.region.selector_line + _SELECTOR_OFFSET, name="shadow.active"
        )
        self.seq_var: PersistentVar = Plain(
            self.region.selector_line + _SEQ_OFFSET, name="shadow.seq"
        )
        self._active = 0
        self._seq = 0
        self.committed = 0

    @property
    def active_copy(self) -> int:
        """Base address of the currently active copy."""
        return self.region.copy_base(self._active)

    @property
    def inactive_copy(self) -> int:
        return self.region.copy_base(1 - self._active)

    def commit_new_version(
        self, line_payloads: Sequence[Tuple[int, bytes]]
    ) -> None:
        """Write a new version and flip the selector.

        ``line_payloads``: (line offset within the region, 64 B payload)
        for every line that differs from the active copy; unchanged
        lines must already be equal in both copies (the caller keeps
        the copies converged, e.g. by writing every line or by running
        pairs of transactions).
        """
        builder = self.builder
        self._seq += 1
        builder.txn_begin("shadow#%d" % self._seq)
        builder.label("shadow-write")
        target_base = self.inactive_copy
        touched: List[int] = []
        for offset, payload in line_payloads:
            if offset % CACHE_LINE_SIZE != 0 or offset >= self.region.region_bytes:
                raise TransactionError("bad shadow line offset %d" % offset)
            if len(payload) != CACHE_LINE_SIZE:
                raise TransactionError("shadow works on whole 64 B lines")
            address = target_base + offset
            builder.store(address, payload)
            builder.clwb(address)
            touched.append(address)
        for address in touched:
            builder.ccwb(address)
        builder.persist_barrier()
        builder.label("shadow-flip")
        builder.store_var(self.seq_var, self._seq)
        builder.store_var(self.selector_var, 1 - self._active)
        builder.clwb(self.region.selector_line)
        builder.persist_barrier()
        self._active = 1 - self._active
        self.committed += 1
        builder.txn_end("shadow#%d" % self._seq)


def recover_shadow(
    recovered: RecoveredMemory,
    region: ShadowRegion,
    context: Optional[RecoveryContext] = None,
) -> Tuple[int, int]:
    """Post-crash shadow recovery.

    Returns ``(active_index, active_base)``.  The selector line is
    counter-atomic, so the strict read must succeed; the active copy's
    lines were ccwb'd + barriered before every flip, so they are
    decryptable too.

    Shadow recovery is read-only — one step, trivially idempotent: a
    nested crash here loses nothing and the next boot re-reads the
    same selector.
    """
    context = context or RecoveryContext()
    context.enter_phase("txn-replay")
    selector = recovered.read_u64(region.selector_line + _SELECTOR_OFFSET)
    if selector not in (0, 1):
        raise TransactionError("corrupt shadow selector: %d" % selector)
    context.step()
    return int(selector), region.copy_base(int(selector))
