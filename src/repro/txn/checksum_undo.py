"""Checksummed undo logging: one counter-atomic write per transaction.

The standard undo protocol (:mod:`repro.txn.undolog`) needs *two*
counter-atomic record writes per transaction: an **arm** (`valid = 1`)
after the log is sealed and a **commit** (`valid = 0`) after the
mutation.  The arm exists only so recovery can tell a sealed log from
a half-written one.

This variant makes log entries *self-validating* instead: every entry
carries a checksum binding its header and payload.  The record then
needs only a monotonically increasing ``committed_seq``, written
counter-atomically once per transaction at commit:

```
prepare:  write entries with seq = committed_seq + 1 and checksums
          (relaxed); clwb; ccwb; barrier        ── log sealed
mutate:   write targets in place (relaxed); clwb; ccwb; barrier
commit:   committed_seq += 1 (CounterAtomic); clwb; barrier
```

Recovery reads ``committed_seq = k`` and scans the log for entries
with ``seq == k + 1``:

* none found ⇒ the crash predates the prepare: nothing to do;
* entries with valid checksums ⇒ an in-flight transaction: restore
  those pre-images.  If the crash hit mid-prepare, only a *subset* of
  entries validate — restoring them is still correct because the
  mutation (which starts only after the prepare barrier) cannot have
  begun, so each restore rewrites a target with the value it already
  holds.
* entries with torn checksums are skipped (same argument).

Compared to the standard protocol this saves one barrier and one
counter-atomic pair per transaction, at the cost of a log scan during
recovery and checksum computation on the prepare path — the trade the
ablation bench quantifies.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..config import CACHE_LINE_SIZE
from ..core.primitives import CounterAtomic, PersistentVar, Plain
from ..crash.recovery import RecoveredMemory
from ..crash.session import RecoveryContext
from ..errors import TransactionError
from ..sim.trace import TraceBuilder
from ..utils.bitops import u64_to_bytes
from .heap import LOG_ENTRY_BYTES, CoreArena
from .undolog import PREPARE_COMPUTE_NS, MUTATE_COMPUTE_NS, STAGE_COMPUTE_NS

LOG_MAGIC = 0x434B53554E444F21  # "CKSUNDO!"

_COMMITTED_SEQ_OFFSET = 0

#: Extra modeled work per entry for computing the checksum.
CHECKSUM_COMPUTE_NS = 6.0


def entry_checksum(target: int, seq: int, payload: bytes) -> int:
    """FNV-1a over the fields a torn write could shear apart."""
    state = 0xCBF29CE484222325
    prime = 0x100000001B3
    mask = (1 << 64) - 1
    for chunk in (u64_to_bytes(target), u64_to_bytes(seq), payload):
        for byte in chunk:
            state = ((state ^ byte) * prime) & mask
    return state


@dataclass
class _OpenTransaction:
    seq: int
    writes: List[Tuple[int, bytes, bytes]]


class ChecksummedUndoLog:
    """Undo transactions with self-validating entries (one CA write)."""

    def __init__(self, builder: TraceBuilder, arena: CoreArena) -> None:
        self.builder = builder
        self.arena = arena
        self.committed_seq_var: PersistentVar = CounterAtomic(
            arena.txn_record + _COMMITTED_SEQ_OFFSET, name="txn.committed_seq"
        )
        self._seq = 0
        self._open: Optional[_OpenTransaction] = None
        self._log_cursor = 0
        self._txn_first_entry = 0
        self.committed = 0

    # -- transaction construction -----------------------------------------

    def begin(self) -> None:
        if self._open is not None:
            raise TransactionError("transaction already open (no nesting)")
        self._seq += 1
        self._open = _OpenTransaction(seq=self._seq, writes=[])
        self._txn_first_entry = self._log_cursor
        self.builder.txn_begin("cksum-undo#%d" % self._seq)

    def write_line(
        self, line_address: int, old_payload: bytes, new_payload: bytes
    ) -> None:
        txn = self._require_open()
        if len(old_payload) != CACHE_LINE_SIZE or len(new_payload) != CACHE_LINE_SIZE:
            raise TransactionError("undo log works on whole 64 B lines")
        if line_address % CACHE_LINE_SIZE != 0:
            raise TransactionError("target must be line-aligned")
        if len(txn.writes) >= self.arena.log_capacity:
            raise TransactionError(
                "transaction exceeds log capacity (%d lines)" % self.arena.log_capacity
            )
        txn.writes.append((line_address, bytes(old_payload), bytes(new_payload)))

    def commit(self) -> None:
        txn = self._require_open()
        builder = self.builder
        if txn.writes:
            self._emit_prepare(txn)
            self._emit_mutate(txn)
            self._emit_commit(txn)
        self._open = None
        self.committed += 1
        builder.txn_end("cksum-undo#%d" % txn.seq)

    # -- stages --------------------------------------------------------------

    def _entry_address(self, index: int) -> int:
        return self.arena.log_base + (index % self.arena.log_capacity) * LOG_ENTRY_BYTES

    def _emit_prepare(self, txn: _OpenTransaction) -> None:
        builder = self.builder
        builder.label("prepare")
        for offset, (target, old, _new) in enumerate(txn.writes):
            header = self._entry_address(self._txn_first_entry + offset)
            payload = header + CACHE_LINE_SIZE
            checksum = entry_checksum(target, txn.seq, old)
            header_bytes = (
                u64_to_bytes(LOG_MAGIC)
                + u64_to_bytes(target)
                + u64_to_bytes(txn.seq)
                + u64_to_bytes(checksum)
                + bytes(CACHE_LINE_SIZE - 32)
            )
            builder.compute(PREPARE_COMPUTE_NS + CHECKSUM_COMPUTE_NS)
            builder.store(header, header_bytes)
            builder.store(payload, old)
            builder.clwb(header)
            builder.clwb(payload)
            builder.ccwb(header)
            builder.ccwb(payload)
        builder.compute(STAGE_COMPUTE_NS)
        builder.persist_barrier()
        # No arm write: entries validate themselves via checksum + seq.

    def _emit_mutate(self, txn: _OpenTransaction) -> None:
        builder = self.builder
        builder.label("mutate")
        for target, _old, new in txn.writes:
            builder.compute(MUTATE_COMPUTE_NS)
            builder.store(target, new)
            builder.clwb(target)
        for target, _old, _new in txn.writes:
            builder.ccwb(target)
        builder.compute(STAGE_COMPUTE_NS)
        builder.persist_barrier()

    def _emit_commit(self, txn: _OpenTransaction) -> None:
        builder = self.builder
        builder.label("commit")
        builder.store_var(self.committed_seq_var, txn.seq)
        builder.clwb(self.arena.txn_record)
        builder.persist_barrier()
        self._log_cursor = (self._log_cursor + len(txn.writes)) % self.arena.log_capacity

    def _require_open(self) -> _OpenTransaction:
        if self._open is None:
            raise TransactionError("no open transaction")
        return self._open

    def run(self, writes: Sequence[Tuple[int, bytes, bytes]]) -> None:
        self.begin()
        for line_address, old, new in writes:
            self.write_line(line_address, old, new)
        self.commit()


def recover_checksummed_undo(
    recovered: RecoveredMemory,
    arena: CoreArena,
    context: Optional[RecoveryContext] = None,
) -> List[int]:
    """Post-crash recovery: restore the in-flight transaction, if any.

    Scans the log for entries of sequence ``committed_seq + 1`` with
    valid checksums and restores their pre-images.  Torn or
    undecryptable entries are skipped — by the prepare-barrier
    argument their targets cannot have been mutated.

    Each restore is one :meth:`RecoveryContext.step`.  The procedure
    never writes the record (``committed_seq`` is untouched by a crash
    mid-scan), so an interrupted scan re-runs in full on the next boot
    and every restore rewrites the same pre-image — idempotent.
    """
    from ..errors import DecryptionFailure

    context = context or RecoveryContext()
    context.enter_phase("txn-replay")
    committed_seq = recovered.read_u64(arena.txn_record + _COMMITTED_SEQ_OFFSET)
    in_flight = committed_seq + 1
    restored: List[int] = []
    for slot in range(arena.log_capacity):
        header = arena.log_base + slot * LOG_ENTRY_BYTES
        try:
            if recovered.read_u64(header) != LOG_MAGIC:
                continue
            if recovered.read_u64(header + 16) != in_flight:
                continue
            target = recovered.read_u64(header + 8)
            checksum = recovered.read_u64(header + 24)
            pre_image = recovered.read(header + CACHE_LINE_SIZE, CACHE_LINE_SIZE)
        except DecryptionFailure:
            # A torn/unflushed entry: its transaction never finished
            # prepare, so its target is untouched.  Skip it.
            continue
        if entry_checksum(target, in_flight, pre_image) != checksum:
            continue
        context.write_line(recovered, target, pre_image)
        restored.append(target)
        context.step()
    context.step()
    return restored
