"""Transactional crash-consistency mechanisms on encrypted NVMM.

Implements the versioning mechanisms the paper builds on — undo logging
(its running example, Figure 9), redo logging, and shadow copying — as
*trace generators*: each emits the stores, ``clwb``/``sfence`` ordering
and the two SCA primitives (``CounterAtomic`` commit records,
``counter_cache_writeback()`` window flushes) into a
:class:`repro.sim.trace.TraceBuilder`, plus the matching post-crash
recovery procedures that run on a decrypted crash image.
"""

from .checksum_undo import ChecksummedUndoLog, recover_checksummed_undo
from .heap import CoreArena, MemoryLayout, PersistentHeap
from .undolog import UndoLogTransactions, recover_undo_log
from .redolog import RedoLogTransactions, recover_redo_log
from .shadow import ShadowTransactions, recover_shadow
from .manager import TransactionMechanism, make_transactions

__all__ = [
    "ChecksummedUndoLog",
    "recover_checksummed_undo",
    "CoreArena",
    "MemoryLayout",
    "PersistentHeap",
    "UndoLogTransactions",
    "recover_undo_log",
    "RedoLogTransactions",
    "recover_redo_log",
    "ShadowTransactions",
    "recover_shadow",
    "TransactionMechanism",
    "make_transactions",
]
