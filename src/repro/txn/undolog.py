"""Undo-logging transactions with selective counter-atomicity.

This is the paper's running example (Figure 9 / Table 1), implemented
with the exact stage structure and primitive placement:

* **prepare** — back up every target line into the log (relaxable
  writes), ``clwb`` the log lines, ``counter_cache_writeback()`` over
  the log, ``persist_barrier()``; then *arm* the transaction record
  with a ``CounterAtomic`` store of ``valid = 1`` and barrier.
* **mutate** — update the data lines in place (relaxable), ``clwb``,
  ``counter_cache_writeback()`` over the data, ``persist_barrier()``.
* **commit** — ``CounterAtomic`` store of ``valid = 0`` + barrier.

The valid flag is the only write whose counter must persist atomically
with its data: it decides which version recovery restores.  Everything
else is covered by a ccwb + barrier *before* the next flip of the
valid flag, which is what makes the relaxation safe (Section 4.2).

Log layout (per arena)::

    txn_record line : [ valid u64 | seq u64 | nentries u64 | pad ]
    entry i         : header line [ magic u64 | target u64 | seq u64 | pad ]
                      payload line [ 64 B pre-image of the target line ]
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..config import CACHE_LINE_SIZE
from ..core.primitives import CounterAtomic, PersistentVar, Plain
from ..crash.recovery import RecoveredMemory
from ..crash.session import RecoveryContext
from ..errors import TransactionError
from ..sim.trace import TraceBuilder
from ..utils.bitops import u64_to_bytes
from .heap import LOG_ENTRY_BYTES, CoreArena

#: Marks an initialized log entry header.
LOG_MAGIC = 0x554E444F4C4F4721  # "UNDOLOG!"

_VALID_OFFSET = 0
_SEQ_OFFSET = 8
_NENTRIES_OFFSET = 16
_FIRST_ENTRY_OFFSET = 24

#: Modeled non-memory work (address computation, loop and logging
#: bookkeeping, 64 B copies done as eight scalar stores) per log entry
#: and per in-place line update.  The gem5 runs these replace execute
#: real instruction streams; these constants keep the core from
#: emitting writes unrealistically faster than a 4 GHz OoO core could.
PREPARE_COMPUTE_NS = 70.0
MUTATE_COMPUTE_NS = 45.0
STAGE_COMPUTE_NS = 25.0


@dataclass
class _OpenTransaction:
    seq: int
    writes: List[Tuple[int, bytes, bytes]]  # (line address, old, new)
    counter_atomic_targets: Dict[int, bool]


class UndoLogTransactions:
    """Generates undo-logged transactions into a trace builder."""

    def __init__(self, builder: TraceBuilder, arena: CoreArena) -> None:
        self.builder = builder
        self.arena = arena
        self.valid_var: PersistentVar = CounterAtomic(
            arena.txn_record + _VALID_OFFSET, name="txn.valid"
        )
        self.seq_var: PersistentVar = Plain(arena.txn_record + _SEQ_OFFSET, name="txn.seq")
        self.nentries_var: PersistentVar = Plain(
            arena.txn_record + _NENTRIES_OFFSET, name="txn.nentries"
        )
        self._seq = 0
        self._open: Optional[_OpenTransaction] = None
        self.committed = 0
        #: Circular-log cursor: each transaction appends fresh entries
        #: and wraps, as real undo logs do; reusing entry 0 every
        #: transaction would fabricate hot lines the write queue then
        #: coalesces unrealistically well.
        self._log_cursor = 0
        self._txn_first_entry = 0

    # -- transaction construction ------------------------------------------

    def begin(self) -> None:
        if self._open is not None:
            raise TransactionError("transaction already open (no nesting)")
        self._seq += 1
        self._open = _OpenTransaction(
            seq=self._seq, writes=[], counter_atomic_targets={}
        )
        self._txn_first_entry = self._log_cursor
        self.builder.txn_begin("undo#%d" % self._seq)

    def write_line(
        self,
        line_address: int,
        old_payload: bytes,
        new_payload: bytes,
        counter_atomic: bool = False,
    ) -> None:
        """Declare a full-line update inside the open transaction.

        ``old_payload`` is the pre-image (the workload's model knows
        it); it lands in the log.  ``counter_atomic`` marks targets the
        workload wants paired even during mutate (rarely needed; the
        commit record suffices for this protocol).
        """
        txn = self._require_open()
        if len(old_payload) != CACHE_LINE_SIZE or len(new_payload) != CACHE_LINE_SIZE:
            raise TransactionError("undo log works on whole 64 B lines")
        if line_address % CACHE_LINE_SIZE != 0:
            raise TransactionError("target must be line-aligned")
        if len(txn.writes) >= self.arena.log_capacity:
            raise TransactionError(
                "transaction exceeds log capacity (%d lines)" % self.arena.log_capacity
            )
        txn.writes.append((line_address, bytes(old_payload), bytes(new_payload)))
        txn.counter_atomic_targets[line_address] = counter_atomic

    def commit(self) -> None:
        """Emit the full three-stage protocol for the open transaction."""
        txn = self._require_open()
        builder = self.builder
        if txn.writes:
            self._emit_prepare(txn)
            self._emit_mutate(txn)
            self._emit_commit(txn)
        self._open = None
        self.committed += 1
        builder.txn_end("undo#%d" % txn.seq)

    # -- stages ---------------------------------------------------------------

    def _entry_address(self, index: int) -> int:
        return self.arena.log_base + (index % self.arena.log_capacity) * LOG_ENTRY_BYTES

    def _emit_prepare(self, txn: _OpenTransaction) -> None:
        builder = self.builder
        builder.label("prepare")
        for offset, (target, old, _new) in enumerate(txn.writes):
            header = self._entry_address(self._txn_first_entry + offset)
            payload = header + CACHE_LINE_SIZE
            header_bytes = (
                u64_to_bytes(LOG_MAGIC)
                + u64_to_bytes(target)
                + u64_to_bytes(txn.seq)
                + bytes(CACHE_LINE_SIZE - 24)
            )
            builder.compute(PREPARE_COMPUTE_NS)
            builder.store(header, header_bytes)
            builder.store(payload, old)
            builder.clwb(header)
            builder.clwb(payload)
        for offset in range(len(txn.writes)):
            # Flush both lines of the entry: a 128 B entry can straddle
            # a counter-group boundary, in which case the two lines'
            # counters live in different counter lines.
            header = self._entry_address(self._txn_first_entry + offset)
            builder.ccwb(header)
            builder.ccwb(header + CACHE_LINE_SIZE)
        builder.compute(STAGE_COMPUTE_NS)
        builder.persist_barrier()
        # Arm: the transaction record flips the recoverable version
        # from "data" to "log", so it must be counter-atomic.
        builder.store_var(self.seq_var, txn.seq)
        builder.store_var(self.nentries_var, len(txn.writes))
        builder.store_u64(
            self.arena.txn_record + _FIRST_ENTRY_OFFSET,
            self._txn_first_entry % self.arena.log_capacity,
        )
        builder.store_var(self.valid_var, 1)
        builder.clwb(self.arena.txn_record)
        builder.persist_barrier()

    def _emit_mutate(self, txn: _OpenTransaction) -> None:
        builder = self.builder
        builder.label("mutate")
        for target, _old, new in txn.writes:
            builder.compute(MUTATE_COMPUTE_NS)
            builder.store(
                target,
                new,
                counter_atomic=txn.counter_atomic_targets.get(target, False),
            )
            builder.clwb(target)
        for target, _old, _new in txn.writes:
            builder.ccwb(target)
        builder.compute(STAGE_COMPUTE_NS)
        builder.persist_barrier()

    def _emit_commit(self, txn: _OpenTransaction) -> None:
        builder = self.builder
        builder.label("commit")
        builder.store_var(self.valid_var, 0)
        builder.clwb(self.arena.txn_record)
        builder.persist_barrier()
        self._log_cursor = (self._log_cursor + len(txn.writes)) % self.arena.log_capacity

    def _require_open(self) -> _OpenTransaction:
        if self._open is None:
            raise TransactionError("no open transaction")
        return self._open

    # -- convenience -----------------------------------------------------------

    def run(self, writes: Sequence[Tuple[int, bytes, bytes]]) -> None:
        """begin + write_line* + commit in one call."""
        self.begin()
        for line_address, old, new in writes:
            self.write_line(line_address, old, new)
        self.commit()


def recover_undo_log(
    recovered: RecoveredMemory,
    arena: CoreArena,
    context: Optional[RecoveryContext] = None,
) -> List[int]:
    """Post-crash undo recovery for one arena.

    Reads the transaction record; if a transaction was armed, restores
    every logged pre-image.  Returns the list of restored line
    addresses.  All reads are *strict*: the protocol guarantees the
    record and (when armed) the log are decryptable, so a decryption
    failure here is a genuine counter-atomicity violation and raises.

    The procedure is restartable at entry granularity: each restore is
    one :meth:`RecoveryContext.step`, and the record clear — the write
    that retires the log — comes last.  A crash anywhere mid-replay
    leaves ``valid = 1``, so the next boot replays from entry 0; every
    restore rewrites its target with the same pre-image, making the
    whole replay idempotent.
    """
    context = context or RecoveryContext()
    context.enter_phase("txn-replay")
    record = arena.txn_record
    valid = recovered.read_u64(record + _VALID_OFFSET)
    if valid == 0:
        context.step()
        return []
    if valid != 1:
        raise TransactionError("corrupt transaction record: valid=%d" % valid)
    seq = recovered.read_u64(record + _SEQ_OFFSET)
    nentries = recovered.read_u64(record + _NENTRIES_OFFSET)
    first = recovered.read_u64(record + _FIRST_ENTRY_OFFSET)
    if nentries > arena.log_capacity or first >= arena.log_capacity:
        raise TransactionError("corrupt transaction record")
    restored: List[int] = []
    for index in range(nentries):
        slot = (first + index) % arena.log_capacity
        header = arena.log_base + slot * LOG_ENTRY_BYTES
        magic = recovered.read_u64(header)
        if magic != LOG_MAGIC:
            raise TransactionError("corrupt log entry %d (bad magic)" % index)
        entry_seq = recovered.read_u64(header + 16)
        if entry_seq != seq:
            raise TransactionError(
                "log entry %d has seq %d, record has %d" % (index, entry_seq, seq)
            )
        target = recovered.read_u64(header + 8)
        pre_image = recovered.read(header + CACHE_LINE_SIZE, CACHE_LINE_SIZE)
        context.write_line(recovered, target, pre_image)
        restored.append(target)
        context.step()
    # The restore re-encrypts with fresh counters; the record is cleared
    # last, so an interrupted replay stays armed and re-runs in full.
    context.write_line(recovered, record, bytes(CACHE_LINE_SIZE))
    context.step()
    return restored
