"""Redo-logging transactions with selective counter-atomicity.

The dual of undo logging: new values are written to the log first, the
commit record flips the recoverable version from "data" to "log", and
the in-place data update happens *after* commit (the write-back phase).
Recovery replays the log when the record is armed.

Stage / atomicity structure (same reasoning as Table 1):

* **prepare** — write new values into log entries (relaxable), clwb,
  ccwb over the log, barrier;
* **commit** — ``CounterAtomic`` store of ``valid = 1``, clwb, barrier
  (the log is now the authoritative version);
* **write-back** — apply the new values in place (relaxable), clwb,
  ccwb over the data, barrier;
* **retire** — ``CounterAtomic`` store of ``valid = 0``, clwb, barrier
  (the data is authoritative again).

Log layout matches the undo log (header line + payload line per entry),
with the payload holding the *new* value.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..config import CACHE_LINE_SIZE
from ..core.primitives import CounterAtomic, PersistentVar, Plain
from ..crash.recovery import RecoveredMemory
from ..crash.session import RecoveryContext
from ..errors import TransactionError
from ..sim.trace import TraceBuilder
from ..utils.bitops import u64_to_bytes
from .heap import LOG_ENTRY_BYTES, CoreArena

LOG_MAGIC = 0x5245444F4C4F4721  # "REDOLOG!"

_VALID_OFFSET = 0
_SEQ_OFFSET = 8
_NENTRIES_OFFSET = 16
_FIRST_ENTRY_OFFSET = 24

#: Modeled non-memory work per log entry / in-place update; see the
#: rationale in :mod:`repro.txn.undolog`.
PREPARE_COMPUTE_NS = 70.0
WRITEBACK_COMPUTE_NS = 45.0
STAGE_COMPUTE_NS = 25.0


@dataclass
class _OpenTransaction:
    seq: int
    writes: List[Tuple[int, bytes]]  # (line address, new payload)


class RedoLogTransactions:
    """Generates redo-logged transactions into a trace builder."""

    def __init__(self, builder: TraceBuilder, arena: CoreArena) -> None:
        self.builder = builder
        self.arena = arena
        self.valid_var: PersistentVar = CounterAtomic(
            arena.txn_record + _VALID_OFFSET, name="txn.valid"
        )
        self.seq_var: PersistentVar = Plain(arena.txn_record + _SEQ_OFFSET, name="txn.seq")
        self.nentries_var: PersistentVar = Plain(
            arena.txn_record + _NENTRIES_OFFSET, name="txn.nentries"
        )
        self._seq = 0
        self._open: Optional[_OpenTransaction] = None
        self.committed = 0
        #: Circular-log cursor (see repro.txn.undolog for rationale).
        self._log_cursor = 0
        self._txn_first_entry = 0

    def begin(self) -> None:
        if self._open is not None:
            raise TransactionError("transaction already open (no nesting)")
        self._seq += 1
        self._open = _OpenTransaction(seq=self._seq, writes=[])
        self._txn_first_entry = self._log_cursor
        self.builder.txn_begin("redo#%d" % self._seq)

    def write_line(self, line_address: int, new_payload: bytes) -> None:
        txn = self._require_open()
        if len(new_payload) != CACHE_LINE_SIZE:
            raise TransactionError("redo log works on whole 64 B lines")
        if line_address % CACHE_LINE_SIZE != 0:
            raise TransactionError("target must be line-aligned")
        if len(txn.writes) >= self.arena.log_capacity:
            raise TransactionError(
                "transaction exceeds log capacity (%d lines)" % self.arena.log_capacity
            )
        txn.writes.append((line_address, bytes(new_payload)))

    def commit(self) -> None:
        txn = self._require_open()
        builder = self.builder
        if txn.writes:
            self._emit_prepare(txn)
            self._emit_commit(txn)
            self._emit_writeback(txn)
            self._emit_retire(txn)
        self._open = None
        self.committed += 1
        builder.txn_end("redo#%d" % txn.seq)

    # -- stages -----------------------------------------------------------

    def _entry_address(self, index: int) -> int:
        return self.arena.log_base + (index % self.arena.log_capacity) * LOG_ENTRY_BYTES

    def _emit_prepare(self, txn: _OpenTransaction) -> None:
        builder = self.builder
        builder.label("prepare")
        for offset, (target, new) in enumerate(txn.writes):
            header = self._entry_address(self._txn_first_entry + offset)
            payload = header + CACHE_LINE_SIZE
            header_bytes = (
                u64_to_bytes(LOG_MAGIC)
                + u64_to_bytes(target)
                + u64_to_bytes(txn.seq)
                + bytes(CACHE_LINE_SIZE - 24)
            )
            builder.compute(PREPARE_COMPUTE_NS)
            builder.store(header, header_bytes)
            builder.store(payload, new)
            builder.clwb(header)
            builder.clwb(payload)
        for offset in range(len(txn.writes)):
            # Flush both lines: an entry can straddle a counter group.
            header = self._entry_address(self._txn_first_entry + offset)
            builder.ccwb(header)
            builder.ccwb(header + CACHE_LINE_SIZE)
        builder.compute(STAGE_COMPUTE_NS)
        builder.persist_barrier()

    def _emit_commit(self, txn: _OpenTransaction) -> None:
        builder = self.builder
        builder.label("commit")
        builder.store_var(self.seq_var, txn.seq)
        builder.store_var(self.nentries_var, len(txn.writes))
        builder.store_u64(
            self.arena.txn_record + _FIRST_ENTRY_OFFSET,
            self._txn_first_entry % self.arena.log_capacity,
        )
        builder.store_var(self.valid_var, 1)
        builder.clwb(self.arena.txn_record)
        builder.persist_barrier()

    def _emit_writeback(self, txn: _OpenTransaction) -> None:
        builder = self.builder
        builder.label("write-back")
        for target, new in txn.writes:
            builder.compute(WRITEBACK_COMPUTE_NS)
            builder.store(target, new)
            builder.clwb(target)
        for target, _new in txn.writes:
            builder.ccwb(target)
        builder.compute(STAGE_COMPUTE_NS)
        builder.persist_barrier()

    def _emit_retire(self, txn: _OpenTransaction) -> None:
        builder = self.builder
        builder.label("retire")
        builder.store_var(self.valid_var, 0)
        builder.clwb(self.arena.txn_record)
        builder.persist_barrier()
        self._log_cursor = (self._log_cursor + len(txn.writes)) % self.arena.log_capacity

    def _require_open(self) -> _OpenTransaction:
        if self._open is None:
            raise TransactionError("no open transaction")
        return self._open

    def run(self, writes: Sequence[Tuple[int, bytes]]) -> None:
        self.begin()
        for line_address, new in writes:
            self.write_line(line_address, new)
        self.commit()


def recover_redo_log(
    recovered: RecoveredMemory,
    arena: CoreArena,
    context: Optional[RecoveryContext] = None,
) -> List[int]:
    """Post-crash redo recovery: replay the log if the record is armed.

    Restartable at entry granularity (see :func:`recover_undo_log` for
    the step discipline): an interrupted replay leaves the record
    armed, and re-applying a logged new-value is idempotent.
    """
    context = context or RecoveryContext()
    context.enter_phase("txn-replay")
    record = arena.txn_record
    valid = recovered.read_u64(record + _VALID_OFFSET)
    if valid == 0:
        context.step()
        return []
    if valid != 1:
        raise TransactionError("corrupt transaction record: valid=%d" % valid)
    seq = recovered.read_u64(record + _SEQ_OFFSET)
    nentries = recovered.read_u64(record + _NENTRIES_OFFSET)
    first = recovered.read_u64(record + _FIRST_ENTRY_OFFSET)
    if nentries > arena.log_capacity or first >= arena.log_capacity:
        raise TransactionError("corrupt transaction record")
    applied: List[int] = []
    for index in range(nentries):
        slot = (first + index) % arena.log_capacity
        header = arena.log_base + slot * LOG_ENTRY_BYTES
        if recovered.read_u64(header) != LOG_MAGIC:
            raise TransactionError("corrupt log entry %d (bad magic)" % index)
        if recovered.read_u64(header + 16) != seq:
            raise TransactionError("log entry %d from a different transaction" % index)
        target = recovered.read_u64(header + 8)
        new_image = recovered.read(header + CACHE_LINE_SIZE, CACHE_LINE_SIZE)
        context.write_line(recovered, target, new_image)
        applied.append(target)
        context.step()
    context.write_line(recovered, record, bytes(CACHE_LINE_SIZE))
    context.step()
    return applied
