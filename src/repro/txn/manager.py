"""Uniform front door over the transaction mechanisms.

Workloads ask for "a transaction mechanism" by name so every workload
can run under undo logging (the paper's default), redo logging, or —
for structures that fit it — shadow copying.
"""

from __future__ import annotations

import enum
from typing import Callable, List, Tuple, Union

from ..errors import TransactionError
from ..sim.trace import TraceBuilder
from .checksum_undo import ChecksummedUndoLog
from .heap import CoreArena
from .redolog import RedoLogTransactions
from .undolog import UndoLogTransactions


class TransactionMechanism(enum.Enum):
    UNDO = "undo"
    REDO = "redo"
    CHECKSUM_UNDO = "checksum-undo"


#: Any concrete line-transaction generator.
LineTransactions = Union[
    UndoLogTransactions, RedoLogTransactions, ChecksummedUndoLog
]


def make_transactions(
    mechanism: Union[str, TransactionMechanism],
    builder: TraceBuilder,
    arena: CoreArena,
) -> LineTransactions:
    """Instantiate the requested mechanism over one arena."""
    if isinstance(mechanism, str):
        try:
            mechanism = TransactionMechanism(mechanism)
        except ValueError:
            raise TransactionError(
                "unknown transaction mechanism %r" % mechanism
            ) from None
    if mechanism is TransactionMechanism.UNDO:
        return UndoLogTransactions(builder, arena)
    if mechanism is TransactionMechanism.CHECKSUM_UNDO:
        return ChecksummedUndoLog(builder, arena)
    return RedoLogTransactions(builder, arena)


def apply_line_writes(
    txns: LineTransactions,
    writes: List[Tuple[int, bytes, bytes]],
) -> None:
    """Run one transaction over (address, old, new) line writes.

    Redo logging ignores the pre-images; undo logging logs them.
    """
    if isinstance(txns, (UndoLogTransactions, ChecksummedUndoLog)):
        txns.run(writes)
        return
    txns.run([(address, new) for address, _old, new in writes])
