"""Uniform front door over the transaction mechanisms.

Workloads ask for "a transaction mechanism" by name so every workload
can run under undo logging (the paper's default), redo logging, or —
for structures that fit it — shadow copying.

This module also owns the *cross-shard persist barrier*
(:class:`CrossShardBarrier`): on a sharded memory system
(:class:`repro.mem.sharded.ShardedMemorySystem`), a transaction's
commit must drain every shard it touched, and the barrier turns that
multi-controller drain into one durable commit record.
"""

from __future__ import annotations

import enum
from typing import Callable, Dict, List, Tuple, Union

from ..errors import TransactionError
from ..persist.journal import PersistJournal
from ..sim.trace import TraceBuilder
from .checksum_undo import ChecksummedUndoLog
from .heap import CoreArena
from .redolog import RedoLogTransactions
from .undolog import UndoLogTransactions


class TransactionMechanism(enum.Enum):
    UNDO = "undo"
    REDO = "redo"
    CHECKSUM_UNDO = "checksum-undo"


#: Any concrete line-transaction generator.
LineTransactions = Union[
    UndoLogTransactions, RedoLogTransactions, ChecksummedUndoLog
]


def make_transactions(
    mechanism: Union[str, TransactionMechanism],
    builder: TraceBuilder,
    arena: CoreArena,
) -> LineTransactions:
    """Instantiate the requested mechanism over one arena."""
    if isinstance(mechanism, str):
        try:
            mechanism = TransactionMechanism(mechanism)
        except ValueError:
            raise TransactionError(
                "unknown transaction mechanism %r" % mechanism
            ) from None
    if mechanism is TransactionMechanism.UNDO:
        return UndoLogTransactions(builder, arena)
    if mechanism is TransactionMechanism.CHECKSUM_UNDO:
        return ChecksummedUndoLog(builder, arena)
    return RedoLogTransactions(builder, arena)


class CrossShardBarrier:
    """Two-phase drain turning per-shard acceptances into one commit.

    Sequence at a transaction's commit point (the core has already
    resolved its sfence, so every write of the transaction has been
    *accepted* by some shard's ADR-protected queue):

    1. **Prepare** — snapshot each shard's acceptance watermark (the
       latest queue-acceptance time that shard has handed out).  Shards
       whose watermark moved since the previous commit are the shards
       this transaction (or writes racing with it) touched; their
       watermarks must all become durable for the commit to hold.
    2. **Commit** — append a :class:`~repro.persist.journal.CommitRecord`
       carrying the touched-shard watermarks; its ``commit_ns`` is the
       latest of them, i.e. the instant the cross-shard drain barrier
       is satisfied under ADR.

    Recovery replays the commit log as a prefix
    (:func:`repro.crash.sharded.durable_commit_prefix`), preserving the
    linearizable acked-prefix contract across any subset of shard
    failures: a commit whose touched shards all persisted their
    watermarks is durable; the first one that lost a shard ends the
    prefix.
    """

    def __init__(self, journal: PersistJournal, shards: int) -> None:
        self.journal = journal
        self.shards = shards
        self._last_marks: Dict[int, float] = {s: 0.0 for s in range(shards)}

    def commit(
        self, core: int, now_ns: float, watermarks: Dict[int, float]
    ) -> None:
        """Run both phases for one transaction commit at ``now_ns``."""
        touched = {
            shard: mark
            for shard, mark in watermarks.items()
            if mark > self._last_marks.get(shard, 0.0)
        }
        # A read-only (or fully coalesced) transaction touches no shard;
        # the barrier still records the commit so the acked prefix stays
        # dense, with the core's own clock as its durability point.
        commit_ns = max(touched.values(), default=now_ns)
        self.journal.record_commit(
            core=core, commit_ns=max(commit_ns, 0.0), shard_watermarks=touched
        )
        self._last_marks.update(watermarks)

    def get_state(self) -> Dict[str, object]:
        return {"last_marks": dict(self._last_marks)}

    def set_state(self, state: Dict[str, object]) -> None:
        self._last_marks = dict(state["last_marks"])


def apply_line_writes(
    txns: LineTransactions,
    writes: List[Tuple[int, bytes, bytes]],
) -> None:
    """Run one transaction over (address, old, new) line writes.

    Redo logging ignores the pre-images; undo logging logs them.
    """
    if isinstance(txns, (UndoLogTransactions, ChecksummedUndoLog)):
        txns.run(writes)
        return
    txns.run([(address, new) for address, _old, new in writes])
