"""The paper's primary contribution: counter-atomicity designs.

* :mod:`repro.core.designs` — the six evaluated design points
  (no-encryption, ideal, co-located, co-located + counter cache, full
  counter-atomicity, selective counter-atomicity) expressed as policy
  objects the memory controller consults,
* :mod:`repro.core.primitives` — the programmer-visible primitives
  (``CounterAtomic`` annotation and ``counter_cache_writeback()``),
* :mod:`repro.core.atomicity` — the formal counter-atomicity property
  and per-write classification,
* :mod:`repro.core.invariants` — checkers that verify a (post-crash)
  NVM image satisfies Eq. 4's decryptability condition.
"""

from .atomicity import AtomicityClass, classify_write
from .designs import (
    ALL_DESIGNS,
    BASELINE_DESIGNS,
    DesignPolicy,
    get_design,
    list_designs,
)
from .invariants import AtomicityViolation, check_counter_atomicity
from .primitives import CounterAtomic, PersistentVar

__all__ = [
    "AtomicityClass",
    "classify_write",
    "DesignPolicy",
    "ALL_DESIGNS",
    "BASELINE_DESIGNS",
    "get_design",
    "list_designs",
    "AtomicityViolation",
    "check_counter_atomicity",
    "CounterAtomic",
    "PersistentVar",
]
