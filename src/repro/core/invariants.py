"""Counter-atomicity invariant checking (paper Eq. 4).

A post-crash NVM image is *decryptable* at a line if the counter stored
in the architectural counter region equals the counter that was used to
encrypt the ciphertext resident at that line.  The simulator records the
encryption counter as ground truth alongside each persisted line, so the
checker can decide decryptability exactly — and, in functional mode,
demonstrate it by actually decrypting with both counters and comparing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..crypto.counters import CounterStore
from ..crypto.otp import OTPCipher
from ..nvm.device import NVMDevice


@dataclass(frozen=True)
class AtomicityViolation:
    """One undecryptable line in a crash image."""

    address: int
    stored_counter: int
    encrypted_with: int

    def describe(self) -> str:
        return (
            "line 0x%x encrypted with counter %d but NVM holds counter %d "
            "(Eq. 4: decryption yields garbage)"
            % (self.address, self.encrypted_with, self.stored_counter)
        )


def check_counter_atomicity(
    device: NVMDevice,
    counter_store: CounterStore,
    addresses: Optional[List[int]] = None,
) -> List[AtomicityViolation]:
    """Find every data line whose counter is out of sync.

    ``addresses``: restrict to these line addresses; default scans every
    touched data line.  Returns an empty list iff the image satisfies
    counter-atomicity everywhere it was asked to look.
    """
    violations: List[AtomicityViolation] = []
    address_map = device.address_map
    if addresses is None:
        candidates = [
            a for a in device.touched_lines() if address_map.is_data_address(a)
        ]
    else:
        candidates = [address_map.line_base(a) for a in addresses]
    for line_address in candidates:
        stored = device.read_line(line_address)
        architectural = counter_store.read(line_address)
        if stored.encrypted_with != architectural:
            violations.append(
                AtomicityViolation(
                    address=line_address,
                    stored_counter=architectural,
                    encrypted_with=stored.encrypted_with,
                )
            )
    return violations


def demonstrate_garbage(
    cipher: OTPCipher,
    device: NVMDevice,
    counter_store: CounterStore,
    line_address: int,
) -> Dict[str, bytes]:
    """Decrypt one line with both the correct and the stored counter.

    Returns ``{"with_true_counter": ..., "with_stored_counter": ...}``
    so callers (examples, tests) can show that a stale counter really
    produces different — garbage — plaintext, not a detectable error.
    """
    stored = device.read_line(line_address)
    true_plain = cipher.decrypt(line_address, stored.encrypted_with, stored.payload)
    arch_counter = counter_store.read(line_address)
    seen_plain = cipher.decrypt(line_address, arch_counter, stored.payload)
    return {"with_true_counter": true_plain, "with_stored_counter": seen_plain}
