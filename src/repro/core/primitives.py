"""Programmer-visible primitives of selective counter-atomicity.

The paper (Section 4.3) extends Intel's persistency interface with:

* ``CounterAtomic`` — an annotation on variables whose updates must
  reach NVM counter-atomically (they immediately affect the
  recoverable state), and
* ``counter_cache_writeback()`` — an on-demand flush of the dirty
  counter-cache lines covering the given addresses.

In this reproduction, programs are written against
:class:`repro.sim.trace.TraceBuilder`, so the primitives surface as
(a) typed variable descriptors carrying the annotation and (b) trace
operations the simulated memory controller interprets.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..config import CACHE_LINE_SIZE
from ..errors import AddressError
from ..utils.bitops import bytes_to_u64, u64_to_bytes


@dataclass(frozen=True)
class PersistentVar:
    """An 8-byte variable at a fixed NVM address.

    A thin descriptor: it does not hold the value (the simulated memory
    does); it holds the address, a debug name, and the atomicity
    annotation.  Reads/writes go through a trace builder or memory
    interface that consumes these descriptors.
    """

    address: int
    name: str = ""
    counter_atomic: bool = False

    def __post_init__(self) -> None:
        if self.address < 0:
            raise AddressError("variable address cannot be negative")
        if self.address % 8 != 0:
            raise AddressError(
                "persistent variables must be 8-byte aligned (got 0x%x)" % self.address
            )

    @property
    def line_address(self) -> int:
        return self.address - (self.address % CACHE_LINE_SIZE)

    def encode(self, value: int) -> bytes:
        """Little-endian encoding used by all persistent u64 variables."""
        return u64_to_bytes(value)

    @staticmethod
    def decode(data: bytes) -> int:
        return bytes_to_u64(data)


def CounterAtomic(address: int, name: str = "") -> PersistentVar:
    """Declare a counter-atomic persistent variable.

    Mirrors the paper's ``CounterAtomic`` type qualifier (Figure 9):
    every store to the returned variable is tagged so the memory
    controller pairs its data and counter writes through the ready-bit
    protocol.
    """
    return PersistentVar(address=address, name=name, counter_atomic=True)


def Plain(address: int, name: str = "") -> PersistentVar:
    """Declare an ordinary (relaxable) persistent variable."""
    return PersistentVar(address=address, name=name, counter_atomic=False)
