"""Formal classification of writes under selective counter-atomicity.

The paper's key insight (Section 4.2) is that crash-consistency
mechanisms maintain two versions of data, and at any instant only one of
them is the *recoverable* version.  Writes to the version being mutated
do not immediately affect recoverability; only the writes that *switch*
which version is recoverable (commit records, valid flags, head
pointers) do.  The former may relax counter-atomicity inside a window
bounded by ``counter_cache_writeback()`` + ``persist_barrier()``; the
latter must be counter-atomic.

This module names those classes and provides the per-stage table the
paper gives for undo logging (Table 1).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Optional, Tuple


class AtomicityClass(enum.Enum):
    """How a write relates to the recoverable state."""

    #: Mutates the non-recoverable version: counter-atomicity may relax.
    RELAXABLE = "relaxable"
    #: Flips which version is recoverable: must be counter-atomic.
    COMMIT_POINT = "commit-point"


class TxnStage(enum.Enum):
    """The three stages of an undo-logging transaction (Table 1)."""

    PREPARE = "prepare"
    MUTATE = "mutate"
    COMMIT = "commit"


@dataclass(frozen=True)
class StageRule:
    """One row of the paper's Table 1."""

    stage: TxnStage
    backup_consistent: Optional[bool]
    data_consistent: Optional[bool]
    counter_atomicity_required: bool

    @property
    def recovery_source(self) -> str:
        """Which version recovery would use if a crash hit this stage."""
        if self.backup_consistent:
            return "backup"
        if self.data_consistent:
            return "data"
        return "commit-record"


#: Table 1 of the paper: per-stage consistency and atomicity needs.
TABLE1: Tuple[StageRule, ...] = (
    StageRule(
        stage=TxnStage.PREPARE,
        backup_consistent=False,  # log entry is being built
        data_consistent=True,  # original data untouched
        counter_atomicity_required=False,
    ),
    StageRule(
        stage=TxnStage.MUTATE,
        backup_consistent=True,  # log entry sealed
        data_consistent=False,  # in-place update in flight
        counter_atomicity_required=False,
    ),
    StageRule(
        stage=TxnStage.COMMIT,
        backup_consistent=None,  # the commit write decides
        data_consistent=None,
        counter_atomicity_required=True,
    ),
)

_TABLE1_BY_STAGE: Dict[TxnStage, StageRule] = {rule.stage: rule for rule in TABLE1}


def stage_rule(stage: TxnStage) -> StageRule:
    """The Table 1 row for ``stage``."""
    return _TABLE1_BY_STAGE[stage]


def classify_write(stage: TxnStage, is_commit_record: bool = False) -> AtomicityClass:
    """Classify one write by transaction stage.

    ``is_commit_record`` distinguishes the valid-flag write inside the
    commit stage from any incidental bookkeeping writes.
    """
    if stage is TxnStage.COMMIT and is_commit_record:
        return AtomicityClass.COMMIT_POINT
    if stage_rule(stage).counter_atomicity_required:
        return AtomicityClass.COMMIT_POINT
    return AtomicityClass.RELAXABLE


def required_counter_atomic_fraction(
    lines_per_txn: int, commit_records_per_txn: int = 1
) -> float:
    """Fraction of a transaction's writes that must be counter-atomic.

    A transaction touching N lines writes ~N log lines + N data lines
    plus its commit record(s); only the commit record(s) pair.  This is
    the quantity that shrinks as transactions grow, which is why the
    SCA overhead vanishes for page-sized transactions (Figure 16).
    """
    if lines_per_txn <= 0:
        raise ValueError("transactions touch at least one line")
    total_writes = 2 * lines_per_txn + commit_records_per_txn
    return commit_records_per_txn / total_writes
