"""The six evaluated counter-atomicity design points (paper Section 6.1).

Each design is a :class:`DesignPolicy` — a bundle of flags the memory
controller consults at every read, write, counter-cache event and crash.
The policies deliberately contain *no* behaviour of their own so the
mechanism lives in one place (the controller) and the designs remain
directly comparable.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Tuple

from ..errors import ConfigurationError


@dataclass(frozen=True)
class DesignPolicy:
    """Counter-atomicity policy consulted by the memory controller."""

    name: str
    description: str
    #: Does this design encrypt at all?
    encrypts: bool
    #: Are counters co-located with data in one 72 B access (wider bus)?
    colocated: bool
    #: Is there an on-chip counter cache?
    has_counter_cache: bool
    #: Pair *every* data write with a counter write (FCA).
    pair_all_writes: bool
    #: Pair only ``CounterAtomic``-annotated writes (SCA).
    pair_ca_writes: bool
    #: Do dirty counter-cache evictions generate NVM counter writes?
    counter_evict_writes: bool
    #: Does ``counter_cache_writeback()`` flush dirty counter lines?
    ccwb_enabled: bool
    #: Ideal-design fiction: counters persist by magic, counter
    #: writebacks cost nothing and crash recovery always sees fresh
    #: counters.
    magic_counter_persistence: bool
    #: Bus width in bits (72 for the co-located designs).
    bus_width_bits: int
    #: Maintain a Bonsai Merkle Tree over the counter region (the +bmt
    #: design variants); post-crash verification walks it.
    integrity_tree: bool = False
    #: Tree persistence mode pinned by the design (``"eager"`` or
    #: ``"lazy"``); None defers to ``IntegrityConfig.mode``.
    integrity_mode: Optional[str] = None

    def __post_init__(self) -> None:
        if self.pair_all_writes and self.pair_ca_writes:
            raise ConfigurationError("a design pairs all writes or CA writes, not both")
        if self.integrity_tree and not self.encrypts:
            raise ConfigurationError("the integrity tree covers encryption counters")
        if self.integrity_tree and self.colocated:
            raise ConfigurationError(
                "the integrity tree requires the separate counter region"
            )
        if self.integrity_tree and self.magic_counter_persistence:
            raise ConfigurationError(
                "magic counter persistence leaves nothing for the tree to verify"
            )
        if self.integrity_mode is not None and self.integrity_mode not in ("eager", "lazy"):
            raise ConfigurationError("integrity mode must be 'eager' or 'lazy'")
        if self.integrity_mode is not None and not self.integrity_tree:
            raise ConfigurationError("integrity mode requires the integrity tree")
        if self.colocated and (self.pair_all_writes or self.pair_ca_writes):
            raise ConfigurationError("co-located designs are atomic by construction")
        if self.colocated and self.bus_width_bits != 72:
            raise ConfigurationError("co-located designs require the 72-bit bus")
        if not self.colocated and self.bus_width_bits != 64:
            raise ConfigurationError("separate-counter designs use the 64-bit bus")
        if not self.encrypts and (
            self.colocated
            or self.has_counter_cache
            or self.pair_all_writes
            or self.pair_ca_writes
        ):
            raise ConfigurationError("encryption features require encryption")

    # -- derived properties -------------------------------------------------

    @property
    def uses_separate_counters(self) -> bool:
        """Counters live in their own NVM region (Figure 5(c) layout)."""
        return self.encrypts and not self.colocated

    @property
    def crash_consistent(self) -> bool:
        """Does the design guarantee decryptability across crashes?

        Co-located designs are atomic per access; the paired designs
        enforce it with ready bits; the ideal design is consistent by
        fiat; a design with separate counters and no pairing is not.
        """
        if not self.encrypts:
            return True
        if self.colocated or self.magic_counter_persistence:
            return True
        return self.pair_all_writes or self.pair_ca_writes

    def write_is_paired(self, counter_atomic: bool) -> bool:
        """Should a write with this annotation pair with its counter?"""
        if self.pair_all_writes:
            return True
        return self.pair_ca_writes and counter_atomic


NO_ENCRYPTION = DesignPolicy(
    name="no-encryption",
    description="Plain NVMM without encryption (upper-bound baseline).",
    encrypts=False,
    colocated=False,
    has_counter_cache=False,
    pair_all_writes=False,
    pair_ca_writes=False,
    counter_evict_writes=False,
    ccwb_enabled=False,
    magic_counter_persistence=False,
    bus_width_bits=64,
)

IDEAL = DesignPolicy(
    name="ideal",
    description=(
        "Counter-mode encryption whose counter persistence costs nothing; "
        "crash consistent by construction (evaluation fiction)."
    ),
    encrypts=True,
    colocated=False,
    has_counter_cache=True,
    pair_all_writes=False,
    pair_ca_writes=False,
    counter_evict_writes=False,
    ccwb_enabled=False,
    magic_counter_persistence=True,
    bus_width_bits=64,
)

UNSAFE = DesignPolicy(
    name="unsafe",
    description=(
        "Counter-mode encryption with lazy (eviction-only) counter "
        "writeback and no pairing: fast but NOT crash consistent. Used "
        "to demonstrate the motivating failure (Figures 3 and 4)."
    ),
    encrypts=True,
    colocated=False,
    has_counter_cache=True,
    pair_all_writes=False,
    pair_ca_writes=False,
    counter_evict_writes=True,
    ccwb_enabled=False,
    magic_counter_persistence=False,
    bus_width_bits=64,
)

CO_LOCATED = DesignPolicy(
    name="co-located",
    description=(
        "Data and counter co-located in one 72 B access over a 72-bit "
        "bus; no counter cache, so decryption serializes after every "
        "read (Section 3.2.1, Figure 5(a))."
    ),
    encrypts=True,
    colocated=True,
    has_counter_cache=False,
    pair_all_writes=False,
    pair_ca_writes=False,
    counter_evict_writes=False,
    ccwb_enabled=False,
    magic_counter_persistence=False,
    bus_width_bits=72,
)

CO_LOCATED_CC = DesignPolicy(
    name="co-located-cc",
    description=(
        "Co-located data and counter plus a counter cache that lets "
        "decryption overlap the read on a hit (Figure 5(b))."
    ),
    encrypts=True,
    colocated=True,
    has_counter_cache=True,
    pair_all_writes=False,
    pair_ca_writes=False,
    counter_evict_writes=False,
    ccwb_enabled=False,
    magic_counter_persistence=False,
    bus_width_bits=72,
)

FCA = DesignPolicy(
    name="fca",
    description=(
        "Full counter-atomicity: every write pairs its data line with a "
        "counter-line write through the ready-bit protocol (Section 3.2.2)."
    ),
    encrypts=True,
    colocated=False,
    has_counter_cache=True,
    pair_all_writes=True,
    pair_ca_writes=False,
    counter_evict_writes=True,
    ccwb_enabled=False,
    magic_counter_persistence=False,
    bus_width_bits=64,
)

SCA = DesignPolicy(
    name="sca",
    description=(
        "Selective counter-atomicity: only CounterAtomic writes pair; "
        "other counters coalesce in the counter cache until "
        "counter_cache_writeback() (Section 4)."
    ),
    encrypts=True,
    colocated=False,
    has_counter_cache=True,
    pair_all_writes=False,
    pair_ca_writes=True,
    counter_evict_writes=True,
    ccwb_enabled=True,
    magic_counter_persistence=False,
    bus_width_bits=64,
)

FCA_BMT = replace(
    FCA,
    name="fca+bmt",
    description=(
        "FCA plus a Bonsai Merkle Tree over the counter region, eagerly "
        "persisted: every counter persist drives its leaf-to-root path "
        "into the tree write queue (Freij-style strict ordering)."
    ),
    integrity_tree=True,
    integrity_mode="eager",
)

SCA_BMT = replace(
    SCA,
    name="sca+bmt",
    description=(
        "SCA plus a Bonsai Merkle Tree over the counter region, lazily "
        "persisted: dirty tree nodes coalesce on chip and flush at "
        "counter_cache_writeback() and node-cache evictions, mirroring "
        "SCA's counter relaxation."
    ),
    integrity_tree=True,
    integrity_mode="lazy",
)

#: Mode ablations: same base design, the other persistence discipline.
FCA_BMT_LAZY = replace(
    FCA_BMT,
    name="fca+bmt-lazy",
    description="FCA with a lazily persisted counter tree (mode ablation).",
    integrity_mode="lazy",
)

SCA_BMT_EAGER = replace(
    SCA_BMT,
    name="sca+bmt-eager",
    description="SCA with an eagerly persisted counter tree (mode ablation).",
    integrity_mode="eager",
)

#: The designs evaluated in the paper's figures, in plot order.
ALL_DESIGNS: Tuple[DesignPolicy, ...] = (
    NO_ENCRYPTION,
    IDEAL,
    CO_LOCATED,
    CO_LOCATED_CC,
    FCA,
    SCA,
)

#: The four designs of Figures 12/14 (normalized to no-encryption).
BASELINE_DESIGNS: Tuple[DesignPolicy, ...] = (SCA, FCA, CO_LOCATED, CO_LOCATED_CC)

#: The integrity-verified variants (kept out of ALL_DESIGNS so the
#: paper-figure sweeps are unchanged; campaigns and the integrity
#: benchmarks opt in by name).
INTEGRITY_DESIGNS: Tuple[DesignPolicy, ...] = (
    FCA_BMT,
    SCA_BMT,
    FCA_BMT_LAZY,
    SCA_BMT_EAGER,
)

_BY_NAME: Dict[str, DesignPolicy] = {d.name: d for d in ALL_DESIGNS}
_BY_NAME[UNSAFE.name] = UNSAFE
for _design in INTEGRITY_DESIGNS:
    _BY_NAME[_design.name] = _design

#: (base design, requested mode) -> integrity variant name.  None means
#: "the variant's native mode" (eager for FCA, lazy for SCA).
_INTEGRITY_BY_BASE: Dict[Tuple[str, Optional[str]], str] = {
    ("fca", None): FCA_BMT.name,
    ("fca", "eager"): FCA_BMT.name,
    ("fca", "lazy"): FCA_BMT_LAZY.name,
    ("sca", None): SCA_BMT.name,
    ("sca", "lazy"): SCA_BMT.name,
    ("sca", "eager"): SCA_BMT_EAGER.name,
}


def integrity_variant(base: str, mode: Optional[str] = None) -> str:
    """Name of the +bmt variant of ``base`` in the requested mode.

    Accepts a variant name as ``base`` too (re-resolving its mode), so
    ``--integrity`` is idempotent on already-suffixed design lists.
    """
    policy = get_design(base)
    if policy.integrity_tree:
        base = base.split("+", 1)[0]
    try:
        return _INTEGRITY_BY_BASE[(base, mode)]
    except KeyError:
        bases = sorted({name for name, _ in _INTEGRITY_BY_BASE})
        raise ConfigurationError(
            "no integrity-tree variant of design %r (mode %r); "
            "integrity designs exist for: %s" % (base, mode, ", ".join(bases))
        ) from None


def get_design(name: str) -> DesignPolicy:
    """Look up a design by its evaluation name."""
    try:
        return _BY_NAME[name]
    except KeyError:
        raise ConfigurationError(
            "unknown design %r; available: %s" % (name, ", ".join(sorted(_BY_NAME)))
        ) from None


def list_designs(include_unsafe: bool = False) -> List[str]:
    """Names of all designs in evaluation order."""
    names = [d.name for d in ALL_DESIGNS]
    if include_unsafe:
        names.append(UNSAFE.name)
    return names
