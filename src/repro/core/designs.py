"""The evaluated design points, composed from three policy axes.

The paper's design space is compositional: an encryption **layout**
(plain / co-located 72 B / split counter region), a counter-**atomicity**
discipline (unpaired / FCA / SCA ready-bit pairing), and an
**integrity**-tree persistence mode (none / eager / lazy).  A
:class:`DesignPolicy` is the composition of one spec per axis; its name
— including the ``+bmt`` / ``+bmt-<mode>`` suffixes — is *derived* from
the axes by :func:`design_name`, and the registry is built by composing
specs rather than hand-enumerating the cross product.

The specs carry *no behaviour*: the memory controller instantiates one
strategy object per axis (``mem/layout.py``, ``mem/atomicity.py``,
``mem/integrity_policy.py``) from these descriptions, so designs remain
directly comparable and a new axis value lands as one spec plus one
strategy class.  Consumers that predate the axes (crash injector,
campaign triage, snapshots) read the derived flag properties, which
preserve the old flat-flag API.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..errors import ConfigurationError

#: Layout axis values.
LAYOUT_KINDS = ("plain", "colocated", "split")
#: Atomicity axis values.
ATOMICITY_KINDS = ("unpaired", "fca", "sca")
#: Integrity axis values ("none" composes to the base design).
INTEGRITY_KINDS = ("none", "eager", "lazy")


@dataclass(frozen=True)
class LayoutSpec:
    """Where ciphertext and counters live, and how bytes move.

    ``plain`` is the unencrypted baseline; ``colocated`` packs the
    counter into one 72 B access over a 72-bit bus (Figure 5(a)/(b));
    ``split`` keeps counters in their own NVM region over the standard
    64-bit bus (Figure 5(c)).
    """

    kind: str
    #: Is there an on-chip counter cache?
    counter_cache: bool = False

    def __post_init__(self) -> None:
        if self.kind not in LAYOUT_KINDS:
            raise ConfigurationError(
                "unknown layout kind %r; one of: %s" % (self.kind, ", ".join(LAYOUT_KINDS))
            )
        if self.kind == "plain" and self.counter_cache:
            raise ConfigurationError("a counter cache requires encryption counters")


@dataclass(frozen=True)
class AtomicitySpec:
    """How data writes and their counter updates reach persistence.

    ``fca`` pairs every write through the ready-bit protocol
    (Section 3.2.2); ``sca`` pairs only ``CounterAtomic``-annotated
    writes and flushes the rest at ``counter_cache_writeback()``
    (Section 4); ``unpaired`` never pairs.
    """

    kind: str
    #: Do dirty counter-cache evictions generate NVM counter writes?
    counter_evict_writes: bool = False
    #: Ideal-design fiction: counters persist by magic, writebacks cost
    #: nothing and crash recovery always sees fresh counters.
    magic_counter_persistence: bool = False
    #: Tree persistence mode a ``+bmt`` composition defaults to (eager
    #: for FCA's strict ordering, lazy for SCA's relaxation); None
    #: means the discipline has no integrity-tree variant.
    native_tree_mode: Optional[str] = None

    def __post_init__(self) -> None:
        if self.kind not in ATOMICITY_KINDS:
            raise ConfigurationError(
                "unknown atomicity kind %r; one of: %s"
                % (self.kind, ", ".join(ATOMICITY_KINDS))
            )
        if self.magic_counter_persistence and self.kind != "unpaired":
            raise ConfigurationError("magic counter persistence never pairs")
        if self.native_tree_mode is not None and self.native_tree_mode not in (
            "eager",
            "lazy",
        ):
            raise ConfigurationError("native tree mode must be 'eager' or 'lazy'")


@dataclass(frozen=True)
class IntegritySpec:
    """Bonsai-Merkle-tree persistence over the counter region.

    ``eager`` drives every counter persist's leaf-to-root path into the
    tree write queue (Freij-style strict ordering); ``lazy`` coalesces
    dirty nodes on chip and flushes at ``counter_cache_writeback()``
    and node-cache evictions (Phoenix-style); ``none`` keeps no tree.
    """

    kind: str = "none"

    def __post_init__(self) -> None:
        if self.kind not in INTEGRITY_KINDS:
            raise ConfigurationError(
                "unknown integrity kind %r; one of: %s"
                % (self.kind, ", ".join(INTEGRITY_KINDS))
            )

    @property
    def tree(self) -> bool:
        return self.kind != "none"


def _base_name(layout: LayoutSpec, atomicity: AtomicitySpec) -> str:
    """Evaluation name of the (layout, atomicity) composition."""
    if layout.kind == "plain":
        return "no-encryption"
    if layout.kind == "colocated":
        return "co-located-cc" if layout.counter_cache else "co-located"
    if atomicity.magic_counter_persistence:
        return "ideal"
    if atomicity.kind == "fca":
        return "fca"
    if atomicity.kind == "sca":
        return "sca"
    return "unsafe"


def design_name(
    layout: LayoutSpec, atomicity: AtomicitySpec, integrity: IntegritySpec
) -> str:
    """Derive a design's registry name from its three axes.

    The integrity suffix is ``+bmt`` when the mode is the atomicity
    discipline's native one and ``+bmt-<mode>`` for ablations, so
    ``fca+bmt`` is eager while ``fca+bmt-lazy`` names the crossover.
    """
    name = _base_name(layout, atomicity)
    if integrity.tree:
        if integrity.kind == atomicity.native_tree_mode:
            name += "+bmt"
        else:
            name += "+bmt-%s" % integrity.kind
    return name


def sharded_design_name(name: str, shards: int) -> str:
    """Reported name of a design run on an N-shard memory system.

    Sharding is a machine-level deployment parameter, not a design
    axis: ``fca+bmt`` on four controllers reports as ``fca+bmt x4``
    without adding a registry entry.  ``shards == 1`` returns the name
    unchanged, keeping every unsharded artifact (fixtures, figures,
    campaign reports) byte-stable.
    """
    if shards <= 1:
        return name
    return "%s x%d" % (name, shards)


@dataclass(frozen=True)
class DesignPolicy:
    """One design point: a layout, an atomicity discipline, a tree mode.

    The flat flag attributes (``encrypts``, ``pair_all_writes``,
    ``bus_width_bits``, …) are derived from the axes; they are the
    stable consumer API and match the pre-composition policy fields.
    """

    name: str
    description: str
    layout: LayoutSpec
    atomicity: AtomicitySpec
    integrity: IntegritySpec = field(default_factory=IntegritySpec)

    def __post_init__(self) -> None:
        if self.layout.kind == "plain" and self.atomicity.kind != "unpaired":
            raise ConfigurationError("encryption features require encryption")
        if self.layout.kind == "plain" and (
            self.atomicity.counter_evict_writes
            or self.atomicity.magic_counter_persistence
        ):
            raise ConfigurationError("encryption features require encryption")
        if self.layout.kind == "colocated" and self.atomicity.kind != "unpaired":
            raise ConfigurationError("co-located designs are atomic by construction")
        if self.integrity.tree:
            if self.layout.kind == "plain":
                raise ConfigurationError("the integrity tree covers encryption counters")
            if self.layout.kind == "colocated":
                raise ConfigurationError(
                    "the integrity tree requires the separate counter region"
                )
            if self.atomicity.magic_counter_persistence:
                raise ConfigurationError(
                    "magic counter persistence leaves nothing for the tree to verify"
                )

    # -- derived flag properties (the pre-composition policy API) -----------

    @property
    def encrypts(self) -> bool:
        """Does this design encrypt at all?"""
        return self.layout.kind != "plain"

    @property
    def colocated(self) -> bool:
        """Are counters co-located with data in one 72 B access?"""
        return self.layout.kind == "colocated"

    @property
    def has_counter_cache(self) -> bool:
        return self.layout.counter_cache

    @property
    def pair_all_writes(self) -> bool:
        """Pair *every* data write with a counter write (FCA)."""
        return self.atomicity.kind == "fca"

    @property
    def pair_ca_writes(self) -> bool:
        """Pair only ``CounterAtomic``-annotated writes (SCA)."""
        return self.atomicity.kind == "sca"

    @property
    def counter_evict_writes(self) -> bool:
        return self.atomicity.counter_evict_writes

    @property
    def ccwb_enabled(self) -> bool:
        """Does ``counter_cache_writeback()`` flush dirty counter lines?

        Only SCA relies on the writeback instruction; FCA's counters
        persist through pairing and the other designs ignore it.
        """
        return self.atomicity.kind == "sca"

    @property
    def magic_counter_persistence(self) -> bool:
        return self.atomicity.magic_counter_persistence

    @property
    def bus_width_bits(self) -> int:
        """72 for the co-located layouts, 64 otherwise."""
        return 72 if self.layout.kind == "colocated" else 64

    @property
    def integrity_tree(self) -> bool:
        """Maintain a Bonsai Merkle Tree over the counter region?"""
        return self.integrity.tree

    @property
    def integrity_mode(self) -> Optional[str]:
        """Tree persistence mode (``"eager"``/``"lazy"``), None if no tree."""
        return self.integrity.kind if self.integrity.tree else None

    @property
    def uses_separate_counters(self) -> bool:
        """Counters live in their own NVM region (Figure 5(c) layout)."""
        return self.layout.kind == "split"

    @property
    def crash_consistent(self) -> bool:
        """Does the design guarantee decryptability across crashes?

        Co-located designs are atomic per access; the paired designs
        enforce it with ready bits; the ideal design is consistent by
        fiat; a design with separate counters and no pairing is not.
        """
        if not self.encrypts:
            return True
        if self.colocated or self.magic_counter_persistence:
            return True
        return self.atomicity.kind in ("fca", "sca")

    def write_is_paired(self, counter_atomic: bool) -> bool:
        """Should a write with this annotation pair with its counter?"""
        if self.pair_all_writes:
            return True
        return self.pair_ca_writes and counter_atomic


def compose(
    layout: LayoutSpec,
    atomicity: AtomicitySpec,
    integrity: IntegritySpec,
    description: str,
) -> DesignPolicy:
    """Build a design whose name is derived from its axes."""
    return DesignPolicy(
        name=design_name(layout, atomicity, integrity),
        description=description,
        layout=layout,
        atomicity=atomicity,
        integrity=integrity,
    )


# -- axis building blocks ----------------------------------------------------

_PLAIN = LayoutSpec("plain")
_COLOCATED = LayoutSpec("colocated")
_COLOCATED_CC = LayoutSpec("colocated", counter_cache=True)
_SPLIT_CC = LayoutSpec("split", counter_cache=True)

_UNPAIRED = AtomicitySpec("unpaired")
_MAGIC = AtomicitySpec("unpaired", magic_counter_persistence=True)
_EVICT_ONLY = AtomicitySpec("unpaired", counter_evict_writes=True)
_FCA_ATOM = AtomicitySpec("fca", counter_evict_writes=True, native_tree_mode="eager")
_SCA_ATOM = AtomicitySpec("sca", counter_evict_writes=True, native_tree_mode="lazy")

_NO_TREE = IntegritySpec("none")
_EAGER = IntegritySpec("eager")
_LAZY = IntegritySpec("lazy")


# -- the registered design points --------------------------------------------

NO_ENCRYPTION = compose(
    _PLAIN,
    _UNPAIRED,
    _NO_TREE,
    description="Plain NVMM without encryption (upper-bound baseline).",
)

IDEAL = compose(
    _SPLIT_CC,
    _MAGIC,
    _NO_TREE,
    description=(
        "Counter-mode encryption whose counter persistence costs nothing; "
        "crash consistent by construction (evaluation fiction)."
    ),
)

UNSAFE = compose(
    _SPLIT_CC,
    _EVICT_ONLY,
    _NO_TREE,
    description=(
        "Counter-mode encryption with lazy (eviction-only) counter "
        "writeback and no pairing: fast but NOT crash consistent. Used "
        "to demonstrate the motivating failure (Figures 3 and 4)."
    ),
)

CO_LOCATED = compose(
    _COLOCATED,
    _UNPAIRED,
    _NO_TREE,
    description=(
        "Data and counter co-located in one 72 B access over a 72-bit "
        "bus; no counter cache, so decryption serializes after every "
        "read (Section 3.2.1, Figure 5(a))."
    ),
)

CO_LOCATED_CC = compose(
    _COLOCATED_CC,
    _UNPAIRED,
    _NO_TREE,
    description=(
        "Co-located data and counter plus a counter cache that lets "
        "decryption overlap the read on a hit (Figure 5(b))."
    ),
)

FCA = compose(
    _SPLIT_CC,
    _FCA_ATOM,
    _NO_TREE,
    description=(
        "Full counter-atomicity: every write pairs its data line with a "
        "counter-line write through the ready-bit protocol (Section 3.2.2)."
    ),
)

SCA = compose(
    _SPLIT_CC,
    _SCA_ATOM,
    _NO_TREE,
    description=(
        "Selective counter-atomicity: only CounterAtomic writes pair; "
        "other counters coalesce in the counter cache until "
        "counter_cache_writeback() (Section 4)."
    ),
)

FCA_BMT = compose(
    _SPLIT_CC,
    _FCA_ATOM,
    _EAGER,
    description=(
        "FCA plus a Bonsai Merkle Tree over the counter region, eagerly "
        "persisted: every counter persist drives its leaf-to-root path "
        "into the tree write queue (Freij-style strict ordering)."
    ),
)

SCA_BMT = compose(
    _SPLIT_CC,
    _SCA_ATOM,
    _LAZY,
    description=(
        "SCA plus a Bonsai Merkle Tree over the counter region, lazily "
        "persisted: dirty tree nodes coalesce on chip and flush at "
        "counter_cache_writeback() and node-cache evictions, mirroring "
        "SCA's counter relaxation."
    ),
)

#: Mode ablations: same base design, the other persistence discipline.
FCA_BMT_LAZY = compose(
    _SPLIT_CC,
    _FCA_ATOM,
    _LAZY,
    description="FCA with a lazily persisted counter tree (mode ablation).",
)

SCA_BMT_EAGER = compose(
    _SPLIT_CC,
    _SCA_ATOM,
    _EAGER,
    description="SCA with an eagerly persisted counter tree (mode ablation).",
)

#: The designs evaluated in the paper's figures, in plot order.
ALL_DESIGNS: Tuple[DesignPolicy, ...] = (
    NO_ENCRYPTION,
    IDEAL,
    CO_LOCATED,
    CO_LOCATED_CC,
    FCA,
    SCA,
)

#: The four designs of Figures 12/14 (normalized to no-encryption).
BASELINE_DESIGNS: Tuple[DesignPolicy, ...] = (SCA, FCA, CO_LOCATED, CO_LOCATED_CC)

#: The integrity-verified variants (kept out of ALL_DESIGNS so the
#: paper-figure sweeps are unchanged; campaigns and the integrity
#: benchmarks opt in by name or via ``list_designs(include_integrity=True)``).
INTEGRITY_DESIGNS: Tuple[DesignPolicy, ...] = (
    FCA_BMT,
    SCA_BMT,
    FCA_BMT_LAZY,
    SCA_BMT_EAGER,
)

_BY_NAME: Dict[str, DesignPolicy] = {d.name: d for d in ALL_DESIGNS}
_BY_NAME[UNSAFE.name] = UNSAFE
for _design in INTEGRITY_DESIGNS:
    _BY_NAME[_design.name] = _design


def integrity_variant(base: str, mode: Optional[str] = None) -> str:
    """Name of the +bmt variant of ``base`` in the requested mode.

    The variant name is re-derived from the base design's axes — no
    suffix surgery — so passing an already-suffixed variant name as
    ``base`` is idempotent (its mode is re-resolved from ``mode``).
    """
    policy = get_design(base)
    effective = mode or policy.atomicity.native_tree_mode
    if policy.atomicity.native_tree_mode is None or effective is None:
        bases = sorted(
            d.name
            for d in _BY_NAME.values()
            if d.atomicity.native_tree_mode is not None and not d.integrity.tree
        )
        raise ConfigurationError(
            "no integrity-tree variant of design %r (mode %r); "
            "integrity designs exist for: %s" % (base, mode, ", ".join(bases))
        )
    name = design_name(policy.layout, policy.atomicity, IntegritySpec(effective))
    if name not in _BY_NAME:
        raise ConfigurationError(
            "integrity variant %r of design %r is not registered" % (name, base)
        )
    return name


def get_design(name: str) -> DesignPolicy:
    """Look up a design by its evaluation name."""
    try:
        return _BY_NAME[name]
    except KeyError:
        raise ConfigurationError(
            "unknown design %r; available: %s" % (name, ", ".join(sorted(_BY_NAME)))
        ) from None


def list_designs(
    include_unsafe: bool = False, include_integrity: bool = False
) -> List[str]:
    """Names of all designs in evaluation order.

    ``include_integrity`` appends each listed design's ``+bmt``
    variants (derived from the registry, in registration order), so
    the tree designs are treated consistently with their bases.
    """
    names = [d.name for d in ALL_DESIGNS]
    if include_unsafe:
        names.append(UNSAFE.name)
    if include_integrity:
        listed = set(names)
        for design in INTEGRITY_DESIGNS:
            base = design_name(design.layout, design.atomicity, _NO_TREE)
            if base in listed:
                names.append(design.name)
    return names
