"""Plain-text table rendering for benchmark reports."""

from __future__ import annotations

from typing import Iterable, List, Sequence


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: str = "",
) -> str:
    """Render rows as a monospace table like the paper's result tables.

    Numeric cells are right-aligned and floats are shown with three
    decimals, which is enough resolution for normalized runtimes.
    """
    rendered_rows: List[List[str]] = []
    for row in rows:
        rendered: List[str] = []
        for cell in row:
            if isinstance(cell, float):
                rendered.append("%.3f" % cell)
            else:
                rendered.append(str(cell))
        rendered_rows.append(rendered)

    widths = [len(h) for h in headers]
    for row in rendered_rows:
        if len(row) != len(headers):
            raise ValueError("row width does not match headers")
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))

    def render_line(cells: Sequence[str]) -> str:
        return " | ".join(cell.ljust(widths[i]) for i, cell in enumerate(cells))

    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append(render_line(list(headers)))
    lines.append("-+-".join("-" * w for w in widths))
    for row in rendered_rows:
        lines.append(render_line(row))
    return "\n".join(lines)
