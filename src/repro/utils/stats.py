"""Lightweight statistics accumulators for simulator counters."""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Optional, Tuple


class Counter:
    """A named monotonically increasing counter."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def add(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError("counters only move forward")
        self.value += amount

    def reset(self) -> None:
        self.value = 0

    def __int__(self) -> int:
        return self.value

    def __repr__(self) -> str:
        return "Counter(%s=%d)" % (self.name, self.value)


class RunningMean:
    """Streaming mean/variance (Welford's algorithm)."""

    __slots__ = ("count", "_mean", "_m2", "minimum", "maximum")

    def __init__(self) -> None:
        self.count = 0
        self._mean = 0.0
        self._m2 = 0.0
        self.minimum = math.inf
        self.maximum = -math.inf

    def add(self, value: float) -> None:
        self.count += 1
        delta = value - self._mean
        self._mean += delta / self.count
        self._m2 += delta * (value - self._mean)
        if value < self.minimum:
            self.minimum = value
        if value > self.maximum:
            self.maximum = value

    @property
    def mean(self) -> float:
        return self._mean if self.count else 0.0

    @property
    def variance(self) -> float:
        if self.count < 2:
            return 0.0
        return self._m2 / (self.count - 1)

    @property
    def stddev(self) -> float:
        return math.sqrt(self.variance)

    def merge(self, other: "RunningMean") -> None:
        """Fold another accumulator into this one."""
        if other.count == 0:
            return
        if self.count == 0:
            self.count = other.count
            self._mean = other._mean
            self._m2 = other._m2
            self.minimum = other.minimum
            self.maximum = other.maximum
            return
        total = self.count + other.count
        delta = other._mean - self._mean
        self._m2 += other._m2 + delta * delta * self.count * other.count / total
        self._mean += delta * other.count / total
        self.count = total
        self.minimum = min(self.minimum, other.minimum)
        self.maximum = max(self.maximum, other.maximum)


class Histogram:
    """A fixed-bucket histogram for latencies and queue depths."""

    def __init__(self, bucket_edges: Iterable[float]) -> None:
        self.edges: List[float] = sorted(bucket_edges)
        if not self.edges:
            raise ValueError("histogram needs at least one bucket edge")
        # One bucket per edge plus an overflow bucket.
        self.buckets: List[int] = [0] * (len(self.edges) + 1)
        self.total = 0

    def add(self, value: float) -> None:
        self.total += 1
        for index, edge in enumerate(self.edges):
            if value <= edge:
                self.buckets[index] += 1
                return
        self.buckets[-1] += 1

    def fraction_at_or_below(self, edge: float) -> float:
        """Fraction of samples at or below ``edge`` (must be an edge)."""
        if self.total == 0:
            return 0.0
        covered = 0
        for index, bucket_edge in enumerate(self.edges):
            if bucket_edge <= edge:
                covered += self.buckets[index]
        return covered / self.total

    def as_dict(self) -> Dict[str, int]:
        labels = ["<=%g" % edge for edge in self.edges] + [">%g" % self.edges[-1]]
        return dict(zip(labels, self.buckets))


def geometric_mean(values: Iterable[float]) -> float:
    """Geometric mean; the paper's normalized averages use this shape."""
    values = list(values)
    if not values:
        raise ValueError("geometric mean of empty sequence")
    if any(v <= 0 for v in values):
        raise ValueError("geometric mean requires positive values")
    return math.exp(sum(math.log(v) for v in values) / len(values))


def weighted_mean(pairs: Iterable[Tuple[float, float]]) -> float:
    """Arithmetic mean of (value, weight) pairs."""
    total_weight = 0.0
    total = 0.0
    for value, weight in pairs:
        total += value * weight
        total_weight += weight
    if total_weight == 0:
        raise ValueError("weighted mean requires non-zero total weight")
    return total / total_weight
