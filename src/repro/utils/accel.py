"""Optional numpy accelerator loader.

The simulator is pure Python by contract — every vectorized kernel has
a scalar fallback that is the bit-for-bit oracle — but when numpy is
importable the crypto batch paths (:mod:`repro.crypto.aes`,
:mod:`repro.crypto.otp`) use it for order-of-magnitude throughput.

Set ``REPRO_DISABLE_NUMPY=1`` to force the pure-Python paths even when
numpy is installed; CI runs the tier-1 suite both ways.  The decision
is taken once at import so hot paths can branch on a plain module
attribute instead of re-checking the environment.
"""

from __future__ import annotations

import os

np = None
if os.environ.get("REPRO_DISABLE_NUMPY", "") not in ("", "0"):
    NUMPY_DISABLED = True
else:
    NUMPY_DISABLED = False
    try:  # pragma: no cover - exercised via REPRO_DISABLE_NUMPY CI leg
        import numpy as np  # type: ignore[no-redef]
    except ImportError:
        np = None

HAVE_NUMPY = np is not None


def numpy_or_none():
    """The loaded numpy module, or None (absent or disabled)."""
    return np
