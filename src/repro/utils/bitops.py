"""Bit- and address-manipulation helpers used throughout the simulator."""

from __future__ import annotations

import struct

from ..errors import AlignmentError

_U64 = struct.Struct("<Q")

MASK64 = (1 << 64) - 1


def is_power_of_two(value: int) -> bool:
    """Return True if ``value`` is a positive power of two."""
    return value > 0 and (value & (value - 1)) == 0


def log2_int(value: int) -> int:
    """Exact integer log2; raises ValueError for non powers of two."""
    if not is_power_of_two(value):
        raise ValueError("%d is not a power of two" % value)
    return value.bit_length() - 1


def align_down(address: int, granularity: int) -> int:
    """Round ``address`` down to a multiple of ``granularity``."""
    return address - (address % granularity)


def align_up(address: int, granularity: int) -> int:
    """Round ``address`` up to a multiple of ``granularity``."""
    remainder = address % granularity
    if remainder == 0:
        return address
    return address + granularity - remainder


def is_aligned(address: int, granularity: int) -> bool:
    """Return True if ``address`` is a multiple of ``granularity``."""
    return address % granularity == 0


def require_aligned(address: int, granularity: int, what: str = "address") -> None:
    """Raise :class:`AlignmentError` unless ``address`` is aligned."""
    if address % granularity != 0:
        raise AlignmentError(
            "%s 0x%x is not %d-byte aligned" % (what, address, granularity)
        )


def u64_to_bytes(value: int) -> bytes:
    """Little-endian 8-byte encoding of an unsigned 64-bit integer."""
    return _U64.pack(value & MASK64)


def bytes_to_u64(data: bytes, offset: int = 0) -> int:
    """Decode an unsigned 64-bit little-endian integer from ``data``."""
    return _U64.unpack_from(data, offset)[0]


def rotl64(value: int, amount: int) -> int:
    """Rotate a 64-bit value left by ``amount`` bits."""
    amount %= 64
    value &= MASK64
    return ((value << amount) | (value >> (64 - amount))) & MASK64


def rotr64(value: int, amount: int) -> int:
    """Rotate a 64-bit value right by ``amount`` bits."""
    return rotl64(value, 64 - (amount % 64))


def xor_bytes(left: bytes, right: bytes) -> bytes:
    """XOR two equal-length byte strings."""
    if len(left) != len(right):
        raise ValueError("cannot XOR byte strings of different lengths")
    return bytes(a ^ b for a, b in zip(left, right))
