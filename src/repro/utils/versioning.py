"""Source-tree fingerprinting shared by caching and snapshot layers.

Result caches, campaign journals and simulation snapshots are only
valid for the exact simulator sources that produced them.  They all key
their artifacts on :func:`code_version`, a digest of every ``.py`` file
in the ``repro`` package: any code change invalidates every cached
result — correctness beats reuse.

This lives in ``repro.utils`` (not ``repro.bench``) because the crash
and sim layers need it too, and they must not depend on the bench
layer.
"""

from __future__ import annotations

import hashlib
import os
from typing import Optional

__all__ = ["code_version"]

_code_version_cache: Optional[str] = None


def code_version() -> str:
    """Digest of the ``repro`` package sources.

    Any change to the simulator's code changes this digest and thereby
    invalidates every cached sweep result, campaign journal entry and
    snapshot written under the previous sources.
    """
    global _code_version_cache
    if _code_version_cache is not None:
        return _code_version_cache
    package_dir = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    digest = hashlib.sha256()
    for root, dirs, files in sorted(os.walk(package_dir)):
        dirs[:] = sorted(d for d in dirs if d != "__pycache__")
        for name in sorted(files):
            if not name.endswith(".py"):
                continue
            path = os.path.join(root, name)
            digest.update(os.path.relpath(path, package_dir).encode())
            with open(path, "rb") as stream:
                digest.update(stream.read())
    _code_version_cache = digest.hexdigest()[:16]
    return _code_version_cache
