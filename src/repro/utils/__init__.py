"""Small shared utilities: bit manipulation, statistics, formatting."""

from .bitops import (
    align_down,
    align_up,
    bytes_to_u64,
    is_aligned,
    is_power_of_two,
    log2_int,
    u64_to_bytes,
)
from .stats import Counter, Histogram, RunningMean, geometric_mean
from .tables import format_table
from .versioning import code_version

__all__ = [
    "align_down",
    "align_up",
    "bytes_to_u64",
    "is_aligned",
    "is_power_of_two",
    "log2_int",
    "u64_to_bytes",
    "Counter",
    "Histogram",
    "RunningMean",
    "geometric_mean",
    "format_table",
    "code_version",
]
