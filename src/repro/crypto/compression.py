"""Counter-line compression (the paper's §6.3.3 extension).

The paper notes the lifetime/traffic improvement "will be higher if we
consider compressing the counters using techniques proposed by some
prior works" (base-delta-immediate-style compression).  Counters in one
counter line cover eight *adjacent* data lines, which are often written
close together in time — so their values cluster tightly around a base,
making them highly compressible.

Scheme implemented here (base + delta):

* base  = the minimum counter in the line (8 bytes),
* deltas = the seven remaining counters relative to the base, packed at
  the smallest width in {1, 2, 4, 8} bytes that fits the largest delta,
* a 1-byte header encodes the delta width.

A counter line therefore compresses to ``9 + 7 * width`` bytes
(10-bytes best case vs 64 uncompressed), and always round-trips
exactly.  The ablation bench measures how much counter write traffic
this would save on real runs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from ..config import COUNTERS_PER_LINE
from ..errors import CryptoError

_WIDTHS = (1, 2, 4, 8)
_HEADER_BYTES = 1
_BASE_BYTES = 8


@dataclass(frozen=True)
class CompressedCounterLine:
    """One compressed counter line."""

    base: int
    delta_width: int
    payload: bytes

    @property
    def size_bytes(self) -> int:
        return len(self.payload)


def _width_for(max_delta: int) -> int:
    for width in _WIDTHS:
        if max_delta < (1 << (8 * width)):
            return width
    raise CryptoError("counter delta does not fit any width")


def compress_counter_line(counters: Sequence[int]) -> CompressedCounterLine:
    """Compress eight counters to base + packed deltas."""
    if len(counters) != COUNTERS_PER_LINE:
        raise CryptoError(
            "a counter line holds %d counters, got %d"
            % (COUNTERS_PER_LINE, len(counters))
        )
    if any(value < 0 for value in counters):
        raise CryptoError("counters cannot be negative")
    base = min(counters)
    deltas = [value - base for value in counters]
    width = _width_for(max(deltas))
    payload = bytearray()
    payload.append(width)
    payload.extend(base.to_bytes(_BASE_BYTES, "little"))
    for delta in deltas:
        payload.extend(delta.to_bytes(width, "little"))
    return CompressedCounterLine(
        base=base, delta_width=width, payload=bytes(payload)
    )


def decompress_counter_line(compressed: CompressedCounterLine) -> Tuple[int, ...]:
    """Exact inverse of :func:`compress_counter_line`."""
    payload = compressed.payload
    width = payload[0]
    if width not in _WIDTHS:
        raise CryptoError("corrupt compressed counter line (width %d)" % width)
    base = int.from_bytes(payload[1 : 1 + _BASE_BYTES], "little")
    counters: List[int] = []
    offset = _HEADER_BYTES + _BASE_BYTES
    for _ in range(COUNTERS_PER_LINE):
        counters.append(base + int.from_bytes(payload[offset : offset + width], "little"))
        offset += width
    if offset != len(payload):
        raise CryptoError("corrupt compressed counter line (trailing bytes)")
    return tuple(counters)


def compressed_size_bytes(counters: Sequence[int]) -> int:
    """Size one counter line compresses to (without materializing it)."""
    if len(counters) != COUNTERS_PER_LINE:
        raise CryptoError("a counter line holds %d counters" % COUNTERS_PER_LINE)
    base = min(counters)
    width = _width_for(max(value - base for value in counters))
    return _HEADER_BYTES + _BASE_BYTES + COUNTERS_PER_LINE * width


def traffic_savings(counter_lines: Sequence[Sequence[int]]) -> float:
    """Fraction of counter write bytes saved by compression.

    0.0 = no savings, 0.8 = compressed traffic is a fifth of raw.
    """
    if not counter_lines:
        return 0.0
    raw = len(counter_lines) * COUNTERS_PER_LINE * 8
    compressed = sum(compressed_size_bytes(line) for line in counter_lines)
    return 1.0 - compressed / raw
