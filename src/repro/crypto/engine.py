"""The encryption engine in the memory controller.

Combines the OTP cipher, the counter cache and the architectural counter
store, and exposes the operations the NVM coordinator needs:

* ``encrypt_for_write``: pick the next counter, update the counter
  cache, produce ciphertext;
* ``decrypt_for_read``: generate the pad (from the cached counter when
  possible) and XOR with the fetched line;
* ``counter fill / writeback`` plumbing with precise miss accounting.

Latency (the 40 ns of Table 2) is *modeled*, not spent: the engine
returns the information the timing model needs (was the counter cached?)
and the memory controller schedules the overlap accordingly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from ..config import CACHE_LINE_SIZE, COUNTERS_PER_LINE, EncryptionConfig, CounterCacheConfig
from ..errors import CryptoError
from .counter_cache import GROUP_SPAN, CounterCache
from .counters import CounterStore
from .otp import OTPCipher, make_block_cipher


@dataclass(slots=True)
class WriteEncryption:
    """Result of encrypting one line for writeback."""

    address: int
    counter: int
    ciphertext: Optional[bytes]
    #: True if the counter lookup hit the counter cache (no fill needed).
    counter_cache_hit: bool
    #: Dirty counter line evicted by a fill, to be written back: maps to
    #: (group base data address, eight counters), or None.
    evicted_counter_line: Optional[Tuple[int, Tuple[int, ...]]]


@dataclass(slots=True)
class ReadDecryption:
    """Result of decrypting one line on a read fill."""

    address: int
    counter: int
    plaintext: Optional[bytes]
    counter_cache_hit: bool
    evicted_counter_line: Optional[Tuple[int, Tuple[int, ...]]]


class EncryptionEngine:
    """Counter-mode encryption engine with a global counter source.

    The paper increments a *global* counter per write and stores it as
    the line's counter; monotonicity across all lines is what makes each
    (address, counter) pair unique.
    """

    def __init__(
        self,
        config: EncryptionConfig,
        cache_config: CounterCacheConfig,
        counter_store: CounterStore,
        functional: bool = True,
    ) -> None:
        self.config = config
        self.cipher = OTPCipher(make_block_cipher(config))
        self.counter_cache = CounterCache(cache_config)
        self.counter_store = counter_store
        self.functional = functional
        self._global_counter = 0
        self.latency_ns = config.latency_ns

    # -- counter management -------------------------------------------------

    def next_counter(self) -> int:
        """Increment and return the global write counter."""
        self._global_counter += 1
        return self._global_counter

    def fill_counter_line(
        self, data_address: int
    ) -> Optional[Tuple[int, Tuple[int, ...]]]:
        """Fetch the covering counter line from NVM into the cache.

        Returns the evicted dirty line (if any) that must be written
        back to NVM.  The caller charges the fill's read traffic.
        """
        counters = self.counter_store.read_counter_line(data_address)
        return self.counter_cache.fill(data_address, counters)

    # -- write path -----------------------------------------------------------

    def encrypt_for_write(
        self, address: int, plaintext: Optional[bytes]
    ) -> WriteEncryption:
        """Encrypt a line being written back to NVM.

        Follows Section 5.2.1: generate a new counter from the global
        counter, update the counter cache (allocating on miss), build
        the OTP and XOR.  In timing-only mode ``plaintext`` may be None
        and no ciphertext is produced.
        """
        if plaintext is not None and len(plaintext) != CACHE_LINE_SIZE:
            raise CryptoError("write payload must be one %d B line" % CACHE_LINE_SIZE)
        # Hot path: one cache-set probe serves both the lookup_for_write
        # and the update (same stat bumps and LRU ticks as the composed
        # calls — one touch for the lookup hit, one for the update).
        cache = self.counter_cache
        group = address & cache._group_mask
        cache_set = cache._sets[(group // GROUP_SPAN) & cache._set_mask]
        entry = cache_set.get(group)
        evicted = None
        hit = entry is not None
        if hit:
            cache.stats.write_hits += 1
            cache._tick += 1
            entry.lru_tick = cache._tick
        else:
            # Write miss: no stall, but fetch the line so sibling
            # counters merge correctly, then retry the update.
            cache.stats.write_misses += 1
            evicted = self.fill_counter_line(address)
            entry = cache_set.get(group)
            if entry is None:
                raise CryptoError("counter cache update failed after fill")
        new_counter = self._global_counter + 1
        self._global_counter = new_counter
        entry.counters[(address // CACHE_LINE_SIZE) % COUNTERS_PER_LINE] = new_counter
        entry.dirty = True
        cache._tick += 1
        entry.lru_tick = cache._tick
        ciphertext = None
        if self.functional and plaintext is not None:
            ciphertext = self.cipher.encrypt(address, new_counter, plaintext)
        return WriteEncryption(
            address=address,
            counter=new_counter,
            ciphertext=ciphertext,
            counter_cache_hit=hit,
            evicted_counter_line=evicted,
        )

    # -- read path ------------------------------------------------------------

    def decrypt_for_read(
        self, address: int, ciphertext: Optional[bytes]
    ) -> ReadDecryption:
        """Decrypt a line fetched from NVM.

        On a counter-cache hit the OTP generation overlaps the memory
        read (the timing model checks ``counter_cache_hit``); on a miss
        the covering counter line is fetched from the architectural
        store first.
        """
        counter = self.counter_cache.lookup_for_read(address)
        hit = counter is not None
        evicted = None
        if counter is None:
            evicted = self.fill_counter_line(address)
            counter = self.counter_cache.lookup_for_read(address)
            if counter is None:
                raise CryptoError("counter missing after fill at 0x%x" % address)
            # The retry lookup double-counted one access; undo it so
            # miss-rate statistics reflect one logical access per read.
            self.counter_cache.stats.read_hits -= 1
        plaintext = None
        if self.functional and ciphertext is not None:
            plaintext = self.cipher.decrypt(address, counter, ciphertext)
        return ReadDecryption(
            address=address,
            counter=counter,
            plaintext=plaintext,
            counter_cache_hit=hit,
            evicted_counter_line=evicted,
        )

    # -- persistence helpers ----------------------------------------------------

    def persist_counter_line(self, group_base: int, counters: Tuple[int, ...]) -> None:
        """Write a counter line into the architectural store (NVM)."""
        self.counter_store.write_counter_line(group_base, counters)

    @property
    def global_counter(self) -> int:
        return self._global_counter

    # -- checkpoint state --------------------------------------------------------

    def get_state(self) -> dict:
        """Checkpoint state: the global counter and the counter cache.

        The counter store is owned (and snapshotted) by the memory
        controller; the cipher is pure and derived from config.
        """
        return {
            "global_counter": self._global_counter,
            "counter_cache": self.counter_cache.get_state(),
        }

    def set_state(self, state: dict) -> None:
        self._global_counter = state["global_counter"]
        self.counter_cache.set_state(state["counter_cache"])
