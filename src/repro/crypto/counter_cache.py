"""The on-chip counter cache.

Counters must be available for every read (to generate the OTP while the
data line is in flight) and every write (to pick the next counter).  The
paper buffers them in a set-associative, write-back counter cache (1 MB
per core, 16-way in Table 2).  Each cache entry covers one 64 B counter
line, i.e. eight consecutive data lines' counters.

This cache is *volatile*: its contents vanish on a power failure, which
is precisely why dirty counters that were never written back can strand
encrypted data in NVM (the paper's motivating failure).
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..config import CACHE_LINE_SIZE, COUNTERS_PER_LINE, CounterCacheConfig
from ..errors import AddressError
from ..utils.bitops import align_down

#: A data-line group: the 8 data lines sharing one counter line.
GROUP_SPAN = CACHE_LINE_SIZE * COUNTERS_PER_LINE


@dataclass
class CounterCacheStats:
    """Hit/miss/writeback accounting for the counter cache."""

    read_hits: int = 0
    read_misses: int = 0
    write_hits: int = 0
    write_misses: int = 0
    fills: int = 0
    writebacks: int = 0
    explicit_writebacks: int = 0
    evictions: int = 0
    dirty_evictions: int = 0

    @property
    def accesses(self) -> int:
        return self.read_hits + self.read_misses + self.write_hits + self.write_misses

    @property
    def miss_rate(self) -> float:
        accesses = self.accesses
        if accesses == 0:
            return 0.0
        return (self.read_misses + self.write_misses) / accesses

    def as_dict(self) -> Dict[str, float]:
        return {
            "read_hits": self.read_hits,
            "read_misses": self.read_misses,
            "write_hits": self.write_hits,
            "write_misses": self.write_misses,
            "fills": self.fills,
            "writebacks": self.writebacks,
            "explicit_writebacks": self.explicit_writebacks,
            "evictions": self.evictions,
            "dirty_evictions": self.dirty_evictions,
            "miss_rate": self.miss_rate,
        }


class _Entry:
    """One counter-cache line: eight counters plus metadata."""

    __slots__ = ("group_base", "counters", "dirty", "lru_tick")

    def __init__(self, group_base: int, counters: List[int], lru_tick: int) -> None:
        self.group_base = group_base
        self.counters = counters
        self.dirty = False
        self.lru_tick = lru_tick


class CounterCache:
    """Set-associative write-back cache of counter lines (true LRU)."""

    def __init__(self, config: CounterCacheConfig) -> None:
        self.config = config
        self.num_sets = config.num_sets
        self.ways = config.ways
        self._sets: List[Dict[int, _Entry]] = [dict() for _ in range(self.num_sets)]
        self._tick = 0
        self.stats = CounterCacheStats()
        # num_sets is a power of two (enforced by CacheConfig), so the
        # hot lookup path can use masks instead of modulo/divide.
        self._set_mask = self.num_sets - 1
        self._group_mask = ~(GROUP_SPAN - 1)

    # -- address helpers -------------------------------------------------

    @staticmethod
    def group_base(data_address: int) -> int:
        """Base data address of the 8-line group covering ``data_address``."""
        return align_down(data_address, GROUP_SPAN)

    def _set_index(self, group_base: int) -> int:
        return (group_base // GROUP_SPAN) % self.num_sets

    def _slot(self, data_address: int) -> int:
        return (data_address // CACHE_LINE_SIZE) % COUNTERS_PER_LINE

    # -- lookups ----------------------------------------------------------

    def _find(self, group_base: int) -> Optional[_Entry]:
        return self._sets[self._set_index(group_base)].get(group_base)

    def contains(self, data_address: int) -> bool:
        """True if the counter for ``data_address`` is cached."""
        return self._find(self.group_base(data_address)) is not None

    def is_dirty(self, data_address: int) -> bool:
        """True if the covering counter line is cached and dirty."""
        entry = self._find(self.group_base(data_address))
        return entry is not None and entry.dirty

    def _touch(self, entry: _Entry) -> None:
        self._tick += 1
        entry.lru_tick = self._tick

    # -- read / write paths ------------------------------------------------

    def lookup_for_read(self, data_address: int) -> Optional[int]:
        """Counter for a read access; None on miss (caller must fill)."""
        # Hot path: every simulated load funnels through here, so the
        # group/set/slot arithmetic is inlined as mask-and-shift ops.
        group = data_address & self._group_mask
        entry = self._sets[(group // GROUP_SPAN) & self._set_mask].get(group)
        if entry is None:
            self.stats.read_misses += 1
            return None
        self.stats.read_hits += 1
        self._tick += 1
        entry.lru_tick = self._tick
        return entry.counters[(data_address // CACHE_LINE_SIZE) % COUNTERS_PER_LINE]

    def lookup_for_write(self, data_address: int) -> Optional[int]:
        """Current counter for a write access; None on miss.

        A write miss does *not* stall the pipeline (the new counter is
        generated regardless) but the covering line is fetched in the
        background so the other seven counters can be merged; the
        memory controller charges that fill's traffic.
        """
        group = data_address & self._group_mask
        entry = self._sets[(group // GROUP_SPAN) & self._set_mask].get(group)
        if entry is None:
            self.stats.write_misses += 1
            return None
        self.stats.write_hits += 1
        self._tick += 1
        entry.lru_tick = self._tick
        return entry.counters[(data_address // CACHE_LINE_SIZE) % COUNTERS_PER_LINE]

    def fill(
        self, data_address: int, counters: Tuple[int, ...]
    ) -> Optional[Tuple[int, Tuple[int, ...]]]:
        """Install the counter line covering ``data_address``.

        Returns ``(victim_group_base, victim_counters)`` if a dirty line
        was evicted and must be written back to NVM, else None.
        """
        if len(counters) != COUNTERS_PER_LINE:
            raise AddressError("counter line fill needs %d counters" % COUNTERS_PER_LINE)
        group = self.group_base(data_address)
        cache_set = self._sets[self._set_index(group)]
        existing = cache_set.get(group)
        if existing is not None:
            # Merge: cached (possibly newer) values win over memory.
            self._touch(existing)
            return None
        victim_payload: Optional[Tuple[int, Tuple[int, ...]]] = None
        if len(cache_set) >= self.ways:
            # Manual first-minimal scan: same victim as
            # min(cache_set, key=...) but without 'ways' lambda calls.
            values = iter(cache_set.values())
            victim = next(values)
            victim_tick = victim.lru_tick
            for candidate in values:
                candidate_tick = candidate.lru_tick
                if candidate_tick < victim_tick:
                    victim = candidate
                    victim_tick = candidate_tick
            del cache_set[victim.group_base]
            self.stats.evictions += 1
            if victim.dirty:
                self.stats.dirty_evictions += 1
                self.stats.writebacks += 1
                victim_payload = (victim.group_base, tuple(victim.counters))
        self._tick += 1
        cache_set[group] = _Entry(group, list(counters), self._tick)
        self.stats.fills += 1
        return victim_payload

    def update(self, data_address: int, new_counter: int) -> bool:
        """Store a freshly generated counter; returns True if it hit.

        On miss the caller is expected to fill the line first (write
        misses allocate), after which the update is retried.
        """
        group = data_address & self._group_mask
        entry = self._sets[(group // GROUP_SPAN) & self._set_mask].get(group)
        if entry is None:
            return False
        entry.counters[(data_address // CACHE_LINE_SIZE) % COUNTERS_PER_LINE] = new_counter
        entry.dirty = True
        self._tick += 1
        entry.lru_tick = self._tick
        return True

    # -- bulk paths --------------------------------------------------------

    def lookup_for_read_many(self, addresses: List[int]) -> List[Optional[int]]:
        """Bulk read probe: one call, many addresses.

        Equivalent to ``[self.lookup_for_read(a) for a in addresses]``
        — identical stats, LRU ticks and results — with the per-call
        overhead (attribute loads, method dispatch) amortized over the
        batch; used by trace prefetch analysis and the perf harness.
        """
        sets = self._sets
        group_mask = self._group_mask
        set_mask = self._set_mask
        stats = self.stats
        tick = self._tick
        out: List[Optional[int]] = []
        append = out.append
        for address in addresses:
            group = address & group_mask
            entry = sets[(group // GROUP_SPAN) & set_mask].get(group)
            if entry is None:
                stats.read_misses += 1
                append(None)
            else:
                stats.read_hits += 1
                tick += 1
                entry.lru_tick = tick
                append(entry.counters[(address // CACHE_LINE_SIZE) % COUNTERS_PER_LINE])
        self._tick = tick
        return out

    def fill_many(
        self, fills: List[Tuple[int, Tuple[int, ...]]]
    ) -> List[Tuple[int, Tuple[int, ...]]]:
        """Bulk install of counter lines (e.g. warm-up or replay).

        Applies :meth:`fill` per ``(data_address, counters)`` pair in
        order and returns the dirty victims that must be written back,
        in eviction order.
        """
        fill = self.fill
        victims: List[Tuple[int, Tuple[int, ...]]] = []
        for data_address, counters in fills:
            victim = fill(data_address, counters)
            if victim is not None:
                victims.append(victim)
        return victims

    def writeback_line(self, data_address: int) -> Optional[Tuple[int, Tuple[int, ...]]]:
        """``counter_cache_writeback()``: flush one dirty counter line.

        Cleans the line without invalidating it (mirrors clwb).  Returns
        ``(group_base, counters)`` when a writeback is generated, or
        None when the line is absent or already clean.
        """
        entry = self._find(self.group_base(data_address))
        if entry is None or not entry.dirty:
            return None
        entry.dirty = False
        self.stats.writebacks += 1
        self.stats.explicit_writebacks += 1
        return (entry.group_base, tuple(entry.counters))

    def dirty_lines(self) -> List[Tuple[int, Tuple[int, ...]]]:
        """All dirty counter lines (used by flush-all and debugging)."""
        payload: List[Tuple[int, Tuple[int, ...]]] = []
        for cache_set in self._sets:
            for entry in cache_set.values():
                if entry.dirty:
                    payload.append((entry.group_base, tuple(entry.counters)))
        payload.sort()
        return payload

    def invalidate_all(self) -> None:
        """Drop every entry: models the cache's volatility at power loss."""
        for cache_set in self._sets:
            cache_set.clear()

    def occupancy(self) -> int:
        """Number of valid entries across all sets."""
        return sum(len(s) for s in self._sets)

    # -- checkpoint state ----------------------------------------------------

    def get_state(self) -> Dict[str, object]:
        """Plain-container snapshot; set-dict order is preserved because
        LRU eviction breaks lru_tick ties by iteration order."""
        return {
            "tick": self._tick,
            "stats": dataclasses.asdict(self.stats),
            "sets": [
                [
                    (entry.group_base, list(entry.counters), entry.dirty, entry.lru_tick)
                    for entry in cache_set.values()
                ]
                for cache_set in self._sets
            ],
        }

    def set_state(self, state: Dict[str, object]) -> None:
        self._tick = state["tick"]
        self.stats = CounterCacheStats(**state["stats"])
        sets: List[Dict[int, _Entry]] = []
        for stored_set in state["sets"]:
            cache_set: Dict[int, _Entry] = {}
            for group_base, counters, dirty, lru_tick in stored_set:
                entry = _Entry(group_base, list(counters), lru_tick)
                entry.dirty = dirty
                cache_set[group_base] = entry
            sets.append(cache_set)
        self._sets = sets
