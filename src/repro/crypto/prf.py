"""Fast keyed pseudo-random function used as the simulation block cipher.

Pure-Python AES is roughly two orders of magnitude too slow for sweeps
over millions of memory events.  The simulator therefore defaults to a
SplitMix64-based keyed PRF with the same *interface and relevant
properties* as AES in counter mode:

* deterministic: the same (key, block) input always yields the same
  16-byte output, so encrypt-then-decrypt round-trips;
* input-sensitive: any change to the address or counter produces an
  unrelated pad, so decrypting with a stale counter yields garbage —
  the exact failure mode the paper's counter-atomicity prevents.

It is **not** cryptographically secure and is clearly labeled as a
simulation substitute (see DESIGN.md).
"""

from __future__ import annotations

import struct

from ..errors import CryptoError

_MASK64 = (1 << 64) - 1
_TWO_U64 = struct.Struct("<QQ")


def _splitmix64(state: int) -> int:
    """One SplitMix64 output step (public-domain mixing constants)."""
    state = (state + 0x9E3779B97F4A7C15) & _MASK64
    z = state
    z = ((z ^ (z >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    z = ((z ^ (z >> 27)) * 0x94D049BB133111EB) & _MASK64
    return z ^ (z >> 31)


class SplitMixPRF:
    """A keyed 128-bit block PRF built from two SplitMix64 lanes."""

    BLOCK_SIZE = 16

    def __init__(self, key: bytes) -> None:
        if len(key) != 16:
            raise CryptoError("SplitMixPRF requires a 16-byte key")
        self._key_lo, self._key_hi = _TWO_U64.unpack(key)

    def encrypt_block(self, block: bytes) -> bytes:
        """Map a 16-byte block to a 16-byte pseudo-random output."""
        if len(block) != 16:
            raise CryptoError("PRF block must be 16 bytes")
        lo, hi = _TWO_U64.unpack(block)
        # Mix both halves and the key into each output lane so that a
        # change anywhere in the input perturbs the whole output.
        mixed_lo = _splitmix64(lo ^ self._key_lo)
        mixed_hi = _splitmix64(hi ^ self._key_hi ^ mixed_lo)
        out_lo = _splitmix64(mixed_lo ^ (mixed_hi << 1 & _MASK64) ^ self._key_hi)
        out_hi = _splitmix64(mixed_hi ^ (out_lo >> 3) ^ self._key_lo)
        return _TWO_U64.pack(out_lo, out_hi)

    def encrypt_blocks(self, blocks) -> list:
        """Batched :meth:`encrypt_block` with the mixing inlined.

        Pad generation calls the PRF four times per 64 B line; binding
        the key halves and helpers once per batch shaves the attribute
        lookups off the per-block cost.
        """
        key_lo = self._key_lo
        key_hi = self._key_hi
        mix = _splitmix64
        unpack = _TWO_U64.unpack
        pack = _TWO_U64.pack
        out = []
        for block in blocks:
            if len(block) != 16:
                raise CryptoError("PRF block must be 16 bytes")
            lo, hi = unpack(block)
            mixed_lo = mix(lo ^ key_lo)
            mixed_hi = mix(hi ^ key_hi ^ mixed_lo)
            out_lo = mix(mixed_lo ^ (mixed_hi << 1 & _MASK64) ^ key_hi)
            out_hi = mix(mixed_hi ^ (out_lo >> 3) ^ key_lo)
            out.append(pack(out_lo, out_hi))
        return out
