"""Per-line integrity tags (MACs) for encrypted NVM lines.

The paper's counter-atomicity guarantees that decryption never *needs*
to fail; it does not give the controller a way to *detect* a failure
when a design is (or a bug makes it) inconsistent — a stale counter
silently yields garbage plaintext.  Secure-processor designs pair
counter-mode encryption with a per-line MAC for exactly this reason,
and the follow-on work to this paper (Osiris, ISCA/MICRO lineage) uses
those MACs to make counters *recoverable*: try candidate counters until
the MAC verifies.

This module provides the tag substrate:

    tag = PRF(tag_key, address || counter || ciphertext)[:8]

The tag binds the line's address, the counter version, and the stored
ciphertext, so a verifier can test a candidate counter without any
simulator ground truth — the property
:mod:`repro.crash.counter_recovery` exploits.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Optional

from ..config import CACHE_LINE_SIZE, EncryptionConfig
from ..errors import CryptoError
from .prf import SplitMixPRF

TAG_BYTES = 8

_HEADER = struct.Struct("<QQ")


def derive_tag_key(config: EncryptionConfig) -> bytes:
    """Derive an independent tag key from the encryption key."""
    mixer = SplitMixPRF(config.key)
    return mixer.encrypt_block(b"integrity-tag-ky")  # 16-byte domain label


class IntegrityEngine:
    """Computes and verifies per-line MACs."""

    def __init__(self, config: EncryptionConfig) -> None:
        self._prf = SplitMixPRF(derive_tag_key(config))

    def tag(self, address: int, counter: int, ciphertext: bytes) -> bytes:
        """MAC over (address, counter, ciphertext)."""
        if len(ciphertext) != CACHE_LINE_SIZE:
            raise CryptoError("integrity tags cover whole %d B lines" % CACHE_LINE_SIZE)
        state = _HEADER.pack(address, counter)
        # Absorb the ciphertext in 16-byte blocks through the PRF,
        # chaining each output into the next input (CBC-MAC shape; fine
        # for fixed-length messages under an independent key).
        digest = self._prf.encrypt_block(state)
        for offset in range(0, CACHE_LINE_SIZE, 16):
            block = bytes(
                a ^ b for a, b in zip(digest, ciphertext[offset : offset + 16])
            )
            digest = self._prf.encrypt_block(block)
        return digest[:TAG_BYTES]

    def verify(
        self, address: int, counter: int, ciphertext: bytes, tag: bytes
    ) -> bool:
        """Constant-shape verification of a stored tag."""
        if len(tag) != TAG_BYTES:
            raise CryptoError("integrity tags are %d bytes" % TAG_BYTES)
        expected = self.tag(address, counter, ciphertext)
        result = 0
        for a, b in zip(expected, tag):
            result |= a ^ b
        return result == 0


@dataclass(frozen=True)
class TaggedLine:
    """A ciphertext line together with its integrity tag."""

    address: int
    ciphertext: bytes
    tag: bytes

    def verify_with(self, engine: IntegrityEngine, counter: int) -> bool:
        return engine.verify(self.address, counter, self.ciphertext, self.tag)
