"""The one-time-pad (OTP) construction of counter-mode encryption.

A 64 B cache line needs four 16 B pad blocks.  Each pad block is
``En(address || counter || block_index, key)`` so that every block of
every line version gets a unique pad (paper Eq. 1-3).
"""

from __future__ import annotations

import struct
from collections import OrderedDict
from typing import Dict, List, Protocol, Union

from ..config import CACHE_LINE_SIZE, EncryptionConfig
from ..errors import CryptoError
from .aes import AES128
from .prf import SplitMixPRF

_SEED_BLOCK = struct.Struct("<QIHH")  # address, counter-low, counter-high, block index


class BlockCipher(Protocol):
    """Anything providing a 16-byte forward permutation/PRF."""

    BLOCK_SIZE: int

    def encrypt_block(self, block: bytes) -> bytes:  # pragma: no cover - protocol
        ...


def make_block_cipher(config: EncryptionConfig) -> BlockCipher:
    """Instantiate the cipher selected by the configuration."""
    if config.cipher == "aes":
        return AES128(config.key)
    if config.cipher == "prf":
        return SplitMixPRF(config.key)
    raise CryptoError("unknown cipher %r" % config.cipher)


class OTPCipher:
    """Counter-mode line encryption: pad generation + XOR.

    The pad depends on (line address, counter); a mismatch between the
    counter used to encrypt and the counter used to decrypt yields
    garbage, which is what the paper's Eq. 4 expresses.
    """

    def __init__(self, cipher: BlockCipher, line_size: int = CACHE_LINE_SIZE) -> None:
        if line_size % cipher.BLOCK_SIZE != 0:
            raise CryptoError("line size must be a multiple of the cipher block size")
        self._cipher = cipher
        self.line_size = line_size
        self._blocks_per_line = line_size // cipher.BLOCK_SIZE
        # Pad cache: (address, counter) -> pad, LRU-bounded.  Counter-mode
        # reuses the same pad for encrypt and decrypt, so this is a pure
        # memoization; eviction drops only the least recently used pad
        # instead of the whole cache.
        self._pad_cache: "OrderedDict[tuple, bytes]" = OrderedDict()
        self._pad_cache_limit = 4096
        self.pad_hits = 0
        self.pad_misses = 0
        self.pad_evictions = 0

    @property
    def pad_cache_stats(self) -> Dict[str, int]:
        """Hit/miss/eviction counters of the pad memoization cache."""
        return {
            "hits": self.pad_hits,
            "misses": self.pad_misses,
            "evictions": self.pad_evictions,
            "entries": len(self._pad_cache),
            "limit": self._pad_cache_limit,
        }

    def pad(self, address: int, counter: int) -> bytes:
        """Generate the one-time pad for (address, counter)."""
        key = (address, counter)
        cache = self._pad_cache
        cached = cache.get(key)
        if cached is not None:
            self.pad_hits += 1
            cache.move_to_end(key)
            return cached
        self.pad_misses += 1
        counter_low = counter & 0xFFFFFFFF
        counter_high = (counter >> 32) & 0xFFFF
        pack = _SEED_BLOCK.pack
        seeds = [
            pack(address, counter_low, counter_high, block_index)
            for block_index in range(self._blocks_per_line)
        ]
        encrypt_batch = getattr(self._cipher, "encrypt_blocks", None)
        if encrypt_batch is not None:
            blocks = encrypt_batch(seeds)
        else:
            blocks = [self._cipher.encrypt_block(seed) for seed in seeds]
        pad = b"".join(blocks)
        while len(cache) >= self._pad_cache_limit:
            cache.popitem(last=False)
            self.pad_evictions += 1
        cache[key] = pad
        return pad

    def encrypt(self, address: int, counter: int, plaintext: bytes) -> bytes:
        """Encrypt one line: ``pad(address, counter) XOR plaintext``.

        Counter 0 is reserved to mean "stored in the clear": it is the
        architectural state of never-written lines, whose contents read
        as zeroes without any pad.  The encryption engine's global
        counter starts at 1, so real writes never use it.
        """
        if len(plaintext) != self.line_size:
            raise CryptoError(
                "plaintext must be %d bytes, got %d" % (self.line_size, len(plaintext))
            )
        if counter == 0:
            return plaintext
        pad = self.pad(address, counter)
        return _xor(pad, plaintext)

    def decrypt(self, address: int, counter: int, ciphertext: bytes) -> bytes:
        """Decrypt one line; correct only if ``counter`` matches encryption."""
        if len(ciphertext) != self.line_size:
            raise CryptoError(
                "ciphertext must be %d bytes, got %d" % (self.line_size, len(ciphertext))
            )
        if counter == 0:
            return ciphertext
        pad = self.pad(address, counter)
        return _xor(pad, ciphertext)


def _xor(left: bytes, right: bytes) -> bytes:
    """XOR two equal-length byte strings as one big-integer operation.

    For 64 B lines this is an order of magnitude faster than a per-byte
    generator: CPython performs the XOR over 30-bit limbs in C.
    """
    return (
        int.from_bytes(left, "little") ^ int.from_bytes(right, "little")
    ).to_bytes(len(left), "little")


def _xor_reference(left: bytes, right: bytes) -> bytes:
    """Per-byte reference XOR (oracle for tests and the perf harness)."""
    return bytes(a ^ b for a, b in zip(left, right))


def encrypt_line(
    config_or_cipher: Union[EncryptionConfig, OTPCipher],
    address: int,
    counter: int,
    plaintext: bytes,
) -> bytes:
    """Convenience wrapper: encrypt one line with a config or cipher."""
    cipher = _coerce(config_or_cipher)
    return cipher.encrypt(address, counter, plaintext)


def decrypt_line(
    config_or_cipher: Union[EncryptionConfig, OTPCipher],
    address: int,
    counter: int,
    ciphertext: bytes,
) -> bytes:
    """Convenience wrapper: decrypt one line with a config or cipher."""
    cipher = _coerce(config_or_cipher)
    return cipher.decrypt(address, counter, ciphertext)


def _coerce(config_or_cipher: Union[EncryptionConfig, OTPCipher]) -> OTPCipher:
    if isinstance(config_or_cipher, OTPCipher):
        return config_or_cipher
    return OTPCipher(make_block_cipher(config_or_cipher))
