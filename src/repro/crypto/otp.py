"""The one-time-pad (OTP) construction of counter-mode encryption.

A 64 B cache line needs four 16 B pad blocks.  Each pad block is
``En(address || counter || block_index, key)`` so that every block of
every line version gets a unique pad (paper Eq. 1-3).
"""

from __future__ import annotations

import struct
from collections import OrderedDict
from typing import Dict, List, Protocol, Sequence, Tuple, Union

from ..config import CACHE_LINE_SIZE, EncryptionConfig
from ..errors import CryptoError
from ..utils.accel import np as _np
from .aes import AES128
from .prf import SplitMixPRF

_SEED_BLOCK = struct.Struct("<QIHH")  # address, counter-low, counter-high, block index


class BlockCipher(Protocol):
    """Anything providing a 16-byte forward permutation/PRF."""

    BLOCK_SIZE: int

    def encrypt_block(self, block: bytes) -> bytes:  # pragma: no cover - protocol
        ...


def make_block_cipher(config: EncryptionConfig) -> BlockCipher:
    """Instantiate the cipher selected by the configuration."""
    if config.cipher == "aes":
        return AES128(config.key)
    if config.cipher == "prf":
        return SplitMixPRF(config.key)
    raise CryptoError("unknown cipher %r" % config.cipher)


class OTPCipher:
    """Counter-mode line encryption: pad generation + XOR.

    The pad depends on (line address, counter); a mismatch between the
    counter used to encrypt and the counter used to decrypt yields
    garbage, which is what the paper's Eq. 4 expresses.
    """

    def __init__(self, cipher: BlockCipher, line_size: int = CACHE_LINE_SIZE) -> None:
        if line_size % cipher.BLOCK_SIZE != 0:
            raise CryptoError("line size must be a multiple of the cipher block size")
        self._cipher = cipher
        self.line_size = line_size
        self._blocks_per_line = line_size // cipher.BLOCK_SIZE
        # Pad cache: (address, counter) -> pad, LRU-bounded.  Counter-mode
        # reuses the same pad for encrypt and decrypt, so this is a pure
        # memoization; eviction drops only the least recently used pad
        # instead of the whole cache.
        self._pad_cache: "OrderedDict[tuple, bytes]" = OrderedDict()
        self._pad_cache_limit = 4096
        self.pad_hits = 0
        self.pad_misses = 0
        self.pad_evictions = 0

    @property
    def pad_cache_stats(self) -> Dict[str, int]:
        """Hit/miss/eviction counters of the pad memoization cache."""
        return {
            "hits": self.pad_hits,
            "misses": self.pad_misses,
            "evictions": self.pad_evictions,
            "entries": len(self._pad_cache),
            "limit": self._pad_cache_limit,
        }

    def pad(self, address: int, counter: int) -> bytes:
        """Generate the one-time pad for (address, counter)."""
        key = (address, counter)
        cache = self._pad_cache
        cached = cache.get(key)
        if cached is not None:
            self.pad_hits += 1
            cache.move_to_end(key)
            return cached
        self.pad_misses += 1
        counter_low = counter & 0xFFFFFFFF
        counter_high = (counter >> 32) & 0xFFFF
        pack = _SEED_BLOCK.pack
        seeds = [
            pack(address, counter_low, counter_high, block_index)
            for block_index in range(self._blocks_per_line)
        ]
        encrypt_batch = getattr(self._cipher, "encrypt_blocks", None)
        if encrypt_batch is not None:
            blocks = encrypt_batch(seeds)
        else:
            blocks = [self._cipher.encrypt_block(seed) for seed in seeds]
        pad = b"".join(blocks)
        while len(cache) >= self._pad_cache_limit:
            cache.popitem(last=False)
            self.pad_evictions += 1
        cache[key] = pad
        return pad

    def encrypt(self, address: int, counter: int, plaintext: bytes) -> bytes:
        """Encrypt one line: ``pad(address, counter) XOR plaintext``.

        Counter 0 is reserved to mean "stored in the clear": it is the
        architectural state of never-written lines, whose contents read
        as zeroes without any pad.  The encryption engine's global
        counter starts at 1, so real writes never use it.
        """
        if len(plaintext) != self.line_size:
            raise CryptoError(
                "plaintext must be %d bytes, got %d" % (self.line_size, len(plaintext))
            )
        if counter == 0:
            return plaintext
        pad = self.pad(address, counter)
        return _xor(pad, plaintext)

    def decrypt(self, address: int, counter: int, ciphertext: bytes) -> bytes:
        """Decrypt one line; correct only if ``counter`` matches encryption."""
        if len(ciphertext) != self.line_size:
            raise CryptoError(
                "ciphertext must be %d bytes, got %d" % (self.line_size, len(ciphertext))
            )
        if counter == 0:
            return ciphertext
        pad = self.pad(address, counter)
        return _xor(pad, ciphertext)

    # -- batch paths --------------------------------------------------------

    def pads_many(self, keys: Sequence[Tuple[int, int]]) -> List[bytes]:
        """Pads for many (address, counter) pairs in one cipher batch.

        Equivalent to ``[self.pad(a, c) for a, c in keys]`` — same
        bytes, same pad-cache hit/miss/eviction accounting (duplicate
        misses within a batch count one miss then hits, exactly as
        sequential calls would) — but all missing pad blocks go through
        the cipher as one batch, which is where the numpy-vectorized
        AES rounds pay off.
        """
        cache = self._pad_cache
        blocks_per_line = self._blocks_per_line
        pack = _SEED_BLOCK.pack
        limit = self._pad_cache_limit
        # The cache mutation sequence (hit touches, evictions, insert
        # order) depends only on the keys, never on the pad bytes — so
        # the probe pass applies it exactly as sequential pad() calls
        # would, inserting a placeholder (a one-element list, never a
        # bytes) per miss that the post-batch fill overwrites in place.
        # Result slots hold bytes (resolved), None (miss pending), or
        # an int naming the slot a duplicate occurrence resolves to.
        results: List[Union[bytes, int, None]] = []
        missing: List[Tuple[int, Tuple[int, int], list]] = []
        seeds: List[bytes] = []
        for key in keys:
            cached = cache.get(key)
            if cached is not None:
                self.pad_hits += 1
                cache.move_to_end(key)
                if type(cached) is list:
                    results.append(cached[0])  # duplicate of a pending miss
                else:
                    results.append(cached)
                continue
            self.pad_misses += 1
            address, counter = key
            counter_low = counter & 0xFFFFFFFF
            counter_high = (counter >> 32) & 0xFFFF
            for block_index in range(blocks_per_line):
                seeds.append(pack(address, counter_low, counter_high, block_index))
            slot = len(results)
            placeholder = [slot]
            while len(cache) >= limit:
                cache.popitem(last=False)
                self.pad_evictions += 1
            cache[key] = placeholder
            missing.append((slot, key, placeholder))
            results.append(None)
        if missing:
            encrypt_batch = getattr(self._cipher, "encrypt_blocks", None)
            if encrypt_batch is not None:
                blocks = encrypt_batch(seeds)
            else:
                blocks = [self._cipher.encrypt_block(seed) for seed in seeds]
            for index, (slot, key, placeholder) in enumerate(missing):
                pad = b"".join(
                    blocks[index * blocks_per_line : (index + 1) * blocks_per_line]
                )
                if cache.get(key) is placeholder:
                    # In-place overwrite keeps the insertion-time LRU
                    # position; an evicted placeholder stays evicted.
                    cache[key] = pad
                results[slot] = pad
        # Resolve duplicate-miss placeholders (ints referencing slots).
        return [
            results[item] if isinstance(item, int) else item for item in results
        ]

    def encrypt_lines(
        self, items: Sequence[Tuple[int, int, bytes]]
    ) -> List[bytes]:
        """Encrypt many ``(address, counter, plaintext)`` lines at once.

        Byte-identical to calling :meth:`encrypt` per line; pads are
        produced by :meth:`pads_many` and the XOR runs over the whole
        batch in one numpy pass when numpy is available (the scalar
        big-int XOR remains the oracle).  Counter 0 lines pass through
        in the clear, exactly as in :meth:`encrypt`.
        """
        line_size = self.line_size
        for _address, _counter, text in items:
            if len(text) != line_size:
                raise CryptoError(
                    "plaintext must be %d bytes, got %d" % (line_size, len(text))
                )
        pads = self.pads_many(
            [(address, counter) for address, counter, _text in items if counter != 0]
        )
        if _np is not None and len(pads) >= 4:
            return self._xor_lines_numpy(items, pads)
        out: List[bytes] = []
        pad_index = 0
        for _address, counter, text in items:
            if counter == 0:
                out.append(text)
            else:
                out.append(_xor(pads[pad_index], text))
                pad_index += 1
        return out

    #: Alias: counter-mode decryption is the same pad XOR.
    decrypt_lines = encrypt_lines

    def _xor_lines_numpy(
        self, items: Sequence[Tuple[int, int, bytes]], pads: List[bytes]
    ) -> List[bytes]:
        """One vectorized XOR across every enciphered line of a batch."""
        line_size = self.line_size
        texts: List[bytes] = []
        slots: List[int] = []
        out: List[Union[bytes, None]] = []
        for _address, counter, text in items:
            if counter == 0:
                out.append(text)
            else:
                texts.append(text)
                slots.append(len(out))
                out.append(None)
        if texts:
            lhs = _np.frombuffer(b"".join(pads), dtype=_np.uint64)
            rhs = _np.frombuffer(b"".join(texts), dtype=_np.uint64)
            raw = (lhs ^ rhs).tobytes()
            for index, slot in enumerate(slots):
                out[slot] = raw[index * line_size : (index + 1) * line_size]
        return out


def _xor(left: bytes, right: bytes) -> bytes:
    """XOR two equal-length byte strings as one big-integer operation.

    For 64 B lines this is an order of magnitude faster than a per-byte
    generator: CPython performs the XOR over 30-bit limbs in C.
    """
    return (
        int.from_bytes(left, "little") ^ int.from_bytes(right, "little")
    ).to_bytes(len(left), "little")


def _xor_reference(left: bytes, right: bytes) -> bytes:
    """Per-byte reference XOR (oracle for tests and the perf harness)."""
    return bytes(a ^ b for a, b in zip(left, right))


def encrypt_line(
    config_or_cipher: Union[EncryptionConfig, OTPCipher],
    address: int,
    counter: int,
    plaintext: bytes,
) -> bytes:
    """Convenience wrapper: encrypt one line with a config or cipher."""
    cipher = _coerce(config_or_cipher)
    return cipher.encrypt(address, counter, plaintext)


def decrypt_line(
    config_or_cipher: Union[EncryptionConfig, OTPCipher],
    address: int,
    counter: int,
    ciphertext: bytes,
) -> bytes:
    """Convenience wrapper: decrypt one line with a config or cipher."""
    cipher = _coerce(config_or_cipher)
    return cipher.decrypt(address, counter, ciphertext)


def _coerce(config_or_cipher: Union[EncryptionConfig, OTPCipher]) -> OTPCipher:
    if isinstance(config_or_cipher, OTPCipher):
        return config_or_cipher
    return OTPCipher(make_block_cipher(config_or_cipher))
