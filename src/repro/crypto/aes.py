"""Pure-Python AES-128 block cipher (FIPS-197).

The simulator only needs the forward direction: counter-mode encryption
both encrypts and decrypts by XORing with ``En(address || counter)``, so
no inverse cipher is required (we still implement decryption for
completeness and for tests against the published FIPS-197 vectors).

Two forward implementations coexist:

* :meth:`AES128.encrypt_block` — a T-table fast path that folds
  SubBytes, ShiftRows and MixColumns into four 256-entry word tables
  (the classic software formulation from the Rijndael reference code);
* :meth:`AES128._encrypt_block_slow` — the textbook round-function
  version, kept as the bit-for-bit reference the fast path is tested
  against.

Even the fast path is far slower than hardware AES; large simulations
use :class:`repro.crypto.prf.SplitMixPRF` instead (selected by
``EncryptionConfig.cipher``).
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from ..errors import CryptoError
from ..utils.accel import np as _np

_SBOX: List[int] = []
_INV_SBOX: List[int] = [0] * 256


def _build_sbox() -> None:
    """Construct the AES S-box from GF(2^8) inverses plus the affine map."""
    if _SBOX:
        return
    # Multiplicative inverse table via exp/log tables over GF(2^8).
    exp_table = [0] * 512
    log_table = [0] * 256
    value = 1
    for exponent in range(255):
        exp_table[exponent] = value
        log_table[value] = exponent
        # Multiply by generator 0x03 = x + 1.
        value ^= (value << 1) ^ (0x11B if value & 0x80 else 0)
        value &= 0xFF
    for exponent in range(255, 512):
        exp_table[exponent] = exp_table[exponent - 255]

    def gf_inverse(byte: int) -> int:
        if byte == 0:
            return 0
        return exp_table[255 - log_table[byte]]

    for byte in range(256):
        inv = gf_inverse(byte)
        # Affine transformation.
        result = 0
        for bit in range(8):
            result |= (
                (
                    (inv >> bit)
                    ^ (inv >> ((bit + 4) % 8))
                    ^ (inv >> ((bit + 5) % 8))
                    ^ (inv >> ((bit + 6) % 8))
                    ^ (inv >> ((bit + 7) % 8))
                    ^ (0x63 >> bit)
                )
                & 1
            ) << bit
        _SBOX.append(result)
        _INV_SBOX[result] = byte


_build_sbox()

_RCON = [0x01, 0x02, 0x04, 0x08, 0x10, 0x20, 0x40, 0x80, 0x1B, 0x36]

# T-tables: for a substituted byte s, each table holds one column of the
# MixColumns matrix applied to s, so a full round per output word is
# four table lookups, three XORs and the round key.  Column words are
# big-endian ``row0<<24 | row1<<16 | row2<<8 | row3``.
_TE0: List[int] = []
_TE1: List[int] = []
_TE2: List[int] = []
_TE3: List[int] = []


def _build_ttables() -> None:
    if _TE0:
        return
    for byte in range(256):
        s = _SBOX[byte]
        s2 = _xtime(s)
        s3 = s2 ^ s
        _TE0.append((s2 << 24) | (s << 16) | (s << 8) | s3)
        _TE1.append((s3 << 24) | (s2 << 16) | (s << 8) | s)
        _TE2.append((s << 24) | (s3 << 16) | (s2 << 8) | s)
        _TE3.append((s << 24) | (s << 16) | (s3 << 8) | s2)


def _xtime(byte: int) -> int:
    """Multiply by x in GF(2^8)."""
    byte <<= 1
    if byte & 0x100:
        byte ^= 0x11B
    return byte & 0xFF


def _gf_mul(a: int, b: int) -> int:
    """General GF(2^8) multiplication (used by the inverse cipher)."""
    result = 0
    while b:
        if b & 1:
            result ^= a
        a = _xtime(a)
        b >>= 1
    return result


_build_ttables()

# Numpy mirrors of the T-tables/S-box (built lazily on first batch
# call): same integer contents, so the vectorized rounds below compute
# bit-for-bit the same words as the scalar loop in encrypt_block.
_NP_TABLES: Optional[Tuple] = None

#: Batch size at which the numpy path beats the scalar T-table loop;
#: below it, per-call numpy overhead dominates.
_NP_BATCH_MIN = 16


def _numpy_tables() -> Optional[Tuple]:
    global _NP_TABLES
    if _NP_TABLES is None and _np is not None:
        _NP_TABLES = (
            _np.array(_TE0, dtype=_np.uint32),
            _np.array(_TE1, dtype=_np.uint32),
            _np.array(_TE2, dtype=_np.uint32),
            _np.array(_TE3, dtype=_np.uint32),
            _np.array(_SBOX, dtype=_np.uint32),
        )
    return _NP_TABLES


class AES128:
    """AES with a 128-bit key operating on 16-byte blocks."""

    BLOCK_SIZE = 16
    ROUNDS = 10

    def __init__(self, key: bytes) -> None:
        if len(key) != 16:
            raise CryptoError("AES-128 requires a 16-byte key")
        self._round_keys = self._expand_key(key)
        # Round keys as big-endian 32-bit column words for the T-table
        # path; the flat byte lists stay for the reference/inverse paths.
        self._round_key_words: List[tuple] = [
            tuple(
                (flat[4 * j] << 24) | (flat[4 * j + 1] << 16) | (flat[4 * j + 2] << 8) | flat[4 * j + 3]
                for j in range(4)
            )
            for flat in self._round_keys
        ]

    @staticmethod
    def _expand_key(key: bytes) -> List[List[int]]:
        """Produce 11 round keys of 16 bytes each, stored as flat lists."""
        words: List[List[int]] = [list(key[i : i + 4]) for i in range(0, 16, 4)]
        for index in range(4, 4 * (AES128.ROUNDS + 1)):
            previous = list(words[index - 1])
            if index % 4 == 0:
                previous = previous[1:] + previous[:1]
                previous = [_SBOX[b] for b in previous]
                previous[0] ^= _RCON[index // 4 - 1]
            words.append([a ^ b for a, b in zip(words[index - 4], previous)])
        round_keys: List[List[int]] = []
        for round_index in range(AES128.ROUNDS + 1):
            flat: List[int] = []
            for word in words[4 * round_index : 4 * round_index + 4]:
                flat.extend(word)
            round_keys.append(flat)
        return round_keys

    @staticmethod
    def _add_round_key(state: List[int], round_key: Sequence[int]) -> None:
        for index in range(16):
            state[index] ^= round_key[index]

    @staticmethod
    def _sub_bytes(state: List[int]) -> None:
        for index in range(16):
            state[index] = _SBOX[state[index]]

    @staticmethod
    def _inv_sub_bytes(state: List[int]) -> None:
        for index in range(16):
            state[index] = _INV_SBOX[state[index]]

    @staticmethod
    def _shift_rows(state: List[int]) -> List[int]:
        # State is column-major: state[4*col + row].
        shifted = state[:]
        for row in range(1, 4):
            for col in range(4):
                shifted[4 * col + row] = state[4 * ((col + row) % 4) + row]
        return shifted

    @staticmethod
    def _inv_shift_rows(state: List[int]) -> List[int]:
        shifted = state[:]
        for row in range(1, 4):
            for col in range(4):
                shifted[4 * ((col + row) % 4) + row] = state[4 * col + row]
        return shifted

    @staticmethod
    def _mix_columns(state: List[int]) -> None:
        for col in range(4):
            base = 4 * col
            a = state[base : base + 4]
            state[base + 0] = _xtime(a[0]) ^ _xtime(a[1]) ^ a[1] ^ a[2] ^ a[3]
            state[base + 1] = a[0] ^ _xtime(a[1]) ^ _xtime(a[2]) ^ a[2] ^ a[3]
            state[base + 2] = a[0] ^ a[1] ^ _xtime(a[2]) ^ _xtime(a[3]) ^ a[3]
            state[base + 3] = _xtime(a[0]) ^ a[0] ^ a[1] ^ a[2] ^ _xtime(a[3])

    @staticmethod
    def _inv_mix_columns(state: List[int]) -> None:
        for col in range(4):
            base = 4 * col
            a = state[base : base + 4]
            state[base + 0] = (
                _gf_mul(a[0], 14) ^ _gf_mul(a[1], 11) ^ _gf_mul(a[2], 13) ^ _gf_mul(a[3], 9)
            )
            state[base + 1] = (
                _gf_mul(a[0], 9) ^ _gf_mul(a[1], 14) ^ _gf_mul(a[2], 11) ^ _gf_mul(a[3], 13)
            )
            state[base + 2] = (
                _gf_mul(a[0], 13) ^ _gf_mul(a[1], 9) ^ _gf_mul(a[2], 14) ^ _gf_mul(a[3], 11)
            )
            state[base + 3] = (
                _gf_mul(a[0], 11) ^ _gf_mul(a[1], 13) ^ _gf_mul(a[2], 9) ^ _gf_mul(a[3], 14)
            )

    def encrypt_block(self, block: bytes) -> bytes:
        """Encrypt one 16-byte block (T-table fast path)."""
        if len(block) != 16:
            raise CryptoError("AES block must be 16 bytes")
        T0, T1, T2, T3 = _TE0, _TE1, _TE2, _TE3
        sbox = _SBOX
        rk = self._round_key_words
        value = int.from_bytes(block, "big")
        k0, k1, k2, k3 = rk[0]
        w0 = ((value >> 96) & 0xFFFFFFFF) ^ k0
        w1 = ((value >> 64) & 0xFFFFFFFF) ^ k1
        w2 = ((value >> 32) & 0xFFFFFFFF) ^ k2
        w3 = (value & 0xFFFFFFFF) ^ k3
        for k0, k1, k2, k3 in rk[1:10]:
            t0 = T0[w0 >> 24] ^ T1[(w1 >> 16) & 255] ^ T2[(w2 >> 8) & 255] ^ T3[w3 & 255] ^ k0
            t1 = T0[w1 >> 24] ^ T1[(w2 >> 16) & 255] ^ T2[(w3 >> 8) & 255] ^ T3[w0 & 255] ^ k1
            t2 = T0[w2 >> 24] ^ T1[(w3 >> 16) & 255] ^ T2[(w0 >> 8) & 255] ^ T3[w1 & 255] ^ k2
            t3 = T0[w3 >> 24] ^ T1[(w0 >> 16) & 255] ^ T2[(w1 >> 8) & 255] ^ T3[w2 & 255] ^ k3
            w0, w1, w2, w3 = t0, t1, t2, t3
        k0, k1, k2, k3 = rk[10]
        o0 = (
            (sbox[w0 >> 24] << 24)
            | (sbox[(w1 >> 16) & 255] << 16)
            | (sbox[(w2 >> 8) & 255] << 8)
            | sbox[w3 & 255]
        ) ^ k0
        o1 = (
            (sbox[w1 >> 24] << 24)
            | (sbox[(w2 >> 16) & 255] << 16)
            | (sbox[(w3 >> 8) & 255] << 8)
            | sbox[w0 & 255]
        ) ^ k1
        o2 = (
            (sbox[w2 >> 24] << 24)
            | (sbox[(w3 >> 16) & 255] << 16)
            | (sbox[(w0 >> 8) & 255] << 8)
            | sbox[w1 & 255]
        ) ^ k2
        o3 = (
            (sbox[w3 >> 24] << 24)
            | (sbox[(w0 >> 16) & 255] << 16)
            | (sbox[(w1 >> 8) & 255] << 8)
            | sbox[w2 & 255]
        ) ^ k3
        return ((o0 << 96) | (o1 << 64) | (o2 << 32) | o3).to_bytes(16, "big")

    def encrypt_blocks(self, blocks: Sequence[bytes]) -> List[bytes]:
        """Encrypt several 16-byte blocks (pad-generation batch path).

        Large batches take the numpy-vectorized rounds when numpy is
        available (byte-identical to the scalar path, which remains
        the oracle); small batches and numpy-free installs run the
        scalar T-table loop.
        """
        if _np is not None and len(blocks) >= _NP_BATCH_MIN:
            return self.encrypt_blocks_numpy(blocks)
        encrypt = self.encrypt_block
        return [encrypt(block) for block in blocks]

    def encrypt_blocks_numpy(self, blocks: Sequence[bytes]) -> List[bytes]:
        """Vectorized T-table rounds over a whole batch of blocks.

        One numpy gather per table per round covers every block; all
        arithmetic is exact uint32, so outputs are byte-identical to
        :meth:`encrypt_block`.  Raises if numpy is unavailable — use
        :meth:`encrypt_blocks` for automatic dispatch.
        """
        tables = _numpy_tables()
        if tables is None:
            raise CryptoError("numpy is not available for batched AES")
        count = len(blocks)
        if count == 0:
            return []
        joined = b"".join(blocks)
        if len(joined) != 16 * count:
            raise CryptoError("AES block must be 16 bytes")
        T0, T1, T2, T3, sbox = tables
        rk = self._round_key_words
        words = _np.frombuffer(joined, dtype=">u4").reshape(count, 4).astype(_np.uint32)
        k0, k1, k2, k3 = rk[0]
        w0 = words[:, 0] ^ _np.uint32(k0)
        w1 = words[:, 1] ^ _np.uint32(k1)
        w2 = words[:, 2] ^ _np.uint32(k2)
        w3 = words[:, 3] ^ _np.uint32(k3)
        for k0, k1, k2, k3 in rk[1:10]:
            t0 = T0[w0 >> 24] ^ T1[(w1 >> 16) & 255] ^ T2[(w2 >> 8) & 255] ^ T3[w3 & 255] ^ _np.uint32(k0)
            t1 = T0[w1 >> 24] ^ T1[(w2 >> 16) & 255] ^ T2[(w3 >> 8) & 255] ^ T3[w0 & 255] ^ _np.uint32(k1)
            t2 = T0[w2 >> 24] ^ T1[(w3 >> 16) & 255] ^ T2[(w0 >> 8) & 255] ^ T3[w1 & 255] ^ _np.uint32(k2)
            t3 = T0[w3 >> 24] ^ T1[(w0 >> 16) & 255] ^ T2[(w1 >> 8) & 255] ^ T3[w2 & 255] ^ _np.uint32(k3)
            w0, w1, w2, w3 = t0, t1, t2, t3
        k0, k1, k2, k3 = rk[10]
        out = _np.empty((count, 4), dtype=_np.uint32)
        out[:, 0] = (
            (sbox[w0 >> 24] << 24)
            | (sbox[(w1 >> 16) & 255] << 16)
            | (sbox[(w2 >> 8) & 255] << 8)
            | sbox[w3 & 255]
        ) ^ _np.uint32(k0)
        out[:, 1] = (
            (sbox[w1 >> 24] << 24)
            | (sbox[(w2 >> 16) & 255] << 16)
            | (sbox[(w3 >> 8) & 255] << 8)
            | sbox[w0 & 255]
        ) ^ _np.uint32(k1)
        out[:, 2] = (
            (sbox[w2 >> 24] << 24)
            | (sbox[(w3 >> 16) & 255] << 16)
            | (sbox[(w0 >> 8) & 255] << 8)
            | sbox[w1 & 255]
        ) ^ _np.uint32(k2)
        out[:, 3] = (
            (sbox[w3 >> 24] << 24)
            | (sbox[(w0 >> 16) & 255] << 16)
            | (sbox[(w1 >> 8) & 255] << 8)
            | sbox[w2 & 255]
        ) ^ _np.uint32(k3)
        raw = out.astype(">u4").tobytes()
        return [raw[offset : offset + 16] for offset in range(0, 16 * count, 16)]

    def _encrypt_block_slow(self, block: bytes) -> bytes:
        """Textbook round-function encryption (reference implementation).

        Kept as the oracle the T-table path is verified against; also
        exercised directly by the perf harness to measure the speedup.
        """
        if len(block) != 16:
            raise CryptoError("AES block must be 16 bytes")
        state = list(block)
        self._add_round_key(state, self._round_keys[0])
        for round_index in range(1, self.ROUNDS):
            self._sub_bytes(state)
            state = self._shift_rows(state)
            self._mix_columns(state)
            self._add_round_key(state, self._round_keys[round_index])
        self._sub_bytes(state)
        state = self._shift_rows(state)
        self._add_round_key(state, self._round_keys[self.ROUNDS])
        return bytes(state)

    def decrypt_block(self, block: bytes) -> bytes:
        """Decrypt one 16-byte block (inverse cipher)."""
        if len(block) != 16:
            raise CryptoError("AES block must be 16 bytes")
        state = list(block)
        self._add_round_key(state, self._round_keys[self.ROUNDS])
        for round_index in range(self.ROUNDS - 1, 0, -1):
            state = self._inv_shift_rows(state)
            self._inv_sub_bytes(state)
            self._add_round_key(state, self._round_keys[round_index])
            self._inv_mix_columns(state)
        state = self._inv_shift_rows(state)
        self._inv_sub_bytes(state)
        self._add_round_key(state, self._round_keys[0])
        return bytes(state)
