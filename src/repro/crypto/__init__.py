"""Counter-mode memory encryption substrate.

The paper encrypts each 64 B cache line by XORing it with a one-time pad
(OTP) derived from the line address and a per-line write counter:

    OTP       = En(address || counter, key)
    ciphertext = OTP xor plaintext
    plaintext  = OTP xor ciphertext

This package provides two interchangeable block ciphers (a validated
pure-Python AES-128 and a fast keyed PRF for large simulations), the OTP
construction, the per-line counter store, the on-chip counter cache, and
the encryption engine that ties them together with the paper's 40 ns
latency model.
"""

from .aes import AES128
from .compression import (
    compress_counter_line,
    decompress_counter_line,
    traffic_savings,
)
from .counter_cache import CounterCache, CounterCacheStats
from .integrity import IntegrityEngine, TaggedLine
from .counters import CounterStore, counter_line_address
from .engine import EncryptionEngine
from .otp import OTPCipher, decrypt_line, encrypt_line, make_block_cipher
from .prf import SplitMixPRF

__all__ = [
    "AES128",
    "compress_counter_line",
    "decompress_counter_line",
    "traffic_savings",
    "SplitMixPRF",
    "OTPCipher",
    "make_block_cipher",
    "encrypt_line",
    "decrypt_line",
    "CounterStore",
    "counter_line_address",
    "CounterCache",
    "IntegrityEngine",
    "TaggedLine",
    "CounterCacheStats",
    "EncryptionEngine",
]
