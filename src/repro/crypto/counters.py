"""Per-line write counters and their NVM address space.

The paper stores one 8 B counter per 64 B data line in a *separate*
address region of the NVM (Section 3.2.2, Figure 5(c)), so one 64 B
counter line covers eight consecutive data lines.  Counter-cache fills
and writebacks therefore move eight counters at a time.
"""

from __future__ import annotations

from typing import Dict, Iterator, Tuple

from ..config import CACHE_LINE_SIZE, COUNTERS_PER_LINE
from ..errors import AddressError, CounterOverflowError
from ..utils.bitops import align_down

#: Counters are 62-bit in real proposals; we cap at 2**48 which is far
#: beyond anything a simulation reaches but still tests overflow logic.
COUNTER_LIMIT = 1 << 48

_LINE_MASK = ~(CACHE_LINE_SIZE - 1)
_GROUP_SIZE = CACHE_LINE_SIZE * COUNTERS_PER_LINE
_GROUP_MASK = ~(_GROUP_SIZE - 1)


def counter_line_address(data_address: int, counter_region_base: int) -> int:
    """NVM address of the counter line covering ``data_address``.

    Data line index L has its 8 B counter at ``base + L * 8``; the
    enclosing 64 B counter line starts at ``base + (L // 8) * 64``.
    """
    line_index = data_address // CACHE_LINE_SIZE
    return counter_region_base + align_down(line_index * 8, CACHE_LINE_SIZE)


def counter_slot(data_address: int) -> int:
    """Index (0-7) of this data line's counter within its counter line."""
    return (data_address // CACHE_LINE_SIZE) % COUNTERS_PER_LINE


class CounterStore:
    """The architectural (in-NVM) array of per-line write counters.

    This models the persistent copy of the counters.  The on-chip
    counter cache (:class:`repro.crypto.counter_cache.CounterCache`)
    holds the working copies; a crash discards the cache and recovery
    sees only what this store contains.

    Counters are stored sparsely: untouched lines implicitly hold 0.
    """

    def __init__(self, counter_region_base: int, memory_size_bytes: int) -> None:
        if counter_region_base % CACHE_LINE_SIZE != 0:
            raise AddressError("counter region base must be line-aligned")
        self.counter_region_base = counter_region_base
        self.memory_size_bytes = memory_size_bytes
        self._counters: Dict[int, int] = {}

    def _check(self, data_address: int) -> None:
        if data_address < 0 or data_address >= self.counter_region_base:
            raise AddressError(
                "data address 0x%x outside the data region (counter base 0x%x)"
                % (data_address, self.counter_region_base)
            )

    def read(self, data_address: int) -> int:
        """Architectural counter value for the line at ``data_address``."""
        if data_address < 0 or data_address >= self.counter_region_base:
            self._check(data_address)
        return self._counters.get(data_address & _LINE_MASK, 0)

    def write(self, data_address: int, value: int) -> None:
        """Persist a counter value (one 8 B slot)."""
        if data_address < 0 or data_address >= self.counter_region_base:
            self._check(data_address)
        if value < 0 or value >= COUNTER_LIMIT:
            raise CounterOverflowError(
                "counter value %d out of range for line 0x%x" % (value, data_address)
            )
        self._counters[data_address & _LINE_MASK] = value

    def write_counter_line(self, data_address: int, values: Tuple[int, ...]) -> None:
        """Persist all eight counters of the counter line covering ``data_address``."""
        if len(values) != COUNTERS_PER_LINE:
            raise AddressError("a counter line holds exactly %d counters" % COUNTERS_PER_LINE)
        base_line = data_address & _GROUP_MASK
        self._check(base_line)
        self._check(base_line + _GROUP_SIZE - CACHE_LINE_SIZE)
        counters = self._counters
        address = base_line
        for value in values:
            if value < 0 or value >= COUNTER_LIMIT:
                raise CounterOverflowError(
                    "counter value %d out of range for line 0x%x" % (value, address)
                )
            counters[address] = value
            address += CACHE_LINE_SIZE

    def read_counter_line(self, data_address: int) -> Tuple[int, ...]:
        """Read all eight counters of the covering counter line."""
        base_line = data_address & _GROUP_MASK
        self._check(base_line)
        self._check(base_line + _GROUP_SIZE - CACHE_LINE_SIZE)
        # Hot path (every pair/fill walks the group): unrolled gets
        # instead of a genexpr-driven tuple().
        get = self._counters.get
        b = base_line
        s = CACHE_LINE_SIZE
        return (
            get(b, 0),
            get(b + s, 0),
            get(b + 2 * s, 0),
            get(b + 3 * s, 0),
            get(b + 4 * s, 0),
            get(b + 5 * s, 0),
            get(b + 6 * s, 0),
            get(b + 7 * s, 0),
        )

    def touched_lines(self) -> Iterator[int]:
        """Data-line addresses whose counters have been written."""
        return iter(sorted(self._counters))

    def snapshot(self) -> Dict[int, int]:
        """Copy of the persistent counter state (for crash images)."""
        return dict(self._counters)

    def restore(self, snapshot: Dict[int, int]) -> None:
        """Replace the persistent state with a previously taken snapshot."""
        self._counters = dict(snapshot)

    def get_state(self) -> Dict[str, object]:
        """Checkpoint state (region geometry is config, not state)."""
        return {"counters": dict(self._counters)}

    def set_state(self, state: Dict[str, object]) -> None:
        self._counters = dict(state["counters"])
