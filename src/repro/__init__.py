"""repro — reproduction of "Crash Consistency in Encrypted Non-Volatile
Main Memory Systems" (HPCA 2018).

The library simulates an encrypted NVMM system with counter-mode
encryption and implements the paper's contribution — counter-atomicity
and its selective enforcement — end to end: the six evaluated design
points, the programmer primitives (``CounterAtomic`` and
``counter_cache_writeback()``), crash injection with ADR/ready-bit
semantics, transactional recovery, the five evaluation workloads, and a
benchmark harness that regenerates every table and figure.

Quickstart::

    from repro import default_config, Machine, TraceBuilder

    config = default_config()
    builder = TraceBuilder("hello")
    builder.txn_begin()
    builder.store_u64(0x1000, 42)
    builder.clwb(0x1000).ccwb(0x1000).persist_barrier()
    builder.txn_end()
    result = Machine(config, "sca").run([builder.build()])
    print(result.stats.runtime_ns)
"""

from .config import (
    CACHE_LINE_SIZE,
    SystemConfig,
    bench_config,
    default_config,
    fast_config,
)
from .core.designs import ALL_DESIGNS, DesignPolicy, get_design, list_designs
from .core.primitives import CounterAtomic, PersistentVar, Plain
from .errors import ReproError
from .sim.machine import Machine, SimulationResult, run_design
from .sim.trace import Trace, TraceBuilder

__version__ = "1.0.0"

__all__ = [
    "CACHE_LINE_SIZE",
    "SystemConfig",
    "bench_config",
    "default_config",
    "fast_config",
    "ALL_DESIGNS",
    "DesignPolicy",
    "get_design",
    "list_designs",
    "CounterAtomic",
    "PersistentVar",
    "Plain",
    "ReproError",
    "Machine",
    "SimulationResult",
    "run_design",
    "Trace",
    "TraceBuilder",
    "__version__",
]
