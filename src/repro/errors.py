"""Exception hierarchy for the repro package.

All exceptions raised by this library derive from :class:`ReproError`, so
callers can catch a single base class.  Sub-hierarchies separate
configuration mistakes (caller bugs) from simulated-hardware conditions
(expected outcomes of an experiment, e.g. a decryption failure after an
injected crash).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every exception raised by the repro library."""


class ConfigurationError(ReproError):
    """A configuration value is invalid or inconsistent."""


class AddressError(ReproError):
    """An address is out of range or violates an alignment requirement."""


class AlignmentError(AddressError):
    """An address is not aligned to the required granularity."""


class SimulationError(ReproError):
    """The simulation engine reached an invalid internal state."""


class DeadlockError(SimulationError):
    """The event queue drained while cores still had pending operations."""


class TraceError(ReproError):
    """A trace record is malformed or out of protocol order."""


class CryptoError(ReproError):
    """Base class for encryption-engine errors."""


class DecryptionFailure(CryptoError):
    """Decryption produced data that fails integrity verification.

    In a real system a stale counter silently yields garbage plaintext
    (paper Eq. 4).  The simulator attaches an integrity tag to each line
    so experiments can *detect* the garbage and report the failure.
    """

    def __init__(self, address: int, message: str = "") -> None:
        self.address = address
        text = message or (
            "decryption failure at address 0x%x: data and counter in NVM "
            "are out of sync (counter-atomicity violated)" % address
        )
        super().__init__(text)


class CounterOverflowError(CryptoError):
    """A per-line write counter exceeded its representable range."""


class PersistencyError(ReproError):
    """A persistency-protocol violation (e.g. sfence with no epoch)."""


class QueueFullError(SimulationError):
    """An internal queue rejected an entry it should have buffered.

    Write queues apply backpressure instead of raising; this error marks
    protocol bugs where backpressure was bypassed.
    """


class RecoveryError(ReproError):
    """Post-crash recovery could not restore a consistent state."""


class NestedCrash(ReproError):
    """A simulated power failure *during* recovery.

    Raised by an armed recovery-phase fault plan when recovery reaches
    the scheduled step.  Not an error in the library — the expected
    experimental outcome of a nested-crash campaign: whatever recovery
    persisted before this point is the durable state the *next*
    recovery attempt starts from.
    """

    def __init__(self, phase: str, step: int, kind: str = "crash") -> None:
        self.phase = phase
        self.step = step
        self.kind = kind
        super().__init__(
            "nested crash (%s) after recovery step %d of phase %r"
            % (kind, step, phase)
        )


class TransactionError(ReproError):
    """Misuse of the transactional API (nesting, double-commit, ...)."""


class HeapError(ReproError):
    """Persistent-heap allocation failure or invalid free."""


class WorkloadError(ReproError):
    """A workload was misconfigured or failed an internal self-check."""


class ServiceError(ReproError):
    """The KV service was misconfigured or an operation cannot proceed.

    Raised for caller mistakes (unknown tenants, bad traffic specs) and
    for capacity exhaustion (a tenant arena too full to split) — never
    for simulated crash damage, which recovery and validation handle.
    """


class FaultInjectionError(ReproError):
    """A fault model is misconfigured or cannot apply to a crash image.

    Raised for caller mistakes (unknown model names, out-of-range
    parameters) — never for the *simulated* corruption itself, which is
    an expected experimental outcome, not an error.
    """


class CampaignError(ReproError):
    """A crash campaign could not be planned, executed, or resumed."""


class CampaignJournalError(CampaignError):
    """The on-disk campaign journal is unreadable or inconsistent."""


class JobExecutionError(CampaignError):
    """A sweep/campaign job failed permanently after bounded retries.

    Raised by the hardened executor when a job keeps timing out or its
    worker keeps dying; transient failures below the retry bound are
    absorbed and only counted in the executor's stats.
    """


class SnapshotError(ReproError):
    """A simulation snapshot could not be written, read, or applied."""


class SnapshotCorruptError(SnapshotError):
    """A snapshot file is torn or fails its checksum.

    Raised by the reader when the magic, header, CRC or body length do
    not hold together — the restore path quarantines the file and falls
    back to the previous generation.
    """


class SnapshotVersionError(SnapshotError):
    """A snapshot was written by different code or an older format.

    Restoring across a simulator change would mix semantics, so such
    snapshots are invalidated (deleted), never restored.
    """
