"""Core-side persistency bookkeeping (clwb / ccwb / sfence).

Intel's persistency model (as implemented in the paper's methodology,
Section 6.1) makes ``sfence`` wait until every outstanding ``clwb`` has
been *accepted* by the memory controller's ADR-protected write queue —
acceptance, not array drain, is the durability point.  The same applies
to ``counter_cache_writeback()`` acceptances.

Each simulated core owns one :class:`PersistencyTracker` that
accumulates acceptance times and resolves fences.
"""

from __future__ import annotations

from typing import List

from ..errors import PersistencyError


class PersistencyTracker:
    """Outstanding-writeback tracking for one core."""

    def __init__(self) -> None:
        self._pending_accepts: List[float] = []
        self.fences = 0
        self.writebacks = 0
        self.total_fence_stall_ns = 0.0

    def note_writeback(self, accept_ns: float) -> None:
        """Record a clwb/ccwb whose queue acceptance completes at ``accept_ns``."""
        if accept_ns < 0:
            raise PersistencyError("acceptance time cannot be negative")
        self._pending_accepts.append(accept_ns)
        self.writebacks += 1

    @property
    def outstanding(self) -> int:
        return len(self._pending_accepts)

    def fence(self, now_ns: float) -> float:
        """Resolve an sfence: stall until all pending acceptances land.

        Returns the core's time after the fence; clears the pending set.
        """
        self.fences += 1
        if not self._pending_accepts:
            return now_ns
        release = max(now_ns, max(self._pending_accepts))
        self.total_fence_stall_ns += release - now_ns
        self._pending_accepts.clear()
        return release

    def reset(self) -> None:
        self._pending_accepts.clear()

    def get_state(self) -> dict:
        """Checkpoint state of the outstanding-writeback set."""
        return {
            "pending_accepts": list(self._pending_accepts),
            "fences": self.fences,
            "writebacks": self.writebacks,
            "total_fence_stall_ns": self.total_fence_stall_ns,
        }

    def set_state(self, state: dict) -> None:
        self._pending_accepts = list(state["pending_accepts"])
        self.fences = state["fences"]
        self.writebacks = state["writebacks"]
        self.total_fence_stall_ns = state["total_fence_stall_ns"]
