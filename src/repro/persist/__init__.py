"""Persistency support: the ADR persist journal and ordering primitives.

The journal is the simulator's ground truth for *when* each write became
durable; the crash injector replays it to reconstruct the exact NVM
image at any instant, honouring the ready-bit/ADR drain rules of the
paper's Section 5.2.2.
"""

from .journal import JournalKind, JournalRecord, PersistJournal
from .model import PersistencyTracker

__all__ = ["JournalKind", "JournalRecord", "PersistJournal", "PersistencyTracker"]
