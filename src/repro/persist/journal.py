"""The persist journal: a timestamped log of every NVM write.

The live simulation applies writes to the device eagerly (modeling
write-queue forwarding), so the device's end state is only correct for
crash-free runs.  To reason about crashes, every write — data line,
counter line, or co-located pair — is journaled with three timestamps:

* ``accept_ns``  — entered an ADR-protected write queue,
* ``ready_ns``   — ready bit set (== accept for unpaired entries;
  == max of the pair's accepts for counter-atomic pairs),
* ``drain_ns``   — reached the NVM array.

Coalescing *amends* an existing journal record rather than adding a new
one; each amendment carries its own effective time, so a crash between
the original insertion and the amendment correctly resurrects the
pre-amendment payload.

Crash semantics (paper, "Steps During a System Failure"): at failure
time T, a record persists iff ``drain_ns <= T`` (already in the array)
or ``ready_ns <= T`` (ADR drains ready queue entries).  Unready entries
are dropped — both halves of an incomplete pair vanish together.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..config import CACHE_LINE_SIZE
from ..errors import SimulationError


class JournalKind(enum.Enum):
    DATA = "data"
    COUNTER = "counter"


@dataclass(slots=True)
class _Amendment:
    effective_ns: float
    payload: Optional[bytes]
    encrypted_with: int
    group_base: Optional[int] = None
    counters: Optional[Tuple[int, ...]] = None


@dataclass(slots=True)
class JournalRecord:
    """One durable write and its amendment history."""

    kind: JournalKind
    entry_id: int
    address: int
    accept_ns: float
    ready_ns: float
    drain_ns: float
    payload: Optional[bytes] = None
    encrypted_with: int = 0
    #: Counter records: base data address of the covered 8-line group.
    group_base: Optional[int] = None
    counters: Optional[Tuple[int, ...]] = None
    #: True when the record persists a single counter slot (co-located
    #: and ideal designs) rather than a whole counter line.
    single_slot: bool = False
    partner_id: Optional[int] = None
    amendments: List[_Amendment] = field(default_factory=list)

    def persists_at(self, crash_ns: float, adr: bool = True) -> bool:
        """Does this record survive a failure at ``crash_ns``?"""
        if self.drain_ns <= crash_ns:
            return True
        if adr and self.ready_ns <= crash_ns:
            return True
        return False

    def effective_values(self, crash_ns: float) -> _Amendment:
        """Payload/counters as of ``crash_ns`` (latest applicable amendment)."""
        chosen = _Amendment(
            effective_ns=self.accept_ns,
            payload=self.payload,
            encrypted_with=self.encrypted_with,
            group_base=self.group_base,
            counters=self.counters,
        )
        for amendment in self.amendments:
            if amendment.effective_ns <= crash_ns:
                chosen = amendment
        return chosen


@dataclass(slots=True)
class CommitRecord:
    """One cross-shard transaction commit barrier (sharded runs only).

    Written by the two-phase persist barrier
    (:class:`repro.txn.manager.CrossShardBarrier`): phase one captures
    the queue-acceptance watermark of every shard the transaction
    touched, phase two appends this record once all of them are known.
    The record is durable at ``commit_ns`` — the barrier's drain point,
    i.e. the latest touched-shard watermark — and recovery replays the
    commit log as a prefix: the first commit whose touched shards did
    not all persist their watermark ends the acked prefix
    (:func:`repro.crash.sharded.durable_commit_prefix`).
    """

    sequence: int
    core: int
    commit_ns: float
    #: shard id -> acceptance watermark that must be durable on that
    #: shard for this commit to count.
    shard_watermarks: Dict[int, float]


class PersistJournal:
    """Ordered log of all writes with crash-time reconstruction."""

    def __init__(self) -> None:
        self.records: List[JournalRecord] = []
        self._by_entry_id: Dict[int, JournalRecord] = {}
        self._auto_id = -1  # negative ids for records without queue entries
        #: Cross-shard commit barriers, in commit order.  Always empty
        #: for singleton-controller runs (the list is populated only by
        #: the sharded coordinator), so unsharded snapshots and golden
        #: fixtures never see the field.
        self.commits: List[CommitRecord] = []
        #: Cleared when ``crash_bookkeeping`` is off (timing-only figure
        #: sweeps): record/amend become no-ops and reconstruction is
        #: unavailable.
        self.enabled = True

    def _next_auto_id(self) -> int:
        self._auto_id -= 1
        return self._auto_id

    # -- recording ----------------------------------------------------------

    def record_data(
        self,
        entry_id: int,
        address: int,
        payload: Optional[bytes],
        encrypted_with: int,
        accept_ns: float,
        ready_ns: float,
        drain_ns: float,
        partner_id: Optional[int] = None,
    ) -> Optional[JournalRecord]:
        if not self.enabled:
            return None
        record = JournalRecord(
            kind=JournalKind.DATA,
            entry_id=entry_id,
            address=address,
            accept_ns=accept_ns,
            ready_ns=ready_ns,
            drain_ns=drain_ns,
            payload=payload,
            encrypted_with=encrypted_with,
            partner_id=partner_id,
        )
        self.records.append(record)
        self._by_entry_id[entry_id] = record
        return record

    def record_counter(
        self,
        address: int,
        counters: Tuple[int, ...],
        group_base: int,
        accept_ns: float,
        ready_ns: float,
        drain_ns: float,
        entry_id: Optional[int] = None,
        single_slot: bool = False,
    ) -> Optional[JournalRecord]:
        if not self.enabled:
            return None
        record = JournalRecord(
            kind=JournalKind.COUNTER,
            entry_id=entry_id if entry_id is not None else self._next_auto_id(),
            address=address,
            accept_ns=accept_ns,
            ready_ns=ready_ns,
            drain_ns=drain_ns,
            group_base=group_base,
            counters=counters,
            single_slot=single_slot,
        )
        self.records.append(record)
        self._by_entry_id[record.entry_id] = record
        return record

    def record_commit(
        self, core: int, commit_ns: float, shard_watermarks: Dict[int, float]
    ) -> Optional[CommitRecord]:
        """Append one cross-shard commit barrier (sharded runs only)."""
        if not self.enabled:
            return None
        record = CommitRecord(
            sequence=len(self.commits),
            core=core,
            commit_ns=commit_ns,
            shard_watermarks=dict(shard_watermarks),
        )
        self.commits.append(record)
        return record

    # -- amendments (write-queue coalescing) -----------------------------------

    def amend_data(
        self,
        entry_id: int,
        payload: Optional[bytes],
        encrypted_with: int,
        effective_ns: float,
    ) -> None:
        if not self.enabled:
            return
        record = self._by_entry_id.get(entry_id)
        if record is None or record.kind is not JournalKind.DATA:
            raise SimulationError("amending unknown data journal record %d" % entry_id)
        record.amendments.append(
            _Amendment(
                effective_ns=effective_ns,
                payload=payload,
                encrypted_with=encrypted_with,
            )
        )

    def amend_counter(
        self,
        entry_id: int,
        group_base: int,
        counters: Tuple[int, ...],
        effective_ns: float,
    ) -> None:
        if not self.enabled:
            return
        record = self._by_entry_id.get(entry_id)
        if record is None or record.kind is not JournalKind.COUNTER:
            raise SimulationError("amending unknown counter journal record %d" % entry_id)
        record.amendments.append(
            _Amendment(
                effective_ns=effective_ns,
                payload=None,
                encrypted_with=0,
                group_base=group_base,
                counters=counters,
            )
        )

    # -- reconstruction -------------------------------------------------------

    def reconstruct(
        self, crash_ns: float, adr: bool = True, adr_budget: Optional[int] = None
    ) -> Tuple[Dict[int, Tuple[Optional[bytes], int]], Dict[int, int]]:
        """NVM image at ``crash_ns``.

        Returns ``(data_lines, counter_lines)`` where ``data_lines``
        maps line address -> (payload, encrypted_with) and
        ``counter_lines`` maps data line address -> architectural
        counter value.  Records are replayed in acceptance order.

        ``adr_budget`` models an ADR energy reserve that dies after
        draining that many ready-but-undrained entries (in acceptance
        order); entries past the budget are lost exactly as if ``adr``
        were off for them.  ``None`` means unlimited (the paper's
        assumption).  Note this can split a counter-atomic pair: the
        budget is an *energy* property, blind to ready-bit pairing.
        """
        data_lines: Dict[int, Tuple[Optional[bytes], int]] = {}
        counters: Dict[int, int] = {}
        adr_drained = 0
        for record in self.records:
            if not record.persists_at(crash_ns, adr=adr):
                continue
            if (
                adr_budget is not None
                and record.drain_ns > crash_ns  # persists via ADR only
            ):
                if adr_drained >= adr_budget:
                    continue
                adr_drained += 1
            values = record.effective_values(crash_ns)
            if record.kind is JournalKind.DATA:
                data_lines[record.address] = (values.payload, values.encrypted_with)
            else:
                group_base = values.group_base
                line_counters = values.counters
                if group_base is None or line_counters is None:
                    raise SimulationError("counter record without counter values")
                if record.single_slot:
                    counters[group_base] = line_counters[0]
                else:
                    for slot, value in enumerate(line_counters):
                        counters[group_base + slot * CACHE_LINE_SIZE] = value
        return data_lines, counters

    def adr_pending(self, crash_ns: float) -> int:
        """Entries that survive a crash at ``crash_ns`` only thanks to ADR.

        This is the drain work the ADR reserve must fund; a budget below
        this number loses writes (see ``reconstruct``).
        """
        return sum(
            1
            for record in self.records
            if record.ready_ns <= crash_ns < record.drain_ns
        )

    # -- introspection -----------------------------------------------------------

    def final_image(self) -> Tuple[Dict[int, Tuple[Optional[bytes], int]], Dict[int, int]]:
        """The crash-free end state (replay at T = infinity)."""
        return self.reconstruct(float("inf"))

    def __len__(self) -> int:
        return len(self.records)

    # -- checkpoint state -----------------------------------------------------------

    @staticmethod
    def _record_state(record: JournalRecord) -> tuple:
        return (
            record.kind.value,
            record.entry_id,
            record.address,
            record.accept_ns,
            record.ready_ns,
            record.drain_ns,
            record.payload,
            record.encrypted_with,
            record.group_base,
            record.counters,
            record.single_slot,
            record.partner_id,
            [
                (a.effective_ns, a.payload, a.encrypted_with, a.group_base, a.counters)
                for a in record.amendments
            ],
        )

    @staticmethod
    def _record_from_state(state: tuple) -> JournalRecord:
        return JournalRecord(
            kind=JournalKind(state[0]),
            entry_id=state[1],
            address=state[2],
            accept_ns=state[3],
            ready_ns=state[4],
            drain_ns=state[5],
            payload=state[6],
            encrypted_with=state[7],
            group_base=state[8],
            counters=state[9],
            single_slot=state[10],
            partner_id=state[11],
            amendments=[
                _Amendment(
                    effective_ns=effective_ns,
                    payload=payload,
                    encrypted_with=encrypted_with,
                    group_base=group_base,
                    counters=counters,
                )
                for effective_ns, payload, encrypted_with, group_base, counters in state[12]
            ],
        )

    def get_state(self) -> Dict[str, object]:
        """Checkpoint state: every record with its amendment history.

        The commit log is emitted only when non-empty so unsharded
        snapshots (and the committed golden-equivalence fixtures) keep
        the exact pre-sharding state shape.
        """
        state: Dict[str, object] = {
            "auto_id": self._auto_id,
            "records": [self._record_state(record) for record in self.records],
        }
        if self.commits:
            state["commits"] = [
                (c.sequence, c.core, c.commit_ns, dict(c.shard_watermarks))
                for c in self.commits
            ]
        return state

    def set_state(self, state: Dict[str, object]) -> None:
        self._auto_id = state["auto_id"]
        self.records = [self._record_from_state(record) for record in state["records"]]
        self._by_entry_id = {record.entry_id: record for record in self.records}
        self.commits = [
            CommitRecord(
                sequence=sequence,
                core=core,
                commit_ns=commit_ns,
                shard_watermarks=dict(watermarks),
            )
            for sequence, core, commit_ns, watermarks in state.get("commits", ())
        ]
