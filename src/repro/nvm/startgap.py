"""Start-Gap wear leveling (Qureshi et al., MICRO 2009).

The paper assumes "a uniform wear-leveling technique [38]" when
converting write-traffic savings into lifetime improvements (§6.3.3);
reference [38] is Start-Gap.  This module implements the algorithm so
the lifetime analysis can be run with an actual leveler instead of the
uniform idealization:

* the region of N lines is served by N+1 physical slots; one slot is
  the *gap* (unused);
* every ``gap_move_interval`` writes, the line adjacent to the gap
  moves into it and the gap shifts by one slot;
* after N+1 gap movements every line has shifted by one physical slot,
  so hot logical lines migrate across the whole region over time.

The mapping needs only two registers (``start`` and ``gap``), which is
the scheme's selling point.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from ..config import CACHE_LINE_SIZE
from ..errors import ConfigurationError
from .wear import WearTracker


@dataclass
class StartGapStats:
    """Operation counts of the leveler."""

    writes: int = 0
    gap_moves: int = 0
    full_rotations: int = 0
    #: Extra line writes performed to move data into the gap.
    remap_writes: int = 0


class StartGapLeveler:
    """Start-Gap address remapping over a region of ``num_lines`` lines.

    The hardware scheme derives the mapping from two registers; the
    simulator instead maintains the slot assignment explicitly (the
    semantics are identical and the explicit form is obviously correct
    under wraparound).
    """

    def __init__(self, num_lines: int, gap_move_interval: int = 100) -> None:
        if num_lines < 2:
            raise ConfigurationError("start-gap needs at least two lines")
        if gap_move_interval < 1:
            raise ConfigurationError("gap move interval must be >= 1")
        self.num_lines = num_lines
        self.num_slots = num_lines + 1
        self.gap_move_interval = gap_move_interval
        #: slot index -> logical line occupying it (None = the gap).
        self._slot_contents: List[int] = list(range(num_lines)) + [-1]
        #: logical line -> slot index.
        self._line_slot: List[int] = list(range(num_lines))
        #: Physical slot index currently serving as the gap.
        self.gap = self.num_slots - 1
        self.stats = StartGapStats()

    def physical_slot(self, logical_line: int) -> int:
        """Map a logical line index to its current physical slot."""
        if logical_line < 0 or logical_line >= self.num_lines:
            raise ConfigurationError(
                "logical line %d out of range [0, %d)" % (logical_line, self.num_lines)
            )
        return self._line_slot[logical_line]

    def record_write(self, logical_line: int) -> int:
        """Account one write; returns the physical slot it lands in.

        Triggers a gap movement every ``gap_move_interval`` writes.
        """
        slot = self.physical_slot(logical_line)
        self.stats.writes += 1
        if self.stats.writes % self.gap_move_interval == 0:
            self._move_gap()
        return slot

    def _move_gap(self) -> None:
        """Shift the gap one slot down (wrapping), moving one line."""
        self.stats.gap_moves += 1
        self.stats.remap_writes += 1  # the displaced line is rewritten
        donor = (self.gap - 1) % self.num_slots
        moved_line = self._slot_contents[donor]
        self._slot_contents[self.gap] = moved_line
        self._slot_contents[donor] = -1
        if moved_line >= 0:
            self._line_slot[moved_line] = self.gap
        self.gap = donor
        if self.gap == self.num_slots - 1:
            # The gap swept the whole region: one full rotation done —
            # every line has shifted by exactly one physical slot.
            self.stats.full_rotations += 1

    # -- analysis -----------------------------------------------------------

    def mapping_snapshot(self) -> List[int]:
        """Current logical -> physical mapping (diagnostics/tests)."""
        return [self.physical_slot(line) for line in range(self.num_lines)]


def simulate_leveling(
    line_writes: Dict[int, int],
    region_lines: int,
    gap_move_interval: int = 100,
    passes: int = 1,
) -> Dict[str, float]:
    """Replay a per-line write histogram through Start-Gap.

    ``line_writes`` maps logical line index -> write count (e.g. from
    :class:`repro.nvm.wear.WearTracker`).  Writes are interleaved
    round-robin to approximate a steady workload.  Returns leveling
    metrics: the max physical-slot write count with and without
    leveling, and the resulting lifetime improvement factor.
    """
    if not line_writes:
        return {
            "unleveled_max": 0,
            "leveled_max": 0,
            "lifetime_improvement": 1.0,
            "remap_overhead": 0.0,
        }
    leveler = StartGapLeveler(region_lines, gap_move_interval)
    physical_writes: Dict[int, int] = {}
    remaining = dict(line_writes)
    for _ in range(passes):
        progress = True
        while progress:
            progress = False
            for line in sorted(line_writes):
                if remaining.get(line, 0) <= 0:
                    continue
                remaining[line] -= 1
                slot = leveler.record_write(line % region_lines)
                physical_writes[slot] = physical_writes.get(slot, 0) + 1
                progress = True
        remaining = dict(line_writes) if passes > 1 else remaining

    unleveled_max = max(line_writes.values())
    leveled_max = max(physical_writes.values())
    total = sum(line_writes.values())
    return {
        "unleveled_max": unleveled_max,
        "leveled_max": leveled_max,
        "lifetime_improvement": unleveled_max / leveled_max if leveled_max else 1.0,
        "remap_overhead": leveler.stats.remap_writes / total if total else 0.0,
    }


def lifetime_with_leveling(
    tracker: WearTracker, region_lines: int, gap_move_interval: int = 100
) -> Dict[str, float]:
    """Start-Gap lifetime analysis for a finished run's wear tracker."""
    histogram = {
        (line // CACHE_LINE_SIZE) % region_lines: tracker.writes_to(line)
        for line in list(tracker._writes)
    }
    merged: Dict[int, int] = {}
    for line, count in histogram.items():
        merged[line] = merged.get(line, 0) + count
    return simulate_leveling(merged, region_lines, gap_move_interval)
