"""Write-endurance accounting.

PCM cells endure a bounded number of writes (~1e8).  The paper notes
(Section 6.3.3) that reducing write traffic directly translates into
lifetime under a uniform wear-leveling scheme such as Start-Gap.  This
tracker records per-line write counts and derives the lifetime metrics
the Figure 14 discussion reports.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

#: Typical PCM cell endurance (writes per cell) used for estimates.
DEFAULT_CELL_ENDURANCE = 10**8


@dataclass
class WearReport:
    """Summary of device wear at a point in time."""

    total_line_writes: int
    distinct_lines: int
    max_line_writes: int
    mean_line_writes: float
    #: Lifetime fraction consumed assuming perfect (uniform) leveling.
    uniform_lifetime_consumed: float
    #: Lifetime fraction consumed with no leveling (hottest line dies first).
    unleveled_lifetime_consumed: float


class WearTracker:
    """Per-line write counters with lifetime estimation."""

    def __init__(self, cell_endurance: int = DEFAULT_CELL_ENDURANCE) -> None:
        if cell_endurance <= 0:
            raise ValueError("cell endurance must be positive")
        self.cell_endurance = cell_endurance
        self._writes: Dict[int, int] = {}
        self.total_writes = 0

    def record_write(self, line_address: int) -> None:
        self._writes[line_address] = self._writes.get(line_address, 0) + 1
        self.total_writes += 1

    def writes_to(self, line_address: int) -> int:
        return self._writes.get(line_address, 0)

    def get_state(self) -> Dict[str, object]:
        """Checkpoint state (endurance is config, not state)."""
        return {"writes": dict(self._writes), "total_writes": self.total_writes}

    def set_state(self, state: Dict[str, object]) -> None:
        self._writes = dict(state["writes"])
        self.total_writes = state["total_writes"]

    def report(self) -> WearReport:
        """Produce a :class:`WearReport` for the current state."""
        distinct = len(self._writes)
        max_writes = max(self._writes.values()) if self._writes else 0
        mean_writes = self.total_writes / distinct if distinct else 0.0
        # Uniform leveling spreads total_writes over every touched line.
        uniform = (
            (self.total_writes / distinct) / self.cell_endurance if distinct else 0.0
        )
        unleveled = max_writes / self.cell_endurance
        return WearReport(
            total_line_writes=self.total_writes,
            distinct_lines=distinct,
            max_line_writes=max_writes,
            mean_line_writes=mean_writes,
            uniform_lifetime_consumed=uniform,
            unleveled_lifetime_consumed=unleveled,
        )

    def relative_lifetime(self, other: "WearTracker") -> float:
        """Lifetime of this device relative to ``other``.

        Under uniform wear leveling, lifetime is inversely proportional
        to total write traffic, which is how the paper converts the
        8.1 % traffic reduction into a lifetime improvement.
        """
        if self.total_writes == 0:
            return float("inf")
        return other.total_writes / self.total_writes
