"""The persistent byte store of the NVM DIMM.

Functionally, the device is a sparse map from line address to the 64 B
of *ciphertext* most recently persisted there (plaintext when the design
does not encrypt).  Alongside each line we keep the counter value it was
encrypted with — not as architectural state (the architectural counters
live in :class:`repro.crypto.counters.CounterStore`) but as ground truth
so experiments can verify whether a post-crash image is decryptable.

A crash image is a deep snapshot of this store plus the architectural
counter store; recovery decrypts the image with the *architectural*
counters and compares against ground truth to detect Eq.-4 failures.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, Optional

from ..config import CACHE_LINE_SIZE
from ..errors import AddressError
from .address import AddressMap
from .wear import WearTracker

_ZERO_LINE = bytes(CACHE_LINE_SIZE)
_LINE_MASK = ~(CACHE_LINE_SIZE - 1)


@dataclass(slots=True)
class PersistedLine:
    """One line as stored in NVM: payload plus encryption ground truth."""

    payload: bytes
    #: Counter used to encrypt ``payload`` (0 = stored in the clear).
    encrypted_with: int

    def __post_init__(self) -> None:
        if len(self.payload) != CACHE_LINE_SIZE:
            raise AddressError("persisted lines are exactly %d bytes" % CACHE_LINE_SIZE)


#: Shared image of an unwritten line: payload is immutable and callers
#: never mutate PersistedLine in place (persists replace the object), so
#: one instance can serve every cold read.
_ZERO_PERSISTED = PersistedLine(payload=_ZERO_LINE, encrypted_with=0)


class NVMDevice:
    """Sparse line-granular persistent store with wear accounting."""

    def __init__(self, address_map: AddressMap, track_wear: bool = True) -> None:
        self.address_map = address_map
        self._lines: Dict[int, PersistedLine] = {}
        self.wear: Optional[WearTracker] = WearTracker() if track_wear else None
        self.line_writes = 0
        self.line_reads = 0
        #: Cleared when the controller runs with crash bookkeeping off
        #: (timing-only figure sweeps): persists still count traffic but
        #: skip the line image and wear map, so crash reconstruction and
        #: lifetime reports are unavailable.
        self.crash_bookkeeping = True

    # -- persistence -----------------------------------------------------------

    def persist_line(
        self, address: int, payload: Optional[bytes], encrypted_with: int = 0
    ) -> None:
        """Durably store one line.

        ``payload`` may be None in timing-only mode; the write is still
        counted for traffic/wear statistics and the counter ground
        truth is still recorded so atomicity checks work.
        """
        line = address & _LINE_MASK
        if line < 0 or line >= self.address_map.memory_size_bytes:
            raise AddressError("address 0x%x outside the device" % address)
        self.line_writes += 1
        if not self.crash_bookkeeping:
            return
        data = payload if payload is not None else _ZERO_LINE
        self._lines[line] = PersistedLine(payload=data, encrypted_with=encrypted_with)
        wear = self.wear
        if wear is not None:
            wear._writes[line] = wear._writes.get(line, 0) + 1
            wear.total_writes += 1

    def read_line(self, address: int) -> PersistedLine:
        """Fetch one line; unwritten lines read as zeroes in the clear."""
        line = address & _LINE_MASK
        if line < 0 or line >= self.address_map.memory_size_bytes:
            raise AddressError("address 0x%x outside the device" % address)
        self.line_reads += 1
        stored = self._lines.get(line)
        if stored is None:
            return _ZERO_PERSISTED
        return stored

    def contains_line(self, address: int) -> bool:
        return (address & _LINE_MASK) in self._lines

    def touched_lines(self) -> Iterator[int]:
        return iter(sorted(self._lines))

    # -- crash support -------------------------------------------------------------

    def snapshot(self) -> Dict[int, PersistedLine]:
        """Deep-enough copy for crash images (payloads are immutable)."""
        return dict(self._lines)

    def restore(self, snapshot: Dict[int, PersistedLine]) -> None:
        self._lines = dict(snapshot)

    # -- checkpoint state -----------------------------------------------------------

    def get_state(self) -> Dict[str, object]:
        """Plain-container checkpoint state (line order preserved)."""
        return {
            "lines": [
                (address, line.payload, line.encrypted_with)
                for address, line in self._lines.items()
            ],
            "line_writes": self.line_writes,
            "line_reads": self.line_reads,
            "wear": self.wear.get_state() if self.wear is not None else None,
        }

    def set_state(self, state: Dict[str, object]) -> None:
        self._lines = {
            address: PersistedLine(payload=payload, encrypted_with=encrypted_with)
            for address, payload, encrypted_with in state["lines"]
        }
        self.line_writes = state["line_writes"]
        self.line_reads = state["line_reads"]
        if self.wear is not None and state["wear"] is not None:
            self.wear.set_state(state["wear"])

    # -- statistics ---------------------------------------------------------------

    @property
    def footprint_bytes(self) -> int:
        """Bytes of the device actually materialized."""
        return len(self._lines) * CACHE_LINE_SIZE
