"""The non-volatile main memory substrate.

Models an 8 GB PCM DIMM behind a DDR3-533 interface: a sparse
line-addressed byte store, bank-level timing, the data/counter address
map, and per-line wear statistics.
"""

from .address import AddressMap
from .device import NVMDevice, PersistedLine
from .startgap import StartGapLeveler, simulate_leveling
from .timing import BankTimingModel, BusModel
from .wear import WearTracker

__all__ = [
    "AddressMap",
    "NVMDevice",
    "PersistedLine",
    "StartGapLeveler",
    "simulate_leveling",
    "BankTimingModel",
    "BusModel",
    "WearTracker",
]
