"""Bank and bus timing for the PCM main memory.

The simulator uses a *resource-timeline* model: each bank and the shared
bus keep the time at which they next become free.  A request arriving at
time ``t`` starts at ``max(t, resource free time)`` and pushes the free
time forward by its occupancy.  This captures queueing, bank conflicts
and bus contention without per-cycle simulation.

PCM asymmetry (reads ~63 ns, writes ~313 ns before scaling) comes from
Table 2; writes additionally hold the bank for the long write-recovery
time ``tWR``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from ..config import CACHE_LINE_SIZE, NVMTimingConfig


@dataclass(slots=True)
class BankAccess:
    """Outcome of scheduling one array access on a bank."""

    bank: int
    start_ns: float
    #: Time at which the requested line is available (read) or the
    #: write is architecturally durable.
    complete_ns: float
    #: Time at which the bank can accept its next access.
    bank_free_ns: float


class BankTimingModel:
    """Per-bank next-free timelines for the NVM array.

    Reads are prioritized over writes, as in any modern memory
    controller: a read never waits behind queued array writes (PCM
    write cancellation / pausing lets an urgent read preempt a long
    write, per Qureshi et al.), while writes wait for both earlier
    writes *and* earlier reads on their bank.  Writes therefore bound
    the drain throughput of the write queues without inflating demand
    read latency — misprioritizing this was the dominant modeling error
    in early versions of this simulator.
    """

    #: Lines per row buffer per bank (a 4 KB row of 64 B lines).
    LINES_PER_ROW = 64

    def __init__(self, timing: NVMTimingConfig) -> None:
        self.timing = timing
        # Config is frozen, so the derived latencies are hoisted out of
        # the per-access path (they were property lookups per call).
        self._read_access_ns = timing.read_access_ns
        self._row_hit_ns = timing.t_cl_ns * timing.read_latency_scale
        self._write_access_ns = timing.write_access_ns
        self._t_wtr_ns = timing.t_wtr_ns
        self._read_free: List[float] = [0.0] * timing.num_banks
        self._write_free: List[float] = [0.0] * timing.num_banks
        self._open_row: List[Optional[int]] = [None] * timing.num_banks
        self.reads = 0
        self.writes = 0
        self.row_hits = 0
        self.total_read_wait_ns = 0.0
        self.total_write_wait_ns = 0.0

    def _row_of(self, bank: int, row_hint: Optional[int]) -> Optional[int]:
        return row_hint

    def schedule_read(
        self, bank: int, request_ns: float, row: Optional[int] = None
    ) -> BankAccess:
        """Schedule an array read of one line on ``bank``.

        ``row`` identifies the row-buffer row; a hit skips the row
        activation (``tRCD``) and pays only the column read (``tCL``),
        which is what gives sequential streams their short latency.
        """
        start = max(request_ns, self._read_free[bank])
        self.total_read_wait_ns += start - request_ns
        if row is not None and self._open_row[bank] == row:
            access_ns = self._row_hit_ns
            self.row_hits += 1
        else:
            access_ns = self._read_access_ns
            self._open_row[bank] = row
        complete = start + access_ns
        self._read_free[bank] = complete
        # A preempted write must redo its slot after the read.
        self._write_free[bank] = max(self._write_free[bank], complete)
        self.reads += 1
        return BankAccess(bank=bank, start_ns=start, complete_ns=complete, bank_free_ns=complete)

    def schedule_write(
        self, bank: int, request_ns: float, row: Optional[int] = None
    ) -> BankAccess:
        """Schedule an array write of one line on ``bank``.

        The write is durable after ``tCWD``+burst, but the bank stays
        busy through the long PCM write-recovery window ``tWR``.  PCM
        writes go to the cell array, so they close the open row.
        """
        start = max(request_ns, self._write_free[bank], self._read_free[bank])
        self.total_write_wait_ns += start - request_ns
        complete = start + self._write_access_ns
        self._write_free[bank] = complete + self._t_wtr_ns
        self._open_row[bank] = None
        self.writes += 1
        return BankAccess(
            bank=bank, start_ns=start, complete_ns=complete, bank_free_ns=self._write_free[bank]
        )

    def earliest_free(self) -> float:
        """Time at which at least one bank can take a write."""
        return min(
            max(r, w) for r, w in zip(self._read_free, self._write_free)
        )

    def reset(self) -> None:
        self._read_free = [0.0] * self.timing.num_banks
        self._write_free = [0.0] * self.timing.num_banks
        self._open_row = [None] * self.timing.num_banks
        self.reads = 0
        self.writes = 0
        self.row_hits = 0
        self.total_read_wait_ns = 0.0
        self.total_write_wait_ns = 0.0

    def get_state(self) -> dict:
        """Checkpoint state: per-bank timelines and counters."""
        return {
            "read_free": list(self._read_free),
            "write_free": list(self._write_free),
            "open_row": list(self._open_row),
            "reads": self.reads,
            "writes": self.writes,
            "row_hits": self.row_hits,
            "total_read_wait_ns": self.total_read_wait_ns,
            "total_write_wait_ns": self.total_write_wait_ns,
        }

    def set_state(self, state: dict) -> None:
        self._read_free = list(state["read_free"])
        self._write_free = list(state["write_free"])
        self._open_row = list(state["open_row"])
        self.reads = state["reads"]
        self.writes = state["writes"]
        self.row_hits = state["row_hits"]
        self.total_read_wait_ns = state["total_read_wait_ns"]
        self.total_write_wait_ns = state["total_write_wait_ns"]


class BusModel:
    """The shared memory bus between controller and DIMM.

    Width matters: the baseline bus is 64-bit (8 B per beat) and the
    co-located designs widen it to 72-bit so that a 64 B line plus its
    8 B counter move in one 8-beat burst (paper Section 3.2.1).
    """

    def __init__(self, timing: NVMTimingConfig) -> None:
        self.timing = timing
        self._free_ns = 0.0
        #: burst_ns memoized per payload size (only a handful occur).
        self._burst_cache: dict = {}
        self.transfers = 0
        self.bytes_moved = 0
        self.busy_ns = 0.0

    def schedule_transfer(self, request_ns: float, payload_bytes: int = CACHE_LINE_SIZE) -> float:
        """Reserve the bus; returns the transfer completion time."""
        start = max(request_ns, self._free_ns)
        duration = self._burst_cache.get(payload_bytes)
        if duration is None:
            duration = self.timing.burst_ns(payload_bytes)
            self._burst_cache[payload_bytes] = duration
        self._free_ns = start + duration
        self.transfers += 1
        self.bytes_moved += payload_bytes
        self.busy_ns += duration
        return self._free_ns

    def utilization(self, elapsed_ns: float) -> float:
        """Fraction of ``elapsed_ns`` the bus spent transferring."""
        if elapsed_ns <= 0:
            return 0.0
        return min(1.0, self.busy_ns / elapsed_ns)

    def reset(self) -> None:
        self._free_ns = 0.0
        self.transfers = 0
        self.bytes_moved = 0
        self.busy_ns = 0.0

    def get_state(self) -> dict:
        """Checkpoint state: bus timeline and traffic counters."""
        return {
            "free_ns": self._free_ns,
            "transfers": self.transfers,
            "bytes_moved": self.bytes_moved,
            "busy_ns": self.busy_ns,
        }

    def set_state(self, state: dict) -> None:
        self._free_ns = state["free_ns"]
        self.transfers = state["transfers"]
        self.bytes_moved = state["bytes_moved"]
        self.busy_ns = state["busy_ns"]
