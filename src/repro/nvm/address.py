"""Physical address layout of the encrypted NVMM.

The separate data-and-counter design (paper Figure 5(c)) stores counters
in their own region of the same NVM.  We reserve the top 1/9 of the
device for counters — each 64 B data line needs 8 B of counter storage —
and hand out the rest as the data region.

The map also provides the line/bank arithmetic the controller needs.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property

from ..config import CACHE_LINE_SIZE, COUNTERS_PER_LINE
from ..errors import AddressError
from ..utils.bitops import align_down, is_power_of_two

_LINE_MASK = ~(CACHE_LINE_SIZE - 1)
_LINE_SHIFT = CACHE_LINE_SIZE.bit_length() - 1


@dataclass(frozen=True)
class AddressMap:
    """Partition of the physical address space into data + counters."""

    memory_size_bytes: int
    num_banks: int = 8

    def __post_init__(self) -> None:
        if self.memory_size_bytes % CACHE_LINE_SIZE != 0:
            raise AddressError(
                "memory size must be a multiple of the %d B line size" % CACHE_LINE_SIZE
            )
        if self.memory_size_bytes < CACHE_LINE_SIZE * (COUNTERS_PER_LINE + 1):
            raise AddressError("memory too small to host data and counter regions")
        if not is_power_of_two(self.num_banks):
            raise AddressError("bank count must be a power of two")

    @cached_property
    def counter_region_base(self) -> int:
        """First byte of the counter region (data region ends here).

        Each 64 B data line needs 8 B of counter storage, so data gets
        8/9 of the device (rounded down to a line boundary); the rest
        always suffices to hold every data line's counter.
        """
        data_bytes = self.memory_size_bytes * COUNTERS_PER_LINE // (COUNTERS_PER_LINE + 1)
        return align_down(data_bytes, CACHE_LINE_SIZE)

    @property
    def data_region_bytes(self) -> int:
        return self.counter_region_base

    @property
    def counter_region_bytes(self) -> int:
        return self.memory_size_bytes - self.counter_region_base

    # -- classification -----------------------------------------------------

    def is_data_address(self, address: int) -> bool:
        return 0 <= address < self.counter_region_base

    def is_counter_address(self, address: int) -> bool:
        return self.counter_region_base <= address < self.memory_size_bytes

    def check_data_address(self, address: int) -> None:
        if not self.is_data_address(address):
            raise AddressError("0x%x is not a data address" % address)

    # -- line arithmetic ------------------------------------------------------

    @staticmethod
    def line_base(address: int) -> int:
        """Base address of the 64 B line containing ``address``."""
        return address & _LINE_MASK

    @staticmethod
    def line_index(address: int) -> int:
        return address >> _LINE_SHIFT

    def bank_of(self, address: int) -> int:
        """Bank servicing this line (line-interleaved across banks)."""
        return (address >> _LINE_SHIFT) & (self.num_banks - 1)

    def row_of(self, address: int, lines_per_row: int = 64) -> int:
        """Row-buffer row of this line within its bank.

        With line-interleaving, consecutive lines stripe across banks
        and land in the same per-bank row, so streaming accesses enjoy
        row-buffer hits.
        """
        return ((address >> _LINE_SHIFT) // self.num_banks) // lines_per_row

    # -- data <-> counter mapping -----------------------------------------------

    def counter_address_of(self, data_address: int) -> int:
        """NVM address of the 8 B counter for the data line at ``data_address``."""
        self.check_data_address(data_address)
        return self.counter_region_base + self.line_index(data_address) * 8

    def counter_line_address_of(self, data_address: int) -> int:
        """NVM address of the 64 B counter line covering ``data_address``."""
        return align_down(self.counter_address_of(data_address), CACHE_LINE_SIZE)

    def data_group_base(self, data_address: int) -> int:
        """Base data address of the 8-line group sharing one counter line."""
        self.check_data_address(data_address)
        return align_down(data_address, CACHE_LINE_SIZE * COUNTERS_PER_LINE)
