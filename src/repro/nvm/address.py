"""Physical address layout of the encrypted NVMM.

The separate data-and-counter design (paper Figure 5(c)) stores counters
in their own region of the same NVM.  We reserve the top 1/9 of the
device for counters — each 64 B data line needs 8 B of counter storage —
and hand out the rest as the data region.

The map also provides the line/bank arithmetic the controller needs.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property
from typing import Sequence

from ..config import CACHE_LINE_SIZE, COUNTERS_PER_LINE
from ..errors import AddressError
from ..utils.bitops import align_down, is_power_of_two

_LINE_MASK = ~(CACHE_LINE_SIZE - 1)
_LINE_SHIFT = CACHE_LINE_SIZE.bit_length() - 1


@dataclass(frozen=True)
class AddressMap:
    """Partition of the physical address space into data + counters."""

    memory_size_bytes: int
    num_banks: int = 8

    def __post_init__(self) -> None:
        if self.memory_size_bytes % CACHE_LINE_SIZE != 0:
            raise AddressError(
                "memory size must be a multiple of the %d B line size" % CACHE_LINE_SIZE
            )
        if self.memory_size_bytes < CACHE_LINE_SIZE * (COUNTERS_PER_LINE + 1):
            raise AddressError("memory too small to host data and counter regions")
        if not is_power_of_two(self.num_banks):
            raise AddressError("bank count must be a power of two")

    @cached_property
    def counter_region_base(self) -> int:
        """First byte of the counter region (data region ends here).

        Each 64 B data line needs 8 B of counter storage, so data gets
        8/9 of the device (rounded down to a line boundary); the rest
        always suffices to hold every data line's counter.
        """
        data_bytes = self.memory_size_bytes * COUNTERS_PER_LINE // (COUNTERS_PER_LINE + 1)
        return align_down(data_bytes, CACHE_LINE_SIZE)

    @property
    def data_region_bytes(self) -> int:
        return self.counter_region_base

    @property
    def counter_region_bytes(self) -> int:
        return self.memory_size_bytes - self.counter_region_base

    # -- classification -----------------------------------------------------

    def is_data_address(self, address: int) -> bool:
        return 0 <= address < self.counter_region_base

    def is_counter_address(self, address: int) -> bool:
        return self.counter_region_base <= address < self.memory_size_bytes

    def check_data_address(self, address: int) -> None:
        if not self.is_data_address(address):
            raise AddressError("0x%x is not a data address" % address)

    # -- line arithmetic ------------------------------------------------------

    @staticmethod
    def line_base(address: int) -> int:
        """Base address of the 64 B line containing ``address``."""
        return address & _LINE_MASK

    @staticmethod
    def line_index(address: int) -> int:
        return address >> _LINE_SHIFT

    def bank_of(self, address: int) -> int:
        """Bank servicing this line (line-interleaved across banks)."""
        return (address >> _LINE_SHIFT) & (self.num_banks - 1)

    def row_of(self, address: int, lines_per_row: int = 64) -> int:
        """Row-buffer row of this line within its bank.

        With line-interleaving, consecutive lines stripe across banks
        and land in the same per-bank row, so streaming accesses enjoy
        row-buffer hits.
        """
        return ((address >> _LINE_SHIFT) // self.num_banks) // lines_per_row

    # -- data <-> counter mapping -----------------------------------------------

    def counter_address_of(self, data_address: int) -> int:
        """NVM address of the 8 B counter for the data line at ``data_address``."""
        self.check_data_address(data_address)
        return self.counter_region_base + self.line_index(data_address) * 8

    def counter_line_address_of(self, data_address: int) -> int:
        """NVM address of the 64 B counter line covering ``data_address``."""
        return align_down(self.counter_address_of(data_address), CACHE_LINE_SIZE)

    def data_group_base(self, data_address: int) -> int:
        """Base data address of the 8-line group sharing one counter line."""
        self.check_data_address(data_address)
        return align_down(data_address, CACHE_LINE_SIZE * COUNTERS_PER_LINE)


#: Interleave granule of the sharded address space: one counter group
#: (eight 64 B data lines sharing one counter line).  Interleaving at
#: group granularity keeps a counter line — and therefore a counter
#: cache entry, a BMT leaf, and a ready-bit pair — wholly inside one
#: shard, so no security-metadata structure ever spans controllers.
SHARD_GRANULE = CACHE_LINE_SIZE * COUNTERS_PER_LINE
_GRANULE_SHIFT = SHARD_GRANULE.bit_length() - 1
_GRANULE_MASK = SHARD_GRANULE - 1


@dataclass(frozen=True)
class ShardMap:
    """Round-robin interleave of the global data space across N shards.

    Global counter group ``g`` (one :data:`SHARD_GRANULE` of data) lives
    on shard ``g % shards`` at local group ``g // shards``.  Each shard
    then runs a completely ordinary :class:`AddressMap` over
    ``memory_size_bytes // shards`` of private NVM: local data addresses
    are dense from 0, and the shard's counter region covers exactly its
    own groups.

    The translation is a bijection between the global groups each shard
    owns and the shard's local group space; ``to_local``/``to_global``
    are exact inverses (property-tested in
    ``tests/test_property_sharding.py``).
    """

    memory_size_bytes: int
    shards: int
    num_banks: int = 8

    def __post_init__(self) -> None:
        if self.shards < 1:
            raise AddressError("need at least one shard")
        if self.memory_size_bytes % (self.shards * CACHE_LINE_SIZE) != 0:
            raise AddressError("memory size must divide evenly across shards")
        # Validates per-shard geometry (line alignment, minimum size).
        AddressMap(self.shard_memory_bytes, self.num_banks)

    @property
    def shard_memory_bytes(self) -> int:
        """Private NVM capacity of one shard."""
        return self.memory_size_bytes // self.shards

    @cached_property
    def data_capacity_bytes(self) -> int:
        """Global data bytes addressable through the interleave.

        Each shard accepts only *full* groups its local data region can
        host, so the sharded capacity can trail the unsharded
        ``AddressMap.counter_region_base`` by up to one granule per
        shard — workload arenas are carved well below either bound.
        """
        per_shard_groups = (
            AddressMap(self.shard_memory_bytes, self.num_banks).counter_region_base
            // SHARD_GRANULE
        )
        return per_shard_groups * self.shards * SHARD_GRANULE

    def check_address(self, address: int) -> None:
        if not 0 <= address < self.data_capacity_bytes:
            raise AddressError(
                "0x%x outside the sharded data space (capacity 0x%x)"
                % (address, self.data_capacity_bytes)
            )

    def shard_of(self, address: int) -> int:
        """Owning shard of the data line at ``address``."""
        self.check_address(address)
        return (address // SHARD_GRANULE) % self.shards

    def to_local(self, address: int) -> "tuple[int, int]":
        """Translate a global data address to ``(shard, local_address)``."""
        self.check_address(address)
        group, offset = divmod(address, SHARD_GRANULE)
        shard, local_group = group % self.shards, group // self.shards
        return shard, local_group * SHARD_GRANULE + offset

    def to_global(self, shard: int, local_address: int) -> int:
        """Translate a shard-local data address back to the global space."""
        if not 0 <= shard < self.shards:
            raise AddressError("shard %d out of range" % shard)
        local_group, offset = divmod(local_address, SHARD_GRANULE)
        address = (local_group * self.shards + shard) * SHARD_GRANULE + offset
        self.check_address(address)
        return address

    def dispatch_batch(
        self, addresses: "Sequence[int]"
    ) -> "list[list[tuple[int, int]]]":
        """Bucket a batch of global addresses by owning shard.

        Returns one list per shard of ``(batch_index, local_address)``
        pairs, each in batch order — the per-shard issue lists a batched
        dispatcher hands its controllers.  Equivalent to calling
        :meth:`to_local` per address (the retained reference path in
        ``repro.bench.perf``), but single-pass with the bounds check
        hoisted to the batch extremes and one ``divmod`` per line, so
        bucketing large batches stays off the simulator's profile.
        """
        buckets: "list[list[tuple[int, int]]]" = [[] for _ in range(self.shards)]
        if not addresses:
            return buckets
        if min(addresses) < 0 or max(addresses) >= self.data_capacity_bytes:
            for address in addresses:
                self.check_address(address)  # raises with the culprit
        shards = self.shards
        appends = [bucket.append for bucket in buckets]
        if shards & (shards - 1) == 0:
            # Power-of-two shard counts (the common deployments) bucket
            # with pure shifts and masks — no division on the hot path.
            shard_mask = shards - 1
            shard_shift = shards.bit_length() - 1
            for index, address in enumerate(addresses):
                group = address >> _GRANULE_SHIFT
                appends[group & shard_mask](
                    (
                        index,
                        ((group >> shard_shift) << _GRANULE_SHIFT)
                        | (address & _GRANULE_MASK),
                    )
                )
        else:
            granule = SHARD_GRANULE
            for index, address in enumerate(addresses):
                group, offset = divmod(address, granule)
                local_group, shard = divmod(group, shards)
                appends[shard]((index, local_group * granule + offset))
        return buckets
