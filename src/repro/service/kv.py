"""Linearizable multi-tenant KV engine over encrypted-NVMM transactions.

The engine promotes the ``examples/kv_store.py`` sketch into a
first-class service scenario:

* **Per-tenant namespaces with isolated arenas.**  The NVM data region
  is carved into one arena per tenant (:func:`build_tenant_arenas`);
  each tenant gets its own transaction record, log area and heap, so a
  tenant's writes can never land in another tenant's range and a crash
  replays every tenant's log independently.
* **Open-addressing hash table with tombstones and bucket splitting.**
  Each bucket is one 64 B cache line holding four (key, value) slots;
  deletes leave tombstones; when the load factor crosses ``max_load``
  (or probing fails), the directory doubles: the rehashed table is
  written into a *fresh* region in bounded-size transactions, then a
  final one-line transaction flips the metadata pointer — a crash
  anywhere mid-split recovers to either the old or the new directory,
  never a mix.
* **Single-writer linearizability.**  All tenants' operations are
  serialized into one core's trace; every operation — including reads
  and scans — commits a transaction, so its ``txn_end`` time is the
  linearization (and acknowledgement) point the SLO layer and the
  durability validator both use.

:class:`ServiceValidator` is the multi-tenant analogue of
:class:`~repro.workloads.base.PrefixValidator`: after a crash it runs
the mechanism's recovery over *every* tenant arena, then requires each
tenant's recovered lines to equal a prefix of that tenant's committed
transactions that includes everything acknowledged before the crash —
no acknowledged-write loss, no cross-tenant leakage.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

from ..config import CACHE_LINE_SIZE, SystemConfig
from ..crash.recovery import RecoveredMemory
from ..crash.session import RecoveryContext
from ..errors import DecryptionFailure, HeapError, ServiceError, TransactionError
from ..nvm.address import AddressMap
from ..sim.trace import Trace, TraceBuilder
from ..txn.checksum_undo import recover_checksummed_undo
from ..txn.heap import LOG_ENTRY_BYTES, CoreArena, PersistentHeap
from ..txn.manager import make_transactions
from ..txn.redolog import recover_redo_log
from ..txn.undolog import recover_undo_log
from ..utils.bitops import align_down
from ..workloads.base import LineModel, RecordedTxn, TxnRecorder
from .traffic import Operation

_ZERO_LINE = bytes(CACHE_LINE_SIZE)

#: Slot sentinel: never-written key.
EMPTY_KEY = 0
#: Slot sentinel: deleted key (tombstone keeps probe chains intact).
TOMBSTONE_KEY = (1 << 64) - 1
#: (key u64, value u64) pairs per 64 B bucket line.
SLOTS_PER_BUCKET = 4
_SLOT_BYTES = 16

#: Fibonacci-hash multiplier (same mixer the example used).
_HASH_MULT = 0x9E3779B97F4A7C15
_MASK64 = (1 << 64) - 1

#: Tenant metadata line layout (one line per tenant).
_META_NBUCKETS = 0
_META_TABLE_BASE = 8
_META_GENERATION = 16

#: Mechanism name -> arena recovery procedure.
_RECOVERERS: Dict[str, Callable[..., List[int]]] = {
    "undo": recover_undo_log,
    "redo": recover_redo_log,
    "checksum-undo": recover_checksummed_undo,
}


def build_tenant_arenas(
    config: SystemConfig, tenants: int, log_capacity: int = 32
) -> List[CoreArena]:
    """Carve the data region into one isolated arena per tenant.

    Mirrors :meth:`repro.txn.heap.MemoryLayout.build` but splits by
    tenant instead of by core: the service is single-writer (one
    trace), yet every tenant keeps its own transaction record, log and
    heap so recovery and validation stay per-tenant.
    """
    if tenants < 1:
        raise ServiceError("the service needs at least one tenant")
    address_map = AddressMap(config.memory_size_bytes, config.nvm.num_banks)
    data_bytes = address_map.counter_region_base
    arena_bytes = data_bytes // tenants
    arena_bytes -= arena_bytes % CACHE_LINE_SIZE
    metadata_bytes = CACHE_LINE_SIZE + log_capacity * LOG_ENTRY_BYTES
    if arena_bytes <= metadata_bytes + 4 * CACHE_LINE_SIZE:
        raise ServiceError(
            "data region too small for %d tenant arena(s) with %d log entries"
            % (tenants, log_capacity)
        )
    arenas: List[CoreArena] = []
    for tenant in range(tenants):
        base = tenant * arena_bytes
        heap = PersistentHeap(base, base + arena_bytes, name="tenant-%d" % tenant)
        txn_record = heap.alloc_lines(1)
        log_base = heap.alloc(log_capacity * LOG_ENTRY_BYTES)
        arenas.append(
            CoreArena(
                core_id=tenant,
                heap=heap,
                txn_record=txn_record,
                log_base=log_base,
                log_capacity=log_capacity,
            )
        )
    return arenas


class TenantKV:
    """One tenant's crash-consistent open-addressing KV namespace.

    All persistent mutations go through the tenant's
    :class:`~repro.workloads.base.TxnRecorder`; the volatile lookup
    index (key -> slot address) is pure acceleration — it is derivable
    from the table and is rebuilt after splits, exactly like the DRAM
    index of a real NVM KV store.  ``use_index=False`` disables it and
    probes persistently for every access (the perf kernel's reference
    path).
    """

    def __init__(
        self,
        tenant_id: int,
        recorder: TxnRecorder,
        arena: CoreArena,
        service: "ServiceWorkload",
        initial_buckets: int = 8,
        max_load: float = 0.7,
        use_index: bool = True,
    ) -> None:
        if initial_buckets < 1 or initial_buckets & (initial_buckets - 1):
            raise ServiceError("initial_buckets must be a power of two")
        if not 0.1 <= max_load <= 0.95:
            raise ServiceError("max_load must be in [0.1, 0.95]")
        self.tenant_id = tenant_id
        self.recorder = recorder
        self.arena = arena
        self.service = service
        self.max_load = max_load
        self.use_index = use_index
        self.meta_address = arena.heap.alloc_lines(1)
        self._nbuckets = initial_buckets
        self._table_base = arena.heap.alloc_lines(initial_buckets)
        self._generation = 0
        self._count = 0
        self._tombstones = 0
        self._index: Dict[int, int] = {}
        self.splits = 0
        self._setup()

    @property
    def model(self) -> LineModel:
        return self.recorder.model

    @property
    def nbuckets(self) -> int:
        return self._nbuckets

    @property
    def count(self) -> int:
        return self._count

    def _setup(self) -> None:
        """Persist the initial directory (one transaction)."""
        recorder = self.recorder
        recorder.begin()
        recorder.write_u64(self.meta_address + _META_NBUCKETS, self._nbuckets)
        recorder.write_u64(self.meta_address + _META_TABLE_BASE, self._table_base)
        recorder.write_u64(self.meta_address + _META_GENERATION, self._generation)
        self._commit("setup")

    # -- addressing --------------------------------------------------------

    def _bucket_address(self, bucket: int) -> int:
        return self._table_base + bucket * CACHE_LINE_SIZE

    @staticmethod
    def _home_bucket(key: int, nbuckets: int) -> int:
        mixed = (key * _HASH_MULT) & _MASK64
        return (mixed >> 17) & (nbuckets - 1)

    @staticmethod
    def _check_key(key: int) -> None:
        if not 0 < key < TOMBSTONE_KEY:
            raise ServiceError(
                "keys must be u64 values strictly between 0 and the "
                "tombstone sentinel"
            )

    # -- probing -----------------------------------------------------------

    def _locate(self, key: int) -> Tuple[Optional[int], Optional[int]]:
        """Find ``key``; returns ``(slot_address, insert_address)``.

        ``slot_address`` is the key's slot when present.  When absent,
        ``insert_address`` is where a put should land (first tombstone
        on the probe path, else the terminating empty slot) — or None
        when the whole table probed full.  Every probed bucket emits a
        timed LOAD through the recorder.
        """
        recorder = self.recorder
        if self.use_index:
            slot = self._index.get(key)
            if slot is not None:
                recorder.read_line(align_down(slot, CACHE_LINE_SIZE))
                return slot, None
        insert: Optional[int] = None
        nbuckets = self._nbuckets
        home = self._home_bucket(key, nbuckets)
        for probe in range(nbuckets):
            bucket = self._bucket_address((home + probe) & (nbuckets - 1))
            line = recorder.read_line(bucket)
            for slot_index in range(SLOTS_PER_BUCKET):
                offset = slot_index * _SLOT_BYTES
                stored = int.from_bytes(line[offset : offset + 8], "little")
                if stored == key:
                    return bucket + offset, insert
                if stored == TOMBSTONE_KEY:
                    if insert is None:
                        insert = bucket + offset
                elif stored == EMPTY_KEY:
                    return None, insert if insert is not None else bucket + offset
        return None, insert

    # -- operations --------------------------------------------------------

    def put(self, key: int, value: int) -> None:
        """Insert or overwrite; one committed transaction (plus splits)."""
        self._check_key(key)
        if not self._has_room():
            self._split()
        recorder = self.recorder
        recorder.begin()
        slot, insert = self._locate(key)
        if slot is None and insert is None:
            # Probed the whole table without a slot: abort the *open*
            # read-only transaction (nothing staged yet), grow, retry.
            recorder.abort()
            self._split()
            recorder.begin()
            slot, insert = self._locate(key)
            if slot is None and insert is None:
                recorder.abort()
                raise ServiceError(
                    "tenant %d namespace still full after split" % self.tenant_id
                )
        target = slot if slot is not None else insert
        assert target is not None
        displaced = self.model.read_u64(target)
        recorder.write_u64(target, key)
        recorder.write_u64(target + 8, value)
        self._commit("put")
        if slot is None:
            self._count += 1
            if displaced == TOMBSTONE_KEY:
                self._tombstones -= 1
        if self.use_index:
            self._index[key] = target

    def get(self, key: int) -> Optional[int]:
        """Read; commits an empty transaction as the linearization point."""
        self._check_key(key)
        self.recorder.begin()
        slot, _insert = self._locate(key)
        value = self.model.read_u64(slot + 8) if slot is not None else None
        self._commit("get")
        return value

    def delete(self, key: int) -> bool:
        """Tombstone the key; returns whether it was present."""
        self._check_key(key)
        recorder = self.recorder
        recorder.begin()
        slot, _insert = self._locate(key)
        if slot is not None:
            recorder.write_u64(slot, TOMBSTONE_KEY)
            recorder.write_u64(slot + 8, 0)
        self._commit("delete")
        if slot is not None:
            self._count -= 1
            self._tombstones += 1
            if self.use_index:
                self._index.pop(key, None)
        return slot is not None

    def scan(self, key_lo: int, key_hi: int) -> List[Tuple[int, int]]:
        """Range scan: all (key, value) pairs with lo <= key <= hi."""
        self._check_key(key_lo)
        recorder = self.recorder
        recorder.begin()
        items: List[Tuple[int, int]] = []
        for bucket in range(self._nbuckets):
            line = recorder.read_line(self._bucket_address(bucket))
            for slot_index in range(SLOTS_PER_BUCKET):
                offset = slot_index * _SLOT_BYTES
                stored = int.from_bytes(line[offset : offset + 8], "little")
                if stored in (EMPTY_KEY, TOMBSTONE_KEY):
                    continue
                if key_lo <= stored <= key_hi:
                    value = int.from_bytes(line[offset + 8 : offset + 16], "little")
                    items.append((stored, value))
        self._commit("scan")
        return sorted(items)

    # -- growth ------------------------------------------------------------

    def _has_room(self) -> bool:
        capacity = self._nbuckets * SLOTS_PER_BUCKET
        return (self._count + self._tombstones + 1) <= int(self.max_load * capacity)

    def _split(self) -> None:
        """Double the directory: rehash into a fresh region, then flip.

        The rehashed table is written with bounded-size transactions
        (each at most the arena's log capacity), all into lines the old
        directory never references; the final one-line transaction
        atomically flips ``(nbuckets, table_base, generation)``.  A
        crash before the flip recovers to the old directory, after it
        to the new one — the paper's single-atom commit idiom at the
        structure level.
        """
        new_nbuckets = self._nbuckets * 2
        try:
            new_base = self.arena.heap.alloc_lines(new_nbuckets)
        except HeapError:
            raise ServiceError(
                "tenant %d arena exhausted: cannot grow directory past %d "
                "buckets" % (self.tenant_id, self._nbuckets)
            ) from None
        # In-memory rehash from the model (the authoritative contents).
        live: List[Tuple[int, int]] = []
        for bucket in range(self._nbuckets):
            line = self.model.line(self._bucket_address(bucket))
            for slot_index in range(SLOTS_PER_BUCKET):
                offset = slot_index * _SLOT_BYTES
                stored = int.from_bytes(line[offset : offset + 8], "little")
                if stored not in (EMPTY_KEY, TOMBSTONE_KEY):
                    value = int.from_bytes(line[offset + 8 : offset + 16], "little")
                    live.append((stored, value))
        new_lines: Dict[int, bytearray] = {}
        new_index: Dict[int, int] = {}
        for key, value in live:
            placed = False
            home = self._home_bucket(key, new_nbuckets)
            for probe in range(new_nbuckets):
                bucket_addr = new_base + (
                    (home + probe) & (new_nbuckets - 1)
                ) * CACHE_LINE_SIZE
                line_buf = new_lines.setdefault(bucket_addr, bytearray(CACHE_LINE_SIZE))
                for slot_index in range(SLOTS_PER_BUCKET):
                    offset = slot_index * _SLOT_BYTES
                    if int.from_bytes(line_buf[offset : offset + 8], "little") == EMPTY_KEY:
                        line_buf[offset : offset + 8] = key.to_bytes(8, "little")
                        line_buf[offset + 8 : offset + 16] = value.to_bytes(8, "little")
                        new_index[key] = bucket_addr + offset
                        placed = True
                        break
                if placed:
                    break
            if not placed:  # pragma: no cover - doubling always fits
                raise ServiceError("rehash failed to place key %d" % key)
        recorder = self.recorder
        written = [address for address in sorted(new_lines) if any(new_lines[address])]
        chunk = max(1, self.arena.log_capacity)
        for start in range(0, len(written), chunk):
            recorder.begin()
            for address in written[start : start + chunk]:
                recorder.write_bytes(address, bytes(new_lines[address]))
            self._commit("split-chunk")
        self._generation += 1
        recorder.begin()
        recorder.write_u64(self.meta_address + _META_NBUCKETS, new_nbuckets)
        recorder.write_u64(self.meta_address + _META_TABLE_BASE, new_base)
        recorder.write_u64(self.meta_address + _META_GENERATION, self._generation)
        self._commit("split-flip")
        self._nbuckets = new_nbuckets
        self._table_base = new_base
        self._count = len(live)
        self._tombstones = 0
        self._index = new_index if self.use_index else {}
        self.splits += 1

    # -- bookkeeping -------------------------------------------------------

    def _commit(self, tag: str) -> RecordedTxn:
        recorded = self.recorder.commit()
        self.service._note_commit(self.tenant_id, recorded, tag)
        return recorded


@dataclass(frozen=True)
class CommitRecord:
    """Global-order bookkeeping for one committed transaction."""

    tenant: int
    #: Tenant-local transaction index (position in the tenant history).
    local_index: int
    #: What committed: setup | put | get | delete | scan | split-chunk
    #: | split-flip.
    tag: str
    #: Index of the driving operation; None for setup transactions.
    op_index: Optional[int]


class ServiceWorkload:
    """Builds the whole multi-tenant service trace on one core."""

    def __init__(
        self,
        config: SystemConfig,
        tenants: int,
        mechanism: str = "undo",
        log_capacity: int = 32,
        initial_buckets: int = 8,
        max_load: float = 0.7,
        use_index: bool = True,
        name: str = "kv-service",
    ) -> None:
        if mechanism not in _RECOVERERS:
            raise ServiceError(
                "service mechanism must be one of %s" % (tuple(_RECOVERERS),)
            )
        self.config = config
        self.mechanism = mechanism
        self.arenas = build_tenant_arenas(config, tenants, log_capacity)
        self.builder = TraceBuilder(name, functional=config.functional)
        self.commit_order: List[CommitRecord] = []
        self._current_op: Optional[int] = None
        self.stores: List[TenantKV] = []
        for arena in self.arenas:
            model = LineModel()
            txns = make_transactions(mechanism, self.builder, arena)
            recorder = TxnRecorder(self.builder, txns, model)
            self.stores.append(
                TenantKV(
                    arena.core_id,
                    recorder,
                    arena,
                    self,
                    initial_buckets=initial_buckets,
                    max_load=max_load,
                    use_index=use_index,
                )
            )

    def _note_commit(self, tenant: int, recorded: RecordedTxn, tag: str) -> None:
        self.commit_order.append(
            CommitRecord(
                tenant=tenant,
                local_index=recorded.index,
                tag=tag,
                op_index=self._current_op,
            )
        )

    def execute(self, operations: Sequence[Operation]) -> List[object]:
        """Run the stream in order; returns per-operation results."""
        results: List[object] = []
        for op in operations:
            if not 0 <= op.tenant < len(self.stores):
                raise ServiceError("operation %d targets unknown tenant %d"
                                   % (op.index, op.tenant))
            self._current_op = op.index
            store = self.stores[op.tenant]
            if op.kind == "put":
                store.put(op.key, op.value)
                results.append(None)
            elif op.kind == "get":
                results.append(store.get(op.key))
            elif op.kind == "delete":
                results.append(store.delete(op.key))
            elif op.kind == "scan":
                results.append(store.scan(op.key, op.key_hi))
            else:
                raise ServiceError("unknown operation kind %r" % op.kind)
        self._current_op = None
        return results

    def build_run(self, operations: Sequence[Operation]) -> "ServiceRun":
        """Freeze the trace and bookkeeping for simulation/validation."""
        return ServiceRun(
            trace=self.builder.build(),
            mechanism=self.mechanism,
            arenas=self.arenas,
            tenant_histories=[list(s.recorder.history) for s in self.stores],
            tenant_models=[s.model for s in self.stores],
            commit_order=list(self.commit_order),
            operations=list(operations),
        )


@dataclass
class ServiceRun:
    """Everything one generated service trace exposes downstream."""

    trace: Trace
    mechanism: str
    arenas: List[CoreArena]
    tenant_histories: List[List[RecordedTxn]]
    tenant_models: List[LineModel]
    commit_order: List[CommitRecord]
    operations: List[Operation]

    @property
    def tenants(self) -> int:
        return len(self.arenas)

    def tenant_tracked_lines(self, tenant: int) -> Set[int]:
        lines: Set[int] = set()
        for txn in self.tenant_histories[tenant]:
            for line, _old, _new in txn.writes:
                lines.add(line)
        return lines

    def op_commit_spans(self) -> Dict[int, Tuple[int, int]]:
        """op index -> (first, last) global txn index it committed.

        An operation's *last* transaction is its acknowledgement point;
        splits triggered by a put belong to that put's span.
        """
        spans: Dict[int, Tuple[int, int]] = {}
        for global_index, record in enumerate(self.commit_order):
            if record.op_index is None:
                continue
            first, _last = spans.get(record.op_index, (global_index, global_index))
            spans[record.op_index] = (first, global_index)
        return spans


@dataclass
class TenantVerdict:
    """One tenant's post-crash classification."""

    tenant: int
    consistent: bool
    detected: List[str] = field(default_factory=list)
    silent: List[str] = field(default_factory=list)
    #: Largest matching tenant-local prefix (None = none matched).
    matched_prefix: Optional[int] = None
    #: Smallest prefix acknowledged-commit durability requires.
    required_prefix: int = 0


@dataclass
class ServiceVerdict:
    """Aggregate verdict across all tenants.

    Shape-compatible with the classifier contract of
    :class:`~repro.crash.session.RecoverySession` (``consistent`` /
    ``detected`` / ``silent``), with per-tenant detail on the side.
    """

    consistent: bool
    detected: List[str] = field(default_factory=list)
    silent: List[str] = field(default_factory=list)
    tenants: List[TenantVerdict] = field(default_factory=list)

    @property
    def problems(self) -> List[str]:
        return self.detected + self.silent

    def tenant_prefixes(self) -> Dict[int, Optional[int]]:
        return {t.tenant: t.matched_prefix for t in self.tenants}


class ServiceValidator:
    """Per-tenant prefix validation over a recovered service memory."""

    def __init__(
        self,
        run: ServiceRun,
        txn_end_times: Optional[Sequence[float]] = None,
    ) -> None:
        self.run = run
        self.txn_end_times = (
            list(txn_end_times) if txn_end_times is not None else None
        )
        if self.txn_end_times is not None and len(self.txn_end_times) != len(
            run.commit_order
        ):
            raise ServiceError(
                "txn_end_times has %d entries for %d committed transactions"
                % (len(self.txn_end_times), len(run.commit_order))
            )
        self._prefix_states = [
            self._build_prefix_states(history) for history in run.tenant_histories
        ]
        # Tenant-local txn index -> global txn index, per tenant.
        self._tenant_global: List[List[int]] = [[] for _ in run.arenas]
        for global_index, record in enumerate(run.commit_order):
            locals_ = self._tenant_global[record.tenant]
            if record.local_index != len(locals_):
                raise ServiceError(
                    "commit order is inconsistent with tenant %d history"
                    % record.tenant
                )
            locals_.append(global_index)

    @staticmethod
    def _build_prefix_states(
        history: List[RecordedTxn],
    ) -> List[Dict[int, bytes]]:
        states: List[Dict[int, bytes]] = [{}]
        current: Dict[int, bytes] = {}
        for txn in history:
            for line, _old, new in txn.writes:
                current[line] = new
            states.append(dict(current))
        return states

    def _required_prefix(self, tenant: int, crash_ns: float) -> int:
        if self.txn_end_times is None:
            return 0
        required = 0
        for local_index, global_index in enumerate(self._tenant_global[tenant]):
            if self.txn_end_times[global_index] <= crash_ns:
                required = local_index + 1
        return required

    def __call__(self, recovered: RecoveredMemory) -> List[str]:
        return self.classify(recovered).problems

    def classify(
        self,
        recovered: RecoveredMemory,
        context: Optional[RecoveryContext] = None,
    ) -> ServiceVerdict:
        """Recover every arena, then validate each tenant's prefix.

        Detection-channel exceptions (decryption failures, corrupt
        transaction records) classify as *detected*; anything else —
        including :class:`~repro.errors.NestedCrash` from an armed
        context — propagates to the caller, exactly like the
        single-tenant validator.
        """
        run = self.run
        crash_ns = recovered.image.crash_ns
        verdict = ServiceVerdict(consistent=False)
        recover = _RECOVERERS[run.mechanism]
        context = context or RecoveryContext()
        try:
            for arena in run.arenas:
                recover(recovered, arena, context=context)
        except DecryptionFailure as failure:
            verdict.detected.append("recovery hit undecryptable line: %s" % failure)
            return verdict
        except TransactionError as failure:
            verdict.detected.append("recovery failed: %s" % failure)
            return verdict

        consistent = True
        for tenant, arena in enumerate(run.arenas):
            tenant_verdict = TenantVerdict(
                tenant=tenant,
                consistent=False,
                required_prefix=self._required_prefix(tenant, crash_ns),
            )
            verdict.tenants.append(tenant_verdict)
            tracked = sorted(run.tenant_tracked_lines(tenant))
            leaked = [
                line
                for line in tracked
                if not arena.heap.base <= line < arena.heap.limit
            ]
            if leaked:
                tenant_verdict.silent.append(
                    "cross-tenant leakage: tenant %d wrote line 0x%x outside "
                    "its arena" % (tenant, leaked[0])
                )
            values: Dict[int, bytes] = {}
            for line in tracked:
                try:
                    values[line] = recovered.read(line, CACHE_LINE_SIZE)
                except DecryptionFailure:
                    tenant_verdict.detected.append(
                        "tenant %d line 0x%x undecryptable after recovery"
                        % (tenant, line)
                    )
            if tenant_verdict.detected or tenant_verdict.silent:
                verdict.detected.extend(tenant_verdict.detected)
                verdict.silent.extend(tenant_verdict.silent)
                consistent = False
                continue
            states = self._prefix_states[tenant]
            for j in range(len(states) - 1, -1, -1):
                state = states[j]
                if all(
                    values[line] == state.get(line, _ZERO_LINE) for line in tracked
                ):
                    tenant_verdict.matched_prefix = j
                    break
            if (
                tenant_verdict.matched_prefix is not None
                and tenant_verdict.matched_prefix >= tenant_verdict.required_prefix
            ):
                tenant_verdict.consistent = True
                continue
            consistent = False
            if tenant_verdict.matched_prefix is not None:
                tenant_verdict.silent.append(
                    "tenant %d recovered to prefix %d but %d transaction(s) "
                    "were acknowledged before the crash at %.1f ns — an "
                    "acknowledged write was lost"
                    % (
                        tenant,
                        tenant_verdict.matched_prefix,
                        tenant_verdict.required_prefix,
                        crash_ns,
                    )
                )
            else:
                tenant_verdict.silent.append(
                    "tenant %d recovered state matches no transaction prefix "
                    "(crash at %.1f ns)" % (tenant, crash_ns)
                )
            verdict.silent.extend(tenant_verdict.silent)
        verdict.consistent = consistent and bool(run.arenas)
        return verdict
